"""Inverted index with BM25 ranking (the paper's keyword-similarity
retrieval strategy)."""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.rag.embedder import tokenize_words

#: Minimal English stopword list; keeps the index discriminative without
#: pulling in external data.
STOPWORDS = frozenset(
    "a an and are as at be by for from has have in is it of on or the to "
    "was were will with how does do what we about".split()
)


@dataclass
class KeywordHit:
    item_id: str
    score: float


class InvertedIndex:
    """Classic term -> postings index scored with BM25.

    ``k1`` and ``b`` are the standard Okapi parameters.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._postings: dict[str, dict[str, int]] = defaultdict(dict)
        self._doc_lengths: dict[str, int] = {}
        self._total_length = 0

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._doc_lengths

    @staticmethod
    def _terms(text: str) -> list[str]:
        return [t for t in tokenize_words(text) if t not in STOPWORDS]

    def add(self, item_id: str, text: str) -> None:
        if item_id in self._doc_lengths:
            raise ValueError(f"id {item_id!r} already indexed")
        terms = self._terms(text)
        counts = Counter(terms)
        for term, count in counts.items():
            self._postings[term][item_id] = count
        self._doc_lengths[item_id] = len(terms)
        self._total_length += len(terms)

    def remove(self, item_id: str) -> None:
        if item_id not in self._doc_lengths:
            raise KeyError(item_id)
        for postings in self._postings.values():
            postings.pop(item_id, None)
        self._total_length -= self._doc_lengths.pop(item_id)

    def idf(self, term: str) -> float:
        n = len(self._doc_lengths)
        df = len(self._postings.get(term, ()))
        if df == 0:
            return 0.0
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def search(self, query: str, k: int = 5) -> list[KeywordHit]:
        """Top-k documents by BM25 score for ``query``."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not self._doc_lengths:
            return []
        avg_length = self._total_length / len(self._doc_lengths)
        scores: dict[str, float] = defaultdict(float)
        for term in set(self._terms(query)):
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = self.idf(term)
            for item_id, tf in postings.items():
                length = self._doc_lengths[item_id]
                denominator = tf + self.k1 * (
                    1 - self.b + self.b * length / max(avg_length, 1e-9)
                )
                scores[item_id] += idf * tf * (self.k1 + 1) / denominator
        ranked = sorted(
            scores.items(), key=lambda pair: (-pair[1], pair[0])
        )
        return [KeywordHit(item_id, score) for item_id, score in ranked[:k]]
