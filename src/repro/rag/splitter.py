"""Text segmentation strategies (paper: "contents in each data source
are segmented into paragraphs")."""

from __future__ import annotations

import abc
import re

from repro.rag.document import Chunk, Document


class Splitter(abc.ABC):
    """Split documents into chunks."""

    @abc.abstractmethod
    def split(self, document: Document) -> list[Chunk]:
        """Return the chunks of ``document`` in order."""

    def split_all(self, documents: list[Document]) -> list[Chunk]:
        chunks: list[Chunk] = []
        for document in documents:
            chunks.extend(self.split(document))
        return chunks

    @staticmethod
    def _make_chunks(document: Document, pieces: list[str]) -> list[Chunk]:
        chunks = []
        for position, piece in enumerate(pieces):
            text = piece.strip()
            if not text:
                continue
            chunks.append(
                Chunk(
                    chunk_id=f"{document.doc_id}#{position}",
                    doc_id=document.doc_id,
                    text=text,
                    position=position,
                    metadata=dict(document.metadata),
                )
            )
        return chunks


class ParagraphSplitter(Splitter):
    """Split on blank lines; merge short paragraphs up to ``min_chars``."""

    def __init__(self, min_chars: int = 0) -> None:
        if min_chars < 0:
            raise ValueError("min_chars must be >= 0")
        self.min_chars = min_chars

    def split(self, document: Document) -> list[Chunk]:
        raw = re.split(r"\n\s*\n", document.text)
        merged: list[str] = []
        buffer = ""
        for paragraph in raw:
            paragraph = paragraph.strip()
            if not paragraph:
                continue
            buffer = f"{buffer}\n\n{paragraph}" if buffer else paragraph
            if len(buffer) >= self.min_chars:
                merged.append(buffer)
                buffer = ""
        if buffer:
            merged.append(buffer)
        return self._make_chunks(document, merged)


class SentenceSplitter(Splitter):
    """Pack whole sentences into chunks of at most ``max_chars``."""

    _SENTENCE_END = re.compile(r"(?<=[.!?。？！])\s+")

    def __init__(self, max_chars: int = 400) -> None:
        if max_chars <= 0:
            raise ValueError("max_chars must be positive")
        self.max_chars = max_chars

    def split(self, document: Document) -> list[Chunk]:
        sentences = self._SENTENCE_END.split(document.text)
        pieces: list[str] = []
        buffer = ""
        for sentence in sentences:
            sentence = sentence.strip()
            if not sentence:
                continue
            candidate = f"{buffer} {sentence}".strip()
            if buffer and len(candidate) > self.max_chars:
                pieces.append(buffer)
                buffer = sentence
            else:
                buffer = candidate
        if buffer:
            pieces.append(buffer)
        return self._make_chunks(document, pieces)


class FixedSizeSplitter(Splitter):
    """Fixed-width character windows with overlap."""

    def __init__(self, size: int = 300, overlap: int = 50) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if not 0 <= overlap < size:
            raise ValueError("overlap must satisfy 0 <= overlap < size")
        self.size = size
        self.overlap = overlap

    def split(self, document: Document) -> list[Chunk]:
        text = document.text
        step = self.size - self.overlap
        pieces = [
            text[start : start + self.size]
            for start in range(0, max(len(text), 1), step)
        ]
        # Drop trailing windows fully contained in the previous one.
        pieces = [p for p in pieces if p.strip()]
        return self._make_chunks(document, pieces)
