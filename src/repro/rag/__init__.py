"""Retrieval-Augmented Generation from multiple data sources.

Implements the paper's Figure 2 pipeline:

1. **Knowledge construction** — documents are loaded, segmented into
   chunks, and indexed three ways: a dense vector store (hash-feature
   embeddings), an inverted index (BM25), and an entity graph index.
2. **Knowledge retrieval** — a query is embedded and the top-k most
   relevant chunks are fetched by the chosen strategy (vector cosine,
   keyword similarity, graph expansion, or hybrid fusion).
3. **Adaptive ICL** — retrieved context is packed into a prompt
   template under a token budget, with privacy scrubbing applied before
   any text reaches a model.
"""

from repro.rag.document import Chunk, Document
from repro.rag.embedder import HashingEmbedder, QueryEmbeddingMemo
from repro.rag.federation import MultiSourceKnowledge
from repro.rag.graph_index import GraphIndex
from repro.rag.icl import ContextPacker, PromptTemplate
from repro.rag.inverted_index import InvertedIndex
from repro.rag.knowledge_base import KnowledgeBase, RetrievedChunk
from repro.rag.loaders import (
    CsvLoader,
    DirectoryLoader,
    MarkdownLoader,
    TextLoader,
)
from repro.rag.privacy import PrivacyScrubber
from repro.rag.retriever import (
    EmbeddingRetriever,
    GraphRetriever,
    HybridRetriever,
    KeywordRetriever,
    Retriever,
)
from repro.rag.splitter import (
    FixedSizeSplitter,
    ParagraphSplitter,
    SentenceSplitter,
)
from repro.rag.vectorstore import VectorStore

__all__ = [
    "Chunk",
    "ContextPacker",
    "CsvLoader",
    "DirectoryLoader",
    "Document",
    "EmbeddingRetriever",
    "FixedSizeSplitter",
    "GraphIndex",
    "GraphRetriever",
    "HashingEmbedder",
    "HybridRetriever",
    "InvertedIndex",
    "KeywordRetriever",
    "KnowledgeBase",
    "MarkdownLoader",
    "MultiSourceKnowledge",
    "ParagraphSplitter",
    "PrivacyScrubber",
    "PromptTemplate",
    "QueryEmbeddingMemo",
    "RetrievedChunk",
    "Retriever",
    "SentenceSplitter",
    "TextLoader",
    "VectorStore",
]
