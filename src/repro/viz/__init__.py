"""Visualization layer: chart specs and renderers.

Agents produce :class:`ChartSpec` objects (the interface contract); the
renderers turn them into ASCII (terminal front-end) or SVG (web
front-end). Users can re-render a spec as a different chart type, which
is the paper's "alter chart types according to their preferences"
interaction (Figure 3, area 6).
"""

from repro.viz.spec import ChartSpec, ChartType, DataPoint, VizError
from repro.viz.ascii_render import render_ascii
from repro.viz.svg_render import render_svg
from repro.viz.dashboard import Dashboard

__all__ = [
    "ChartSpec",
    "ChartType",
    "Dashboard",
    "DataPoint",
    "VizError",
    "render_ascii",
    "render_svg",
]
