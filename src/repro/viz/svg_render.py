"""SVG rendering of chart specs (web front-end)."""

from __future__ import annotations

import math

from repro.viz.spec import ChartSpec, ChartType, VizError

_WIDTH = 480
_HEIGHT = 280
_PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]


def render_svg(spec: ChartSpec) -> str:
    """Render ``spec`` as a standalone SVG document."""
    body = {
        ChartType.BAR: _svg_bars,
        ChartType.DONUT: lambda s: _svg_arcs(s, donut=True),
        ChartType.PIE: lambda s: _svg_arcs(s, donut=False),
        ChartType.LINE: lambda s: _svg_path(s, fill=False),
        ChartType.AREA: lambda s: _svg_path(s, fill=True),
        ChartType.TABLE: _svg_table,
    }[spec.chart_type](spec)
    title = _escape(spec.title)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">'
        f'<text x="{_WIDTH / 2}" y="18" text-anchor="middle" '
        f'font-size="14" font-family="sans-serif">{title}</text>'
        f"{body}</svg>"
    )


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _svg_bars(spec: ChartSpec) -> str:
    top, bottom, left = 30, 40, 40
    plot_height = _HEIGHT - top - bottom
    peak = max(abs(p.value) for p in spec.points) or 1.0
    count = len(spec.points)
    slot = (_WIDTH - left - 20) / count
    bar_width = slot * 0.7
    parts = []
    for index, point in enumerate(spec.points):
        height = abs(point.value) / peak * plot_height
        x = left + index * slot + slot * 0.15
        y = top + plot_height - height
        color = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{height:.1f}" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{_HEIGHT - 22}" '
            f'text-anchor="middle" font-size="9" font-family="sans-serif">'
            f"{_escape(point.label[:10])}</text>"
        )
    return "".join(parts)


def _svg_arcs(spec: ChartSpec, donut: bool) -> str:
    total = spec.total
    if total <= 0:
        raise VizError("share chart needs a positive total")
    cx, cy, radius = _WIDTH / 2, (_HEIGHT + 20) / 2, 90
    angle = -math.pi / 2
    parts = []
    for index, point in enumerate(spec.points):
        sweep = point.value / total * 2 * math.pi
        x1 = cx + radius * math.cos(angle)
        y1 = cy + radius * math.sin(angle)
        angle += sweep
        x2 = cx + radius * math.cos(angle)
        y2 = cy + radius * math.sin(angle)
        large = 1 if sweep > math.pi else 0
        color = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f'<path d="M {cx:.1f} {cy:.1f} L {x1:.1f} {y1:.1f} '
            f'A {radius} {radius} 0 {large} 1 {x2:.1f} {y2:.1f} Z" '
            f'fill="{color}"/>'
        )
    if donut:
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="45" fill="white"/>'
        )
    # Legend on the right edge.
    for index, point in enumerate(spec.points[:8]):
        y = 40 + index * 16
        color = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f'<rect x="8" y="{y - 9}" width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="22" y="{y}" font-size="10" '
            f'font-family="sans-serif">{_escape(point.label[:14])}</text>'
        )
    return "".join(parts)


def _svg_path(spec: ChartSpec, fill: bool) -> str:
    top, bottom, left = 30, 40, 40
    plot_height = _HEIGHT - top - bottom
    plot_width = _WIDTH - left - 20
    values = [p.value for p in spec.points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    count = len(values)
    step = plot_width / max(count - 1, 1)
    coordinates = []
    for index, value in enumerate(values):
        x = left + index * step
        y = top + plot_height - (value - low) / span * plot_height
        coordinates.append((x, y))
    path = "M " + " L ".join(f"{x:.1f} {y:.1f}" for x, y in coordinates)
    parts = []
    if fill:
        area = (
            path
            + f" L {coordinates[-1][0]:.1f} {top + plot_height} "
            + f"L {coordinates[0][0]:.1f} {top + plot_height} Z"
        )
        parts.append(
            f'<path d="{area}" fill="{_PALETTE[0]}" fill-opacity="0.35"/>'
        )
    parts.append(
        f'<path d="{path}" fill="none" stroke="{_PALETTE[0]}" '
        'stroke-width="2"/>'
    )
    for index, point in enumerate(spec.points):
        if count > 12 and index % max(1, count // 12) != 0:
            continue
        x = left + index * step
        parts.append(
            f'<text x="{x:.1f}" y="{_HEIGHT - 22}" text-anchor="middle" '
            f'font-size="9" font-family="sans-serif">'
            f"{_escape(point.label[-5:])}</text>"
        )
    return "".join(parts)


def _svg_table(spec: ChartSpec) -> str:
    parts = []
    for index, point in enumerate(spec.points[:12]):
        y = 44 + index * 18
        parts.append(
            f'<text x="40" y="{y}" font-size="11" '
            f'font-family="monospace">{_escape(point.label[:24])}</text>'
        )
        parts.append(
            f'<text x="{_WIDTH - 40}" y="{y}" text-anchor="end" '
            f'font-size="11" font-family="monospace">{point.value:g}</text>'
        )
    return "".join(parts)
