"""Chart specifications: the agent <-> front-end contract."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Optional


class VizError(Exception):
    """Invalid chart specification or rendering input."""


class ChartType(enum.Enum):
    BAR = "bar"
    DONUT = "donut"
    PIE = "pie"
    LINE = "line"
    AREA = "area"
    TABLE = "table"

    @classmethod
    def from_name(cls, name: str) -> "ChartType":
        try:
            return cls(name.lower())
        except ValueError:
            raise VizError(
                f"unknown chart type {name!r}; "
                f"known: {[t.value for t in cls]}"
            ) from None


@dataclass(frozen=True)
class DataPoint:
    label: str
    value: float


@dataclass
class ChartSpec:
    """A renderable chart: type, title, axes and data points."""

    chart_type: ChartType
    title: str
    points: list[DataPoint]
    x_label: str = ""
    y_label: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.points:
            raise VizError(f"chart {self.title!r} has no data points")
        if self.chart_type in (ChartType.DONUT, ChartType.PIE):
            if any(p.value < 0 for p in self.points):
                raise VizError(
                    f"{self.chart_type.value} chart {self.title!r} "
                    "cannot show negative values"
                )

    @property
    def total(self) -> float:
        return sum(p.value for p in self.points)

    def with_chart_type(self, chart_type: ChartType | str) -> "ChartSpec":
        """The "alter chart type" interaction: same data, new form."""
        if isinstance(chart_type, str):
            chart_type = ChartType.from_name(chart_type)
        return ChartSpec(
            chart_type=chart_type,
            title=self.title,
            points=list(self.points),
            x_label=self.x_label,
            y_label=self.y_label,
            metadata=dict(self.metadata),
        )

    @classmethod
    def from_rows(
        cls,
        chart_type: ChartType | str,
        title: str,
        rows: list[tuple],
        x_label: str = "",
        y_label: str = "",
        metadata: Optional[dict[str, Any]] = None,
    ) -> "ChartSpec":
        """Build a spec from (label, value) query rows."""
        if isinstance(chart_type, str):
            chart_type = ChartType.from_name(chart_type)
        points = []
        for row in rows:
            if len(row) < 2:
                raise VizError(
                    f"chart rows need (label, value); got {row!r}"
                )
            label, value = row[0], row[1]
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise VizError(f"non-numeric chart value: {value!r}")
            points.append(DataPoint(str(label), float(value)))
        return cls(
            chart_type=chart_type,
            title=title,
            points=points,
            x_label=x_label,
            y_label=y_label,
            metadata=dict(metadata or {}),
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "chart_type": self.chart_type.value,
                "title": self.title,
                "x_label": self.x_label,
                "y_label": self.y_label,
                "points": [
                    {"label": p.label, "value": p.value} for p in self.points
                ],
                "metadata": self.metadata,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ChartSpec":
        data = json.loads(text)
        return cls(
            chart_type=ChartType.from_name(data["chart_type"]),
            title=data["title"],
            points=[
                DataPoint(p["label"], float(p["value"]))
                for p in data["points"]
            ],
            x_label=data.get("x_label", ""),
            y_label=data.get("y_label", ""),
            metadata=data.get("metadata", {}),
        )
