"""ASCII rendering of chart specs (terminal front-end)."""

from __future__ import annotations

from repro.viz.spec import ChartSpec, ChartType, VizError

_BAR_WIDTH = 40
_AREA_HEIGHT = 8


def render_ascii(spec: ChartSpec) -> str:
    """Render ``spec`` as monospace text."""
    renderer = {
        ChartType.BAR: _render_bar,
        ChartType.DONUT: _render_share,
        ChartType.PIE: _render_share,
        ChartType.LINE: _render_area,
        ChartType.AREA: _render_area,
        ChartType.TABLE: _render_table,
    }[spec.chart_type]
    header = f"{spec.title} ({spec.chart_type.value})"
    return "\n".join([header, "=" * len(header), renderer(spec)])


def _render_bar(spec: ChartSpec) -> str:
    peak = max(abs(p.value) for p in spec.points)
    if peak == 0:
        peak = 1.0
    label_width = max(len(p.label) for p in spec.points)
    lines = []
    for point in spec.points:
        bar = "#" * max(1, round(abs(point.value) / peak * _BAR_WIDTH))
        lines.append(
            f"{point.label.ljust(label_width)} | {bar} {point.value:g}"
        )
    return "\n".join(lines)


def _render_share(spec: ChartSpec) -> str:
    """Donut/pie as a percentage breakdown with block glyphs."""
    total = spec.total
    if total <= 0:
        raise VizError(f"{spec.chart_type.value} chart needs a positive total")
    label_width = max(len(p.label) for p in spec.points)
    lines = []
    for point in spec.points:
        share = point.value / total
        blocks = "o" * max(1, round(share * 20))
        lines.append(
            f"{point.label.ljust(label_width)} {blocks} "
            f"{share * 100:5.1f}% ({point.value:g})"
        )
    return "\n".join(lines)


def _render_area(spec: ChartSpec) -> str:
    """Line/area as a height-banded sparkline grid."""
    values = [p.value for p in spec.points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    heights = [
        1 + round((v - low) / span * (_AREA_HEIGHT - 1)) for v in values
    ]
    grid = []
    for level in range(_AREA_HEIGHT, 0, -1):
        row = "".join(
            " *"[height >= level] * 2 for height in heights
        )
        grid.append(row)
    labels = " ".join(p.label[-2:].rjust(1) for p in spec.points)
    grid.append("-" * (2 * len(values)))
    grid.append(labels)
    return "\n".join(grid)


def _render_table(spec: ChartSpec) -> str:
    label_width = max(len(p.label) for p in spec.points)
    header = f"{(spec.x_label or 'label').ljust(label_width)} | {spec.y_label or 'value'}"
    lines = [header, "-" * len(header)]
    for point in spec.points:
        lines.append(f"{point.label.ljust(label_width)} | {point.value:g}")
    return "\n".join(lines)
