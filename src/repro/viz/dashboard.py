"""Dashboard: the aggregated multi-chart report surface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.viz.ascii_render import render_ascii
from repro.viz.spec import ChartSpec, ChartType, VizError
from repro.viz.svg_render import render_svg


@dataclass
class Dashboard:
    """An ordered collection of charts plus narrative text.

    The aggregator agent assembles one of these; the front-end renders
    it; users can swap any chart's type in place (Figure 3, area 6).
    """

    title: str
    charts: list[ChartSpec] = field(default_factory=list)
    narrative: str = ""

    def add_chart(self, spec: ChartSpec) -> None:
        self.charts.append(spec)

    def chart(self, title: str) -> ChartSpec:
        lowered = title.lower()
        for spec in self.charts:
            if spec.title.lower() == lowered:
                return spec
        raise VizError(f"no chart titled {title!r}")

    def alter_chart_type(
        self, title: str, chart_type: ChartType | str
    ) -> ChartSpec:
        """Replace a chart with the same data in a new form."""
        for index, spec in enumerate(self.charts):
            if spec.title.lower() == title.lower():
                replacement = spec.with_chart_type(chart_type)
                self.charts[index] = replacement
                return replacement
        raise VizError(f"no chart titled {title!r}")

    def render_text(self) -> str:
        parts = [self.title, "#" * len(self.title)]
        if self.narrative:
            parts.append(self.narrative)
        for spec in self.charts:
            parts.append("")
            parts.append(render_ascii(spec))
        return "\n".join(parts)

    def render_html(self) -> str:
        """Self-contained HTML page with inline SVG charts."""
        charts_html = "\n".join(
            f'<figure>{render_svg(spec)}</figure>' for spec in self.charts
        )
        narrative = (
            f"<p>{self.narrative}</p>" if self.narrative else ""
        )
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{self.title}</title></head><body>"
            f"<h1>{self.title}</h1>{narrative}{charts_html}"
            "</body></html>"
        )
