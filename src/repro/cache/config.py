"""Configuration for the multi-tier cache subsystem.

Three tiers exist, one per layer the subsystem accelerates:

``inference``
    SMMF responses, keyed on (client, model, normalized prompt,
    generation parameters). Optionally extended with an
    embedding-similarity ("semantic") lookup.
``rag``
    Query embeddings, retrieval results and memoized schema-card
    indexes, keyed on the owning index plus its mutation version.
``sql``
    SELECT results, keyed on (database, canonical SQL, parameters,
    data version) — every DDL/DML statement bumps the version, so a
    write can never be followed by a stale cached read.

Every knob is plain data so :class:`repro.core.config.DbGptConfig`
can embed a :class:`CacheConfig` without importing anything heavy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

TIER_NAMES = ("inference", "rag", "sql")


@dataclass
class TierConfig:
    """Bounds for one cache tier."""

    enabled: bool = True
    #: Maximum number of entries kept (LRU eviction beyond this).
    capacity: int = 512
    #: Seconds before an entry expires; ``None`` disables expiry.
    ttl_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")


@dataclass
class CacheConfig:
    """Configuration for every tier plus the semantic lookup.

    ``enabled`` is the master switch: when False, every tier is off
    regardless of its own flag and the wired code paths behave exactly
    as if the cache subsystem did not exist.
    """

    enabled: bool = True
    inference: TierConfig = field(default_factory=TierConfig)
    rag: TierConfig = field(
        default_factory=lambda: TierConfig(capacity=2048)
    )
    sql: TierConfig = field(
        default_factory=lambda: TierConfig(capacity=2048)
    )
    #: When True, an exact inference miss falls back to an
    #: embedding-similarity search over previously cached prompts.
    semantic_lookup: bool = False
    #: Minimum cosine similarity for a semantic hit.
    semantic_threshold: float = 0.95
    #: Maximum prompts remembered per (client, model, params) group.
    semantic_capacity: int = 512

    def tier(self, name: str) -> TierConfig:
        if name not in TIER_NAMES:
            raise KeyError(
                f"unknown cache tier {name!r}; known: {TIER_NAMES}"
            )
        return getattr(self, name)

    def tier_enabled(self, name: str) -> bool:
        return self.enabled and self.tier(name).enabled

    @classmethod
    def disabled(cls) -> "CacheConfig":
        """A configuration with every tier switched off."""
        return cls(enabled=False)

    def with_tier(self, name: str, **changes) -> "CacheConfig":
        """A copy with one tier's settings replaced."""
        updated = replace(self.tier(name), **changes)
        return replace(self, **{name: updated})
