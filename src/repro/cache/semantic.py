"""Embedding-similarity lookup over cached inference prompts.

An exact inference-cache miss can still be a near-duplicate of a
prompt answered moments ago ("how many orders are there" vs "how many
orders are there?"). When the semantic lookup is enabled, the
inference tier keeps a bounded per-group index of prompt embeddings
(reusing the deterministic :class:`repro.rag.embedder.HashingEmbedder`)
and, on an exact miss, returns the cached answer of the most similar
prompt above a cosine threshold.

Groups partition the index by everything that changes the answer
besides the prompt text — the owning client, model, task and token
budget — so similarity never crosses model boundaries. The index only
stores *keys* into the exact store; TTL and LRU eviction there remain
authoritative, so a semantically matched entry that has expired is
simply not served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional

import numpy as np


class SemanticPromptIndex:
    """Per-group bounded index of (prompt embedding, exact-store key)."""

    def __init__(
        self,
        threshold: float = 0.95,
        capacity: int = 512,
        dim: int = 256,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        # Function-level import: repro.cache must stay importable
        # before repro.rag finishes importing (embedder caches through
        # the manager, so the reverse edge exists lazily too).
        from repro.rag.embedder import HashingEmbedder

        self.threshold = threshold
        self.capacity = capacity
        self._embedder = HashingEmbedder(dim=dim)
        #: group -> OrderedDict[exact-store key, unit embedding]
        self._groups: dict[Any, OrderedDict[Any, np.ndarray]] = {}
        self._lock = threading.Lock()

    def add(self, group: Any, prompt: str, key: Any) -> None:
        """Remember ``prompt`` (already normalized) under ``group``."""
        vector = self._embedder.embed(prompt)
        if not vector.any():
            return
        with self._lock:
            entries = self._groups.setdefault(group, OrderedDict())
            entries[key] = vector
            entries.move_to_end(key)
            while len(entries) > self.capacity:
                entries.popitem(last=False)

    def find(self, group: Any, prompt: str) -> Optional[Any]:
        """The exact-store key of the most similar remembered prompt,
        or None when nothing clears the threshold."""
        with self._lock:
            entries = self._groups.get(group)
            if not entries:
                return None
            keys = list(entries)
            matrix = np.stack([entries[k] for k in keys])
        vector = self._embedder.embed(prompt)
        if not vector.any():
            return None
        scores = matrix @ vector
        best = int(np.argmax(scores))
        if scores[best] >= self.threshold:
            return keys[best]
        return None

    def clear(self) -> None:
        with self._lock:
            self._groups.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._groups.values())
