"""The process-wide cache manager: tiers, metrics, spans.

One :class:`CacheManager` owns the three tier stores. Wired call
sites (the SMMF client, the RAG knowledge base and embedder, the SQL
engine) never touch stores directly — they call :meth:`cached`, which

- runs the lookup/compute under **single-flight** deduplication,
- opens a ``cache.lookup`` span carrying ``tier`` and a ``cache.hit``
  attribute (visible in ``repro trace`` / ``/trace``),
- publishes hit/miss/eviction counters and latency histograms through
  the unified :mod:`repro.obs` metrics registry.

When a tier is disabled, :meth:`enabled` is False and call sites take
their original, pre-cache code path — no span, no metric, no key
construction — so a disabled configuration behaves byte-identically
to a build without the subsystem.

The module-level manager starts **disabled**: components built outside
a booted instance (bare ``deploy()``, a standalone ``Database``) behave
exactly as they did before this subsystem existed. ``DBGPT.boot``
installs the instance's configuration via :func:`configure_cache`, and
:class:`repro.core.config.DbGptConfig` enables all tiers by default —
so the product default is "caching on".
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.cache.config import TIER_NAMES, CacheConfig
from repro.cache.semantic import SemanticPromptIndex
from repro.cache.store import CacheStats, CacheStore
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.runtime import perf_clock
from repro.tenancy.context import current_tenant


class CacheManager:
    """Owns one :class:`CacheStore` per enabled tier.

    With tenant partitions enabled (the tenancy fabric calls
    :meth:`enable_tenant_partitions`), lookups made inside a
    :func:`~repro.tenancy.context.tenant_scope` are served from a
    lazily-created per-``(tenant, tier)`` store with its own capacity
    budget: one tenant's working set can neither evict another's
    entries nor poison them, and metrics for those lookups carry a
    ``tenant`` label. Lookups outside any tenant scope — the entire
    disabled path — use the shared stores exactly as before.
    """

    def __init__(
        self,
        config: Optional[CacheConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or CacheConfig()
        self._clock = clock
        self._lock = threading.Lock()
        #: Per-(tenant, tier) private stores; populated lazily once
        #: partition mode is on. Guarded by ``self._lock``.
        self._partitions: dict[tuple[str, str], CacheStore] = {}
        self._partition_capacity: Optional[int] = None
        self._stores: dict[str, CacheStore] = {}
        for tier in TIER_NAMES:
            settings = self.config.tier(tier)
            if self.config.enabled and settings.enabled:
                self._stores[tier] = CacheStore(
                    capacity=settings.capacity,
                    ttl_seconds=settings.ttl_seconds,
                    clock=clock,
                    on_evict=self._evict_hook(tier),
                )
        self.semantic: Optional[SemanticPromptIndex] = None
        if self.enabled("inference") and self.config.semantic_lookup:
            self.semantic = SemanticPromptIndex(
                threshold=self.config.semantic_threshold,
                capacity=self.config.semantic_capacity,
            )

    # -- tier access -------------------------------------------------------

    def enabled(self, tier: str) -> bool:
        return tier in self._stores

    def store(self, tier: str) -> Optional[CacheStore]:
        """The tier's store, or None when the tier is disabled."""
        return self._stores.get(tier)

    # -- tenant partitions ---------------------------------------------------

    def enable_tenant_partitions(self, capacity: int) -> None:
        """Switch on per-tenant cache partitions (tenancy fabric).

        Each tenant-scoped lookup gets a private per-tier store bounded
        to ``capacity`` entries. Existing shared stores are untouched —
        work outside any tenant scope keeps its cache behavior.
        """
        if capacity <= 0:
            raise ValueError("partition capacity must be positive")
        with self._lock:
            self._partition_capacity = capacity

    def partitions_enabled(self) -> bool:
        with self._lock:
            return self._partition_capacity is not None

    def _store_for(
        self, tier: str, tenant: Optional[str]
    ) -> Optional[CacheStore]:
        """The store serving this lookup: the tenant's partition when
        partition mode is on and a tenant scope is active, else the
        shared tier store."""
        shared = self._stores.get(tier)
        if shared is None or tenant is None:
            return shared
        with self._lock:
            capacity = self._partition_capacity
            if capacity is None:
                return shared
            key = (tenant, tier)
            store = self._partitions.get(key)
            if store is None:
                store = self._partitions[key] = CacheStore(
                    capacity=capacity,
                    ttl_seconds=shared.ttl_seconds,
                    clock=self._clock,
                    on_evict=self._partition_evict_hook(tenant, tier),
                )
            return store

    # -- the one call sites use --------------------------------------------

    def cached(
        self,
        tier: str,
        key: Any,
        compute: Callable[[], Any],
        **span_attributes: Any,
    ) -> Any:
        """Serve ``key`` from ``tier``, computing (once) on a miss.

        Must only be called when :meth:`enabled` returned True for the
        tier; disabled tiers take the caller's original code path so
        their behavior stays byte-identical to pre-cache builds.
        """
        tenant = current_tenant()
        store = self._store_for(tier, tenant)
        if store is None:
            store = self._stores[tier]
        # The tenant label exists only for tenant-scoped lookups, so
        # label sets on the untenanted path match pre-tenancy builds.
        extra = {} if tenant is None else {"tenant": tenant}
        started = perf_clock()
        with get_tracer().span(
            "cache.lookup", tier=tier, **span_attributes
        ) as span:
            value, hit = store.get_or_compute(key, compute)
            span.set_attribute("cache.hit", hit)
        elapsed_ms = (perf_clock() - started) * 1000.0
        registry = get_registry()
        registry.counter(
            "cache_requests_total", "cache lookups by tier and outcome"
        ).inc(tier=tier, outcome="hit" if hit else "miss", **extra)
        if hit:
            registry.histogram(
                "cache_hit_latency_ms", "latency of cache hits"
            ).observe(elapsed_ms, tier=tier, **extra)
        else:
            registry.histogram(
                "cache_miss_compute_ms",
                "compute latency behind cache misses",
            ).observe(elapsed_ms, tier=tier, **extra)
        return value

    def semantic_fetch(self, key: Any) -> tuple[bool, Any]:
        """Read an exact-store entry found via the semantic index.

        Uses ``peek`` so the alias read does not distort the exact
        store's hit/miss statistics; a dedicated counter records it.
        """
        store = self._store_for("inference", current_tenant())
        if store is None:
            return False, None
        found, value = store.peek(key)
        if found:
            get_registry().counter(
                "cache_semantic_hits_total",
                "inference answers served via embedding similarity",
            ).inc(tier="inference")
        return found, value

    def peek_stale(self, tier: str, key: Any) -> tuple[bool, Any]:
        """Read an entry even if expired, without touching statistics.

        Used by the resilience layer to serve stale answers when the
        stack behind the cache is down; ``(False, None)`` when the
        tier is disabled or the key was never cached.
        """
        store = self._store_for(tier, current_tenant())
        if store is None:
            return False, None
        return store.peek_stale(key)

    def _evict_hook(self, tier: str):
        def on_evict(_key: Any, reason: str) -> None:
            get_registry().counter(
                "cache_evictions_total", "entries evicted by tier"
            ).inc(tier=tier, reason=reason)

        return on_evict

    def _partition_evict_hook(self, tenant: str, tier: str):
        # Partition evictions are the tenant's own budget at work —
        # the tenant label makes noisy-neighbor churn attributable.
        def on_evict(_key: Any, reason: str) -> None:
            get_registry().counter(
                "cache_evictions_total", "entries evicted by tier"
            ).inc(tier=tier, reason=reason, tenant=tenant)

        return on_evict

    # -- operations --------------------------------------------------------

    def clear(self, tier: Optional[str] = None) -> int:
        """Drop cached entries (one tier, or all); returns the count.

        Partition stores are cleared alongside the shared tier they
        shadow, so "clear the cache" means every tenant's too.
        """
        dropped = 0
        for name, store in self._stores.items():
            if tier is None or name == tier:
                dropped += store.clear()
        with self._lock:
            partitions = list(self._partitions.items())
        for (_tenant, name), store in partitions:
            if tier is None or name == tier:
                dropped += store.clear()
        if self.semantic is not None and tier in (None, "inference"):
            self.semantic.clear()
        return dropped

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-tier statistics (disabled tiers report only that)."""
        snapshot: dict[str, dict[str, Any]] = {}
        for tier in TIER_NAMES:
            store = self._stores.get(tier)
            if store is None:
                snapshot[tier] = {"enabled": False}
                continue
            stats: CacheStats = store.stats()
            snapshot[tier] = {
                "enabled": True,
                "size": len(store),
                "capacity": store.capacity,
                "ttl_seconds": store.ttl_seconds,
                **stats.to_dict(),
            }
        if self.semantic is not None:
            snapshot["inference"]["semantic_entries"] = len(self.semantic)
        return snapshot

    def tenant_stats(self) -> dict[str, dict[str, dict[str, Any]]]:
        """Per-tenant, per-tier partition statistics.

        Empty until partition mode is on and tenants have cached
        something; the shared stores' numbers stay in :meth:`stats`.
        """
        with self._lock:
            partitions = list(self._partitions.items())
        snapshot: dict[str, dict[str, dict[str, Any]]] = {}
        for (tenant, tier), store in partitions:
            stats: CacheStats = store.stats()
            snapshot.setdefault(tenant, {})[tier] = {
                "size": len(store),
                "capacity": store.capacity,
                **stats.to_dict(),
            }
        return snapshot

    def render_stats(self) -> str:
        """A plain-text stats table for the CLI and REPL."""
        header = (
            f"{'tier':<10} {'size':>9} {'hits':>7} {'misses':>7} "
            f"{'coalesced':>9} {'hit-rate':>8} {'evicted':>8}"
        )
        lines = [header, "-" * len(header)]
        for tier, row in self.stats().items():
            if not row["enabled"]:
                lines.append(f"{tier:<10} {'(disabled)':>9}")
                continue
            size = f"{row['size']}/{row['capacity']}"
            evicted = row["evictions"] + row["expirations"]
            lines.append(
                f"{tier:<10} {size:>9} {row['hits']:>7} "
                f"{row['misses']:>7} {row['coalesced']:>9} "
                f"{row['hit_rate']:>8.1%} {evicted:>8}"
            )
        return "\n".join(lines)


#: Process-wide manager used by every wired call site. Starts disabled
#: so unbooted components are unaffected; ``DBGPT.boot`` installs the
#: instance's :class:`~repro.core.config.DbGptConfig` configuration
#: (which enables all tiers by default).
_manager = CacheManager(CacheConfig.disabled())


def get_cache_manager() -> CacheManager:
    return _manager


def set_cache_manager(manager: CacheManager) -> CacheManager:
    """Swap the global manager (tests); returns the previous one."""
    global _manager
    previous, _manager = _manager, manager
    return previous


def configure_cache(config: CacheConfig) -> CacheManager:
    """Install a fresh manager built from ``config`` and return it."""
    global _manager
    _manager = CacheManager(config)
    return _manager
