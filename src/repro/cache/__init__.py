"""repro.cache — multi-tier caching and invalidation subsystem.

Three tiers accelerate the three hot paths of a chat turn (see
``docs/caching.md``):

- **inference** — SMMF responses; a cached turn skips the worker pool
  entirely. Optional embedding-similarity ("semantic") lookup.
- **rag** — query embeddings, retrieval results and memoized
  schema-card indexes.
- **sql** — SELECT results, invalidated by a monotonic data version
  every DDL/DML statement bumps.

Every tier publishes hit/miss/eviction metrics through ``repro.obs``
and marks its spans with a ``cache.hit`` attribute.
"""

from repro.cache.config import TIER_NAMES, CacheConfig, TierConfig
from repro.cache.keys import (
    embedding_key,
    inference_key,
    instance_token,
    normalize_prompt,
    retrieval_key,
    sql_key,
)
from repro.cache.manager import (
    CacheManager,
    configure_cache,
    get_cache_manager,
    set_cache_manager,
)
from repro.cache.semantic import SemanticPromptIndex
from repro.cache.store import CacheStats, CacheStore

__all__ = [
    "CacheConfig",
    "CacheManager",
    "CacheStats",
    "CacheStore",
    "SemanticPromptIndex",
    "TIER_NAMES",
    "TierConfig",
    "configure_cache",
    "embedding_key",
    "get_cache_manager",
    "inference_key",
    "instance_token",
    "normalize_prompt",
    "retrieval_key",
    "set_cache_manager",
    "sql_key",
]
