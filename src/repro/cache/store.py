"""The core cache primitive: a thread-safe LRU + TTL store.

:class:`CacheStore` is what every tier is built from. It provides

- **LRU eviction** with a hard capacity bound,
- **TTL expiry** against an injectable monotonic clock (tests pass a
  fake clock, so expiry is deterministic without sleeping),
- **per-store statistics** (hits, misses, coalesced waits, puts,
  evictions, expirations),
- **single-flight deduplication**: concurrent ``get_or_compute`` calls
  for the same missing key run the compute callable exactly once; the
  other callers block until the leader finishes and then share its
  result (or its exception — errors are never cached).

Values are stored as given; callers that cache mutable objects are
responsible for freezing them (the SQL tier stores row tuples, the RAG
tier stores id/score tuples) so a cache hit cannot alias state a
caller might mutate.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Internal sentinel distinguishing "no entry" from a cached ``None``.
_MISS = object()


@dataclass
class CacheStats:
    """Counters for one store; a snapshot copy is returned by
    :meth:`CacheStore.stats`."""

    hits: int = 0
    misses: int = 0
    #: Lookups that waited on another thread's in-flight compute and
    #: shared its result (single-flight deduplication).
    coalesced: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without running the compute."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.coalesced) / self.lookups

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    value: Any
    expires_at: Optional[float]


class _Flight:
    """One in-flight compute other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class CacheStore:
    """Thread-safe bounded LRU cache with optional TTL.

    ``clock`` must be a monotonic ``() -> float``; it exists so tests
    can drive expiry deterministically. ``on_evict(key, reason)`` is
    called (outside hot paths, inside the store lock) whenever an entry
    leaves the store involuntarily; ``reason`` is ``"lru"`` or
    ``"ttl"``.
    """

    def __init__(
        self,
        capacity: int = 512,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Optional[Callable[[Any, str], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._on_evict = on_evict
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._flights: dict[Any, _Flight] = {}
        self._stats = CacheStats()
        self._lock = threading.RLock()

    # -- lookups -----------------------------------------------------------

    def lookup(self, key: Any) -> tuple[bool, Any]:
        """``(hit, value)``; counts the hit or miss."""
        with self._lock:
            value = self._get_locked(key)
            if value is _MISS:
                self._stats.misses += 1
                return False, None
            self._stats.hits += 1
            return True, value

    def peek(self, key: Any) -> tuple[bool, Any]:
        """Like :meth:`lookup` but without touching statistics or LRU
        order (used by the semantic alias path and by tests)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry):
                return False, None
            return True, entry.value

    def peek_stale(self, key: Any) -> tuple[bool, Any]:
        """Like :meth:`peek` but an expired entry still counts.

        The resilience degradation ladder's last rung: when the
        serving stack is down, an out-of-date answer beats no answer.
        Never touches statistics, LRU order, or the entry itself.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False, None
            return True, entry.value

    def _get_locked(self, key: Any) -> Any:
        entry = self._entries.get(key)
        if entry is None:
            return _MISS
        if self._expired(entry):
            del self._entries[key]
            self._stats.expirations += 1
            if self._on_evict is not None:
                self._on_evict(key, "ttl")
            return _MISS
        self._entries.move_to_end(key)
        return entry.value

    def _expired(self, entry: _Entry) -> bool:
        return (
            entry.expires_at is not None
            and self._clock() >= entry.expires_at
        )

    # -- mutation ----------------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        expires = (
            self._clock() + self.ttl_seconds
            if self.ttl_seconds is not None
            else None
        )
        with self._lock:
            self._entries[key] = _Entry(value, expires)
            self._entries.move_to_end(key)
            self._stats.puts += 1
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._stats.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(evicted_key, "lru")

    def delete(self, key: Any) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    # -- single-flight -----------------------------------------------------

    def get_or_compute(
        self, key: Any, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """``(value, hit)`` — computing at most once per key at a time.

        The first thread to miss becomes the leader and runs
        ``compute`` (outside the store lock); any thread that misses
        the same key meanwhile waits for the leader instead of
        recomputing. A raising compute propagates its exception to the
        leader *and* every waiter, and caches nothing.
        """
        with self._lock:
            value = self._get_locked(key)
            if value is not _MISS:
                self._stats.hits += 1
                return value, True
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leader = True
                self._stats.misses += 1
            else:
                leader = False
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self._stats.coalesced += 1
            return flight.value, True
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
            raise
        self.put(key, value)
        flight.value = value
        with self._lock:
            self._flights.pop(key, None)
        flight.event.set()
        return value, False

    # -- introspection -----------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(**vars(self._stats))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return self.peek(key)[0]

    def keys(self) -> list[Any]:
        """Current keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)
