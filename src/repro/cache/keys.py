"""Cache key construction shared by every tier.

Keys are plain hashable tuples whose first element names the keyspace,
so one store can host several families of entries without collisions.
Every key embeds two things that make reuse safe:

- an **instance token** — a process-unique integer identifying the
  owning object (client, database, knowledge base). Tokens come from a
  monotonic counter, never from ``id()``, because CPython reuses ids
  after garbage collection and a recycled id could silently serve
  another instance's entries.
- a **version** where the underlying data can change — the database's
  data version, a knowledge base's mutation count, an IDF table's
  document count. Writes bump the version, which retires every key
  minted under the old one; stale entries then age out via LRU/TTL.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Optional

_WHITESPACE = re.compile(r"\s+")

_instance_tokens = itertools.count(1)


def instance_token() -> int:
    """A process-unique token for one cache-participating object."""
    return next(_instance_tokens)


def normalize_prompt(prompt: str) -> str:
    """Collapse runs of whitespace so trivially reformatted prompts
    share a cache entry. Case and content are preserved — they change
    what a model would generate."""
    return _WHITESPACE.sub(" ", prompt).strip()


def freeze_metadata(metadata: Optional[dict[str, Any]]) -> tuple:
    """A hashable, order-insensitive rendering of request metadata."""
    if not metadata:
        return ()
    return tuple(sorted((str(k), repr(v)) for k, v in metadata.items()))


def inference_key(
    token: int,
    model: str,
    prompt: str,
    task: Optional[str],
    max_tokens: int,
    metadata: Optional[dict[str, Any]] = None,
) -> tuple:
    """SMMF tier: (client, model, normalized prompt, parameters)."""
    return (
        "llm",
        token,
        model,
        task or "",
        int(max_tokens),
        freeze_metadata(metadata),
        normalize_prompt(prompt),
    )


def sql_key(
    token: int,
    database: str,
    version: int,
    canonical_sql: str,
    parameters: tuple,
    index_epoch: int = 0,
) -> tuple:
    """SQL tier: database identity, data version, index epoch,
    canonical SQL and parameters.

    ``index_epoch`` counts CREATE/DROP INDEX events: a changed index
    set changes the plan, so cached results keyed on the old epoch are
    never served for the new plan's queries.
    """
    return (
        "sql",
        token,
        database,
        version,
        index_epoch,
        canonical_sql,
        parameters,
    )


def retrieval_key(
    token: int,
    version: int,
    strategy: str,
    k: int,
    rerank: bool,
    query: str,
) -> tuple:
    """RAG tier: one knowledge base's retrieval results."""
    return ("retrieval", token, version, strategy, k, rerank, query)


def embedding_key(
    dim: int,
    use_bigrams: bool,
    use_char_trigrams: bool,
    tag: tuple,
    text: str,
) -> tuple:
    """RAG tier: one embedded query vector.

    ``tag`` captures whatever weighting context applies (e.g. the IDF
    table's token and document count); the empty tuple means the
    unweighted, purely content-determined embedding.
    """
    return ("embed", dim, use_bigrams, use_char_trigrams, tag, text)
