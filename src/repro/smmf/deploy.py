"""Deployment helper: specs -> running controller + client."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.resilience.config import ResilienceConfig
from repro.serving.config import ServingConfig
from repro.serving.engine import RequestScheduler
from repro.serving.scheduler import WindowedScheduler
from repro.smmf.api_server import ApiServer
from repro.smmf.balancer import LoadBalancer
from repro.smmf.client import LLMClient
from repro.smmf.controller import ModelController
from repro.smmf.spec import ModelSpec
from repro.smmf.worker import ModelWorker


def deploy(
    specs: Iterable[ModelSpec],
    balancer: Optional[LoadBalancer] = None,
    heartbeat_timeout: float = 30.0,
    serving: Optional[ServingConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> tuple[ModelController, LLMClient]:
    """Spin up workers for every spec and return controller + client.

    This is the one-call "private deployment" path the paper's SMMF
    promises: every model runs locally under the caller's control.
    Passing an enabled :class:`ServingConfig` mounts the micro-batching
    scheduler in front of the pool (see ``docs/serving.md``); without
    one, dispatch is the direct path it has always been. An enabled
    :class:`ResilienceConfig` arms retry policies, per-worker circuit
    breakers and health recovery on both the controller and the client
    (see ``docs/resilience.md``).
    """
    controller = ModelController(
        balancer=balancer,
        heartbeat_timeout=heartbeat_timeout,
        resilience=resilience,
    )
    for spec in specs:
        for _replica in range(spec.replicas):
            model = spec.factory()
            if model.name != spec.name:
                raise ValueError(
                    f"spec {spec.name!r} built a model named "
                    f"{model.name!r}; factory and spec must agree"
                )
            worker = ModelWorker(model, latency_ms=spec.latency_ms)
            controller.register_worker(worker, latency_ms=spec.latency_ms)
    if serving is not None and serving.enabled:
        if serving.mode == "windowed":
            controller.scheduler = WindowedScheduler(controller, serving)
        else:
            controller.scheduler = RequestScheduler(controller, serving)
    server = ApiServer(controller)
    return controller, LLMClient(server, resilience=resilience)
