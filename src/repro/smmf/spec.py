"""Deployment specifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.llm.base import LanguageModel


@dataclass
class ModelSpec:
    """How one model should be deployed.

    ``factory`` builds a fresh :class:`LanguageModel` per replica, so
    workers never share mutable state — the same isolation a process
    boundary would give.
    """

    name: str
    factory: Callable[[], LanguageModel]
    replicas: int = 1
    #: Simulated per-request inference latency in milliseconds, used by
    #: the metrics layer (laptop substitute for GPU execution time).
    latency_ms: float = 10.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
