"""Client SDK applications use to talk to SMMF.

Since the caching PR the client fronts the serving stack with the
**inference cache tier**: repeated ``generate`` calls with the same
(model, normalized prompt, parameters) are answered from cache and
never reach the worker pool. With the optional semantic lookup
enabled, an exact miss may still be served by the cached answer of a
sufficiently similar prompt. Cache keys are scoped to one client
instance, so two serving stacks in one process never share entries.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.cache.keys import inference_key, instance_token, normalize_prompt
from repro.cache.manager import get_cache_manager
from repro.smmf.api_server import ApiRequest, ApiServer


class ClientError(Exception):
    """A request was rejected by the server.

    ``retry_after`` carries the server's backoff hint (seconds) when
    the rejection was backpressure (a 429 from the serving scheduler);
    it is ``None`` for every other failure.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.retry_after = retry_after


class LLMClient:
    """Thin convenience wrapper over the API server protocol.

    >>> # client = LLMClient(api_server)
    >>> # client.generate("chat", "hello", task="chat")
    """

    def __init__(self, server: ApiServer) -> None:
        self._server = server
        self._cache_token = instance_token()

    def generate(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> str:
        """Generate text; raises :class:`ClientError` on any failure.

        Successful responses are cached in the inference tier; errors
        are never cached, so a failed call retries the stack next time.
        ``timeout_s`` is the serving deadline: with the micro-batching
        scheduler enabled, a request still queued when it expires fails
        with a 504 instead of waiting forever (it does not key the
        cache — a deadline is an SLO, not part of the answer).
        """
        manager = get_cache_manager()
        if not manager.enabled("inference"):
            return self._generate_uncached(
                model, prompt, task, max_tokens, metadata, timeout_s
            )
        key = inference_key(
            self._cache_token, model, prompt, task, max_tokens, metadata
        )

        def compute() -> str:
            semantic = manager.semantic
            group = (self._cache_token, model, task or "", int(max_tokens))
            normalized = normalize_prompt(prompt)
            if semantic is not None:
                alias = semantic.find(group, normalized)
                if alias is not None:
                    found, text = manager.semantic_fetch(alias)
                    if found:
                        return text
            text = self._generate_uncached(
                model, prompt, task, max_tokens, metadata, timeout_s
            )
            if semantic is not None:
                semantic.add(group, normalized, key)
            return text

        return manager.cached("inference", key, compute, model=model)

    def generate_many(
        self,
        model: str,
        prompts: list[str],
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        max_concurrency: int = 16,
    ) -> list[str]:
        """Generate for many prompts concurrently; results align with
        ``prompts``.

        Requests are issued from a client-side thread pool, so with the
        serving scheduler enabled they land inside one batching window
        and coalesce into vectorized worker calls; each request still
        goes through :meth:`generate`, so the inference cache and its
        single-flight deduplication apply per prompt. The first failure
        is re-raised after all requests settle.
        """
        if not prompts:
            return []
        if len(prompts) == 1:
            return [
                self.generate(
                    model,
                    prompts[0],
                    task=task,
                    max_tokens=max_tokens,
                    metadata=metadata,
                    timeout_s=timeout_s,
                )
            ]
        workers = min(max_concurrency, len(prompts))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="llm-client"
        ) as pool:
            futures = []
            for prompt in prompts:
                # Propagate the caller's context so spans opened in
                # pool threads stay children of the current trace.
                context = contextvars.copy_context()
                futures.append(
                    pool.submit(
                        context.run,
                        self.generate,
                        model,
                        prompt,
                        task,
                        max_tokens,
                        metadata,
                        timeout_s,
                    )
                )
            return [future.result() for future in futures]

    async def agenerate(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> str:
        """Async-friendly :meth:`generate`: awaitable without blocking
        the event loop (the blocking round trip runs on the loop's
        default executor)."""
        loop = asyncio.get_running_loop()
        call = functools.partial(
            self.generate,
            model,
            prompt,
            task=task,
            max_tokens=max_tokens,
            metadata=metadata,
            timeout_s=timeout_s,
        )
        return await loop.run_in_executor(
            None, contextvars.copy_context().run, call
        )

    async def agenerate_many(
        self,
        model: str,
        prompts: list[str],
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> list[str]:
        """Concurrent async generation; results align with ``prompts``."""
        return list(
            await asyncio.gather(
                *(
                    self.agenerate(
                        model,
                        prompt,
                        task=task,
                        max_tokens=max_tokens,
                        metadata=metadata,
                        timeout_s=timeout_s,
                    )
                    for prompt in prompts
                )
            )
        )

    def _generate_uncached(
        self,
        model: str,
        prompt: str,
        task: Optional[str],
        max_tokens: int,
        metadata: Optional[dict[str, Any]],
        timeout_s: Optional[float] = None,
    ) -> str:
        """One real round trip through the serving stack."""
        body: dict[str, Any] = {
            "model": model,
            "prompt": prompt,
            "task": task,
            "max_tokens": max_tokens,
            "metadata": metadata or {},
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        response = self._server.handle(
            ApiRequest("POST", "/v1/generate", body)
        )
        if response.status != 200:
            raise ClientError(
                response.status,
                response.body.get("error", "unknown error"),
                retry_after=response.body.get("retry_after"),
            )
        return response.body["text"]

    def serving_stats(self) -> dict[str, Any]:
        """Scheduler statistics (``{"enabled": False}`` without one)."""
        return self._server.handle(ApiRequest("GET", "/v1/serving")).body

    def models(self) -> list[str]:
        response = self._server.handle(ApiRequest("GET", "/v1/models"))
        return response.body["models"]

    def health(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/health")).body

    def metrics(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/metrics")).body[
            "metrics"
        ]
