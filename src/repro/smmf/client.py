"""Client SDK applications use to talk to SMMF."""

from __future__ import annotations

from typing import Any, Optional

from repro.smmf.api_server import ApiRequest, ApiServer


class ClientError(Exception):
    """A request was rejected by the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status


class LLMClient:
    """Thin convenience wrapper over the API server protocol.

    >>> # client = LLMClient(api_server)
    >>> # client.generate("chat", "hello", task="chat")
    """

    def __init__(self, server: ApiServer) -> None:
        self._server = server

    def generate(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
    ) -> str:
        """Generate text; raises :class:`ClientError` on any failure."""
        response = self._server.handle(
            ApiRequest(
                "POST",
                "/v1/generate",
                {
                    "model": model,
                    "prompt": prompt,
                    "task": task,
                    "max_tokens": max_tokens,
                    "metadata": metadata or {},
                },
            )
        )
        if response.status != 200:
            raise ClientError(
                response.status, response.body.get("error", "unknown error")
            )
        return response.body["text"]

    def models(self) -> list[str]:
        response = self._server.handle(ApiRequest("GET", "/v1/models"))
        return response.body["models"]

    def health(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/health")).body

    def metrics(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/metrics")).body[
            "metrics"
        ]
