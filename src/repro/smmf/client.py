"""Client SDK applications use to talk to SMMF.

Since the caching PR the client fronts the serving stack with the
**inference cache tier**: repeated ``generate`` calls with the same
(model, normalized prompt, parameters) are answered from cache and
never reach the worker pool. With the optional semantic lookup
enabled, an exact miss may still be served by the cached answer of a
sufficiently similar prompt. Cache keys are scoped to one client
instance, so two serving stacks in one process never share entries.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.cache.keys import inference_key, instance_token, normalize_prompt
from repro.cache.manager import get_cache_manager
from repro.llm.base import LLMError
from repro.obs.metrics import get_registry
from repro.resilience.config import ResilienceConfig
from repro.resilience.retry import RetryPolicy
from repro.serving.scheduler import (
    DeadlineExceeded,
    SchedulerClosed,
    SchedulerOverloaded,
    StreamCancelled,
    StreamClosed,
)
from repro.smmf.api_server import ApiRequest, ApiServer
from repro.smmf.controller import SmmfError
from repro.tenancy.context import current_tenant

#: Statuses worth retrying: 429 is scheduler backpressure (comes with
#: a ``retry_after`` hint), 503 is a transient serving failure (all
#: replicas down mid-recovery, scheduler restarting).
_TRANSIENT_STATUSES = (429, 503)


def _classify_client_error(
    exc: BaseException,
) -> tuple[bool, Optional[float]]:
    if isinstance(exc, ClientError) and exc.status in _TRANSIENT_STATUSES:
        return True, exc.retry_after
    return False, None


def _stream_client_error(exc: BaseException) -> Optional["ClientError"]:
    """Map a mid-stream serving failure to the same structured
    :class:`ClientError` the unary endpoint would raise, so callers
    branch on ``code``/``retry_after`` identically for both shapes."""
    if isinstance(exc, SchedulerOverloaded):
        return ClientError(
            429,
            str(exc),
            retry_after=exc.retry_after,
            code=getattr(exc, "code", "scheduler_overloaded"),
        )
    if isinstance(exc, DeadlineExceeded):
        return ClientError(504, str(exc), code="deadline_exceeded")
    if isinstance(exc, StreamCancelled):
        # 499: the nginx convention for "client closed the request".
        return ClientError(499, str(exc), code="client_cancelled")
    if isinstance(exc, StreamClosed):
        return ClientError(503, str(exc), code="stream_closed")
    if isinstance(exc, SchedulerClosed):
        return ClientError(503, str(exc), code="scheduler_closed")
    if isinstance(exc, SmmfError):
        return ClientError(503, str(exc), code="smmf_unavailable")
    if isinstance(exc, LLMError):
        return ClientError(422, str(exc), code="llm_error")
    return None


class ClientError(Exception):
    """A request was rejected by the server.

    ``retry_after`` carries the server's backoff hint (seconds) when
    the rejection was backpressure (a 429 from the serving scheduler);
    it is ``None`` for every other failure. ``code`` is the server's
    stable machine identifier for the failure (``"tenant_throttled"``,
    ``"scheduler_overloaded"``, ...) — branch on it, not the message.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        code: Optional[str] = None,
    ) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.retry_after = retry_after
        self.code = code


class LLMClient:
    """Thin convenience wrapper over the API server protocol.

    >>> # client = LLMClient(api_server)
    >>> # client.generate("chat", "hello", task="chat")
    """

    def __init__(
        self,
        server: ApiServer,
        resilience: Optional[ResilienceConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._server = server
        self._cache_token = instance_token()
        self._resilience = (
            resilience if resilience is not None and resilience.enabled
            else None
        )
        self._retry_policy: Optional[RetryPolicy] = None
        if self._resilience is not None:
            self._retry_policy = RetryPolicy(
                self._resilience.retry,
                sleep=sleep,
                rng=rng,
                layer="client",
            )
        #: Lifetime count of turns served stale from cache (degraded).
        self.stale_serves = 0
        #: Lifetime count of responses the server marked ``degraded``
        #: (answered by the fallback model, not the requested one).
        self.degraded_serves = 0

    def generate(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> str:
        """Generate text; raises :class:`ClientError` on any failure.

        Successful responses are cached in the inference tier; errors
        are never cached, so a failed call retries the stack next time.
        ``timeout_s`` is the serving deadline: with the micro-batching
        scheduler enabled, a request still queued when it expires fails
        with a 504 instead of waiting forever (it does not key the
        cache — a deadline is an SLO, not part of the answer).
        """
        manager = get_cache_manager()
        if not manager.enabled("inference"):
            return self._generate_uncached(
                model, prompt, task, max_tokens, metadata, timeout_s
            )
        key = inference_key(
            self._cache_token, model, prompt, task, max_tokens, metadata
        )

        def compute() -> str:
            semantic = manager.semantic
            group = (self._cache_token, model, task or "", int(max_tokens))
            # The semantic index is shared across partitions, so under
            # a tenant scope the group carries the tenant: one tenant's
            # prompts can never alias onto another's cached answers.
            tenant = current_tenant()
            if tenant is not None:
                group = group + (tenant,)
            normalized = normalize_prompt(prompt)
            if semantic is not None:
                alias = semantic.find(group, normalized)
                if alias is not None:
                    found, text = manager.semantic_fetch(alias)
                    if found:
                        return text
            text = self._generate_uncached(
                model, prompt, task, max_tokens, metadata, timeout_s
            )
            if semantic is not None:
                semantic.add(group, normalized, key)
            return text

        stale = self._peek_stale(manager, key)
        try:
            return manager.cached("inference", key, compute, model=model)
        except ClientError as exc:
            if stale is not None and exc.status == 503:
                self.stale_serves += 1
                get_registry().counter(
                    "resilience_stale_served_total",
                    "turns answered from stale cache after a serving "
                    "failure",
                ).inc()
                return stale[0]
            raise

    def _peek_stale(self, manager, key: Any) -> Optional[tuple[str]]:
        """Degradation ladder, last rung: snapshot the cached answer
        for this exact request — fresh *or expired* — before the
        lookup path can expire-evict it. The snapshot is served only
        if the stack then 503s (the stack being down, not the request
        being wrong); a 1-tuple so a cached empty string still counts."""
        if self._resilience is None or not self._resilience.serve_stale:
            return None
        found, text = manager.peek_stale("inference", key)
        return (text,) if found else None

    def generate_many(
        self,
        model: str,
        prompts: list[str],
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        max_concurrency: int = 16,
    ) -> list[str]:
        """Generate for many prompts concurrently; results align with
        ``prompts``.

        Requests are issued from a client-side thread pool, so with the
        serving scheduler enabled they land inside one batching window
        and coalesce into vectorized worker calls; each request still
        goes through :meth:`generate`, so the inference cache and its
        single-flight deduplication apply per prompt. The first failure
        is re-raised after all requests settle.
        """
        if not prompts:
            return []
        if len(prompts) == 1:
            return [
                self.generate(
                    model,
                    prompts[0],
                    task=task,
                    max_tokens=max_tokens,
                    metadata=metadata,
                    timeout_s=timeout_s,
                )
            ]
        workers = min(max_concurrency, len(prompts))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="llm-client"
        ) as pool:
            futures = []
            for prompt in prompts:
                # Propagate the caller's context so spans opened in
                # pool threads stay children of the current trace.
                context = contextvars.copy_context()
                futures.append(
                    pool.submit(
                        context.run,
                        self.generate,
                        model,
                        prompt,
                        task,
                        max_tokens,
                        metadata,
                        timeout_s,
                    )
                )
            return [future.result() for future in futures]

    async def agenerate(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> str:
        """Async-friendly :meth:`generate`.

        With the inference cache tier disabled the call is async
        end-to-end: the request awaits :meth:`ApiServer.ahandle`
        (riding the continuous engine's ``aschedule`` when mounted)
        and transient rejections back off via the retry policy's
        async path — no thread parked per in-flight request, so
        concurrent agents coalesce into shared batches. With the
        cache enabled, the blocking path runs on the loop's default
        executor: the cache's single-flight de-duplication is
        synchronous by design, and its hit path never blocks long.
        """
        if get_cache_manager().enabled("inference"):
            loop = asyncio.get_running_loop()
            call = functools.partial(
                self.generate,
                model,
                prompt,
                task=task,
                max_tokens=max_tokens,
                metadata=metadata,
                timeout_s=timeout_s,
            )
            return await loop.run_in_executor(
                None, contextvars.copy_context().run, call
            )
        body = self._request_body(
            model, prompt, task, max_tokens, metadata, timeout_s
        )
        if self._retry_policy is None:
            return await self._aroundtrip(body)
        return await self._retry_policy.arun(
            lambda: self._aroundtrip(body),
            classify=_classify_client_error,
        )

    async def _aroundtrip(self, body: dict[str, Any]) -> str:
        response = await self._server.ahandle(
            ApiRequest("POST", "/v1/generate", body)
        )
        if response.status != 200:
            raise ClientError(
                response.status,
                response.body.get("error", "unknown error"),
                retry_after=response.body.get("retry_after"),
                code=response.body.get("code"),
            )
        if response.body.get("degraded"):
            self.degraded_serves += 1
        return response.body["text"]

    async def agenerate_many(
        self,
        model: str,
        prompts: list[str],
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> list[str]:
        """Concurrent async generation; results align with ``prompts``."""
        return list(
            await asyncio.gather(
                *(
                    self.agenerate(
                        model,
                        prompt,
                        task=task,
                        max_tokens=max_tokens,
                        metadata=metadata,
                        timeout_s=timeout_s,
                    )
                    for prompt in prompts
                )
            )
        )

    def stream(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ):
        """Stream chunks of a response as they are generated.

        Streams bypass the inference cache (a partial transcript is
        not a cacheable answer). Closing the returned generator — or
        just breaking out of the ``for`` — cancels the request: with
        the continuous engine its batch slot and worker in-flight
        count free mid-generation. Admission and mid-stream failures
        both raise :class:`ClientError` with the same codes as
        :meth:`generate`, plus ``stream_closed`` (server shut down
        mid-stream) and ``client_cancelled``.
        """
        result = self._server.handle_stream(
            ApiRequest(
                "POST",
                "/v1/generate/stream",
                self._request_body(
                    model, prompt, task, max_tokens, metadata, timeout_s
                ),
            )
        )
        if result.status != 200:
            raise ClientError(
                result.status,
                result.body.get("error", "unknown error"),
                retry_after=result.body.get("retry_after"),
                code=result.body.get("code"),
            )
        return self._relay_chunks(result.chunks)

    async def astream(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ):
        """Async :meth:`stream`: an async generator of chunks.

        With the continuous engine this is async end-to-end — no
        thread is parked per stream; chunks are awaited straight off
        the engine's bounded per-stream buffer.
        """
        result = await self._server.ahandle_stream(
            ApiRequest(
                "POST",
                "/v1/generate/stream",
                self._request_body(
                    model, prompt, task, max_tokens, metadata, timeout_s
                ),
            )
        )
        if result.status != 200:
            raise ClientError(
                result.status,
                result.body.get("error", "unknown error"),
                retry_after=result.body.get("retry_after"),
                code=result.body.get("code"),
            )
        try:
            async for chunk in result.chunks:
                yield chunk
        except BaseException as exc:
            mapped = _stream_client_error(exc)
            if mapped is None:
                raise
            raise mapped from exc
        finally:
            aclose = getattr(result.chunks, "aclose", None)
            if aclose is not None:
                await aclose()

    @staticmethod
    def _request_body(
        model: str,
        prompt: str,
        task: Optional[str],
        max_tokens: int,
        metadata: Optional[dict[str, Any]],
        timeout_s: Optional[float],
    ) -> dict[str, Any]:
        body: dict[str, Any] = {
            "model": model,
            "prompt": prompt,
            "task": task,
            "max_tokens": max_tokens,
            "metadata": metadata or {},
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return body

    @staticmethod
    def _relay_chunks(chunks):
        try:
            yield from chunks
        except BaseException as exc:
            mapped = _stream_client_error(exc)
            if mapped is None:
                raise
            raise mapped from exc
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()

    def _generate_uncached(
        self,
        model: str,
        prompt: str,
        task: Optional[str],
        max_tokens: int,
        metadata: Optional[dict[str, Any]],
        timeout_s: Optional[float] = None,
    ) -> str:
        """One logical round trip through the serving stack.

        With resilience enabled, transient rejections (429/503) are
        retried under the :class:`RetryPolicy` — a 429's
        ``retry_after`` hint floors the backoff, so shed requests wait
        out the backlog the server predicted instead of failing the
        user's turn.
        """
        body: dict[str, Any] = {
            "model": model,
            "prompt": prompt,
            "task": task,
            "max_tokens": max_tokens,
            "metadata": metadata or {},
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if self._retry_policy is None:
            return self._roundtrip(body)
        return self._retry_policy.run(
            lambda: self._roundtrip(body),
            classify=_classify_client_error,
        )

    def _roundtrip(self, body: dict[str, Any]) -> str:
        response = self._server.handle(
            ApiRequest("POST", "/v1/generate", body)
        )
        if response.status != 200:
            raise ClientError(
                response.status,
                response.body.get("error", "unknown error"),
                retry_after=response.body.get("retry_after"),
                code=response.body.get("code"),
            )
        if response.body.get("degraded"):
            self.degraded_serves += 1
        return response.body["text"]

    def serving_stats(self) -> dict[str, Any]:
        """Scheduler statistics (``{"enabled": False}`` without one)."""
        return self._server.handle(ApiRequest("GET", "/v1/serving")).body

    def models(self) -> list[str]:
        response = self._server.handle(ApiRequest("GET", "/v1/models"))
        return response.body["models"]

    def health(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/health")).body

    def metrics(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/metrics")).body[
            "metrics"
        ]
