"""Client SDK applications use to talk to SMMF.

Since the caching PR the client fronts the serving stack with the
**inference cache tier**: repeated ``generate`` calls with the same
(model, normalized prompt, parameters) are answered from cache and
never reach the worker pool. With the optional semantic lookup
enabled, an exact miss may still be served by the cached answer of a
sufficiently similar prompt. Cache keys are scoped to one client
instance, so two serving stacks in one process never share entries.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cache.keys import inference_key, instance_token, normalize_prompt
from repro.cache.manager import get_cache_manager
from repro.smmf.api_server import ApiRequest, ApiServer


class ClientError(Exception):
    """A request was rejected by the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status


class LLMClient:
    """Thin convenience wrapper over the API server protocol.

    >>> # client = LLMClient(api_server)
    >>> # client.generate("chat", "hello", task="chat")
    """

    def __init__(self, server: ApiServer) -> None:
        self._server = server
        self._cache_token = instance_token()

    def generate(
        self,
        model: str,
        prompt: str,
        task: Optional[str] = None,
        max_tokens: int = 512,
        metadata: Optional[dict[str, Any]] = None,
    ) -> str:
        """Generate text; raises :class:`ClientError` on any failure.

        Successful responses are cached in the inference tier; errors
        are never cached, so a failed call retries the stack next time.
        """
        manager = get_cache_manager()
        if not manager.enabled("inference"):
            return self._generate_uncached(
                model, prompt, task, max_tokens, metadata
            )
        key = inference_key(
            self._cache_token, model, prompt, task, max_tokens, metadata
        )

        def compute() -> str:
            semantic = manager.semantic
            group = (self._cache_token, model, task or "", int(max_tokens))
            normalized = normalize_prompt(prompt)
            if semantic is not None:
                alias = semantic.find(group, normalized)
                if alias is not None:
                    found, text = manager.semantic_fetch(alias)
                    if found:
                        return text
            text = self._generate_uncached(
                model, prompt, task, max_tokens, metadata
            )
            if semantic is not None:
                semantic.add(group, normalized, key)
            return text

        return manager.cached("inference", key, compute, model=model)

    def _generate_uncached(
        self,
        model: str,
        prompt: str,
        task: Optional[str],
        max_tokens: int,
        metadata: Optional[dict[str, Any]],
    ) -> str:
        """One real round trip through the serving stack."""
        response = self._server.handle(
            ApiRequest(
                "POST",
                "/v1/generate",
                {
                    "model": model,
                    "prompt": prompt,
                    "task": task,
                    "max_tokens": max_tokens,
                    "metadata": metadata or {},
                },
            )
        )
        if response.status != 200:
            raise ClientError(
                response.status, response.body.get("error", "unknown error")
            )
        return response.body["text"]

    def models(self) -> list[str]:
        response = self._server.handle(ApiRequest("GET", "/v1/models"))
        return response.body["models"]

    def health(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/health")).body

    def metrics(self) -> dict[str, Any]:
        return self._server.handle(ApiRequest("GET", "/v1/metrics")).body[
            "metrics"
        ]
