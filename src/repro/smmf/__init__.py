"""Service-oriented Multi-model Management Framework (SMMF).

Implements the paper's two-layer design:

- **model deployment layer** — :class:`ModelController` owns the
  registry metadata, admits workers via registration + heartbeats, and
  routes requests; the :class:`ApiServer` exposes the controller through
  an HTTP-shaped request/response interface consumed by
  :class:`LLMClient`.
- **model inference layer** — each :class:`ModelWorker` hosts one
  :class:`repro.llm.LanguageModel` instance and executes inference.

All components run in-process (the paper's distributed substrate is Ray
/ cloud; DESIGN.md records the substitution) but speak the same
protocol: register -> heartbeat -> route -> infer -> failover.
"""

from repro.smmf.api_server import ApiRequest, ApiResponse, ApiServer
from repro.smmf.balancer import (
    LeastBusyBalancer,
    LoadBalancer,
    RandomBalancer,
    RoundRobinBalancer,
)
from repro.smmf.client import ClientError, LLMClient
from repro.smmf.controller import ModelController, SmmfError
from repro.smmf.deploy import deploy
from repro.smmf.metrics import MetricsCollector
from repro.smmf.registry import ModelRegistry, WorkerRecord
from repro.smmf.spec import ModelSpec
from repro.smmf.worker import ModelWorker, WorkerCrashed

__all__ = [
    "ApiRequest",
    "ApiResponse",
    "ApiServer",
    "ClientError",
    "LLMClient",
    "LeastBusyBalancer",
    "LoadBalancer",
    "MetricsCollector",
    "ModelController",
    "ModelRegistry",
    "ModelSpec",
    "ModelWorker",
    "RandomBalancer",
    "RoundRobinBalancer",
    "SmmfError",
    "WorkerCrashed",
    "WorkerRecord",
    "deploy",
]
