"""Serving metrics: counters and latency accounting.

Since the ``repro.obs`` subsystem landed, :class:`MetricsCollector` is
a thin facade over the unified :class:`~repro.obs.metrics.MetricsRegistry`:
every recording both updates the per-model aggregates (the historical
``snapshot()`` shape the API server and benchmarks consume) and
publishes to the global registry under the documented metric names
(``model_requests_total``, ``model_latency_ms``, ``model_tokens_total``,
``model_retries_total``, ``worker_requests_total``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import get_registry


@dataclass
class ModelMetrics:
    """Aggregated counters for one model."""

    requests: int = 0
    failures: int = 0
    retries: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    total_latency_ms: float = 0.0

    @property
    def mean_latency_ms(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_latency_ms / self.requests


class MetricsCollector:
    """Per-model and per-worker metric aggregation."""

    def __init__(self) -> None:
        self._models: dict[str, ModelMetrics] = {}
        self._worker_requests: dict[str, int] = {}
        self._lock = threading.Lock()

    def record_success(
        self,
        model: str,
        worker_id: str,
        latency_ms: float,
        prompt_tokens: int,
        completion_tokens: int,
        retries: int = 0,
    ) -> None:
        with self._lock:
            metrics = self._models.setdefault(model, ModelMetrics())
            metrics.requests += 1
            metrics.retries += retries
            metrics.prompt_tokens += prompt_tokens
            metrics.completion_tokens += completion_tokens
            metrics.total_latency_ms += latency_ms
            self._worker_requests[worker_id] = (
                self._worker_requests.get(worker_id, 0) + 1
            )
        registry = get_registry()
        registry.counter(
            "model_requests_total", "inference requests per model"
        ).inc(model=model, outcome="success")
        registry.histogram(
            "model_latency_ms", "per-model serving latency"
        ).observe(latency_ms, model=model)
        if retries:
            registry.counter(
                "model_retries_total", "failover retries per model"
            ).inc(retries, model=model)
        tokens = registry.counter(
            "model_tokens_total", "tokens processed per model"
        )
        tokens.inc(prompt_tokens, model=model, kind="prompt")
        tokens.inc(completion_tokens, model=model, kind="completion")
        registry.counter(
            "worker_requests_total", "requests served per worker"
        ).inc(worker=worker_id)

    def record_failure(self, model: str) -> None:
        with self._lock:
            metrics = self._models.setdefault(model, ModelMetrics())
            metrics.failures += 1
        get_registry().counter(
            "model_requests_total", "inference requests per model"
        ).inc(model=model, outcome="failure")

    def model(self, name: str) -> ModelMetrics:
        with self._lock:
            return self._models.setdefault(name, ModelMetrics())

    def worker_requests(self, worker_id: str) -> int:
        with self._lock:
            return self._worker_requests.get(worker_id, 0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict view for dashboards and benchmark output."""
        with self._lock:
            return {
                name: {
                    "requests": m.requests,
                    "failures": m.failures,
                    "retries": m.retries,
                    "prompt_tokens": m.prompt_tokens,
                    "completion_tokens": m.completion_tokens,
                    "mean_latency_ms": round(m.mean_latency_ms, 3),
                }
                for name, m in sorted(self._models.items())
            }
