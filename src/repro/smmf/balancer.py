"""Load-balancing policies over healthy workers."""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.smmf.registry import WorkerRecord


class LoadBalancer(abc.ABC):
    """Choose one worker among the healthy candidates."""

    name = "base"

    @abc.abstractmethod
    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        """Pick a worker; ``candidates`` is non-empty."""


class RoundRobinBalancer(LoadBalancer):
    """Cycle through workers per model."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursors: dict[str, int] = {}

    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        model = candidates[0].model_name
        cursor = self._cursors.get(model, 0)
        chosen = candidates[cursor % len(candidates)]
        self._cursors[model] = cursor + 1
        return chosen


class RandomBalancer(LoadBalancer):
    """Uniform random choice (seedable for reproducibility)."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        return self._rng.choice(candidates)


class LeastBusyBalancer(LoadBalancer):
    """Prefer the worker with the fewest in-flight requests, breaking
    ties by total served (coldest worker first)."""

    name = "least_busy"

    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        return min(
            candidates,
            key=lambda record: (
                record.worker.inflight,
                record.worker.served,
                record.worker.worker_id,
            ),
        )
