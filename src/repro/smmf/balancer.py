"""Load-balancing policies over healthy workers."""

from __future__ import annotations

import abc
import random
import threading
from typing import Optional

from repro.obs.metrics import get_registry
from repro.smmf.registry import WorkerRecord


class LoadBalancer(abc.ABC):
    """Choose one worker among the healthy candidates.

    Concrete policies implement ``choose``; at class-creation time it
    is wrapped to record one ``balancer_choices_total`` sample and the
    chosen worker's queue depth (``balancer_chosen_inflight``), so
    balancing behaviour is observable without policy code changes.
    """

    name = "base"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        choose = cls.__dict__.get("choose")
        if choose is not None and not getattr(
            choose, "__obs_wrapped__", False
        ):
            cls.choose = _metered_choose(choose)

    @abc.abstractmethod
    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        """Pick a worker; ``candidates`` is non-empty."""


def _metered_choose(choose):
    def wrapped(
        self: "LoadBalancer", candidates: list[WorkerRecord]
    ) -> WorkerRecord:
        record = choose(self, candidates)
        registry = get_registry()
        registry.counter(
            "balancer_choices_total", "routing decisions per policy"
        ).inc(policy=self.name, model=record.model_name)
        registry.histogram(
            "balancer_chosen_inflight",
            "queue depth of the chosen worker at pick time",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        ).observe(record.worker.load_snapshot()[0], policy=self.name)
        return record

    wrapped.__obs_wrapped__ = True
    wrapped.__doc__ = choose.__doc__
    return wrapped


class RoundRobinBalancer(LoadBalancer):
    """Cycle through workers per model."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursors: dict[str, int] = {}
        self._lock = threading.Lock()

    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        model = candidates[0].model_name
        with self._lock:
            cursor = self._cursors.get(model, 0)
            self._cursors[model] = cursor + 1
        return candidates[cursor % len(candidates)]


class RandomBalancer(LoadBalancer):
    """Uniform random choice (seedable for reproducibility)."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        with self._lock:
            return self._rng.choice(candidates)


class LeastBusyBalancer(LoadBalancer):
    """Prefer the worker with the fewest in-flight requests, breaking
    ties by total served (coldest worker first).

    Loads are read through :meth:`ModelWorker.load_snapshot` so each
    candidate's (inflight, served) pair is internally consistent even
    while scheduler pool threads are mutating the counters.
    """

    name = "least_busy"

    def choose(self, candidates: list[WorkerRecord]) -> WorkerRecord:
        snapshots = [
            (record.worker.load_snapshot(), record) for record in candidates
        ]
        return min(
            snapshots,
            key=lambda pair: (
                pair[0][0],
                pair[0][1],
                pair[1].worker.worker_id,
            ),
        )[1]
