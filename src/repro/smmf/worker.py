"""Model workers: the inference layer."""

from __future__ import annotations

import itertools
import threading
from typing import Optional

from repro.llm.base import (
    GenerationRequest,
    GenerationResponse,
    LanguageModel,
)
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

_worker_ids = itertools.count(1)


def _queue_depth_gauge():
    return get_registry().gauge(
        "worker_inflight", "requests currently executing per worker"
    )


def _stream_counter():
    return get_registry().counter(
        "worker_streams_total", "streams by worker and outcome"
    )


class WorkerCrashed(Exception):
    """The worker is down (failure injection or explicit kill)."""


class ModelWorker:
    """Hosts one model replica and executes inference requests.

    Tracks in-flight and served counts (used by the least-busy
    balancer) and supports failure injection for failover tests.
    Counter updates are guarded by a per-worker lock: the serving
    scheduler dispatches to one worker from several pool threads
    concurrently, and unguarded ``+=`` would drop updates.
    """

    def __init__(
        self,
        model: LanguageModel,
        latency_ms: float = 10.0,
        worker_id: Optional[str] = None,
    ) -> None:
        self.model = model
        self.latency_ms = latency_ms
        self.worker_id = worker_id or f"worker-{next(_worker_ids)}"
        self.inflight = 0
        self.served = 0
        self.failed = 0
        #: Streams whose consumer walked away before exhaustion.
        self.abandoned_streams = 0
        self.alive = True
        #: When > 0, the next N requests crash (failure injection).
        self.fail_next = 0
        self._lock = threading.Lock()

    # -- bookkeeping (all under the worker lock) ---------------------------

    def load_snapshot(self) -> tuple[int, int]:
        """A consistent ``(inflight, served)`` pair for balancers."""
        with self._lock:
            return self.inflight, self.served

    def stats_snapshot(self) -> dict[str, object]:
        """Every lock-guarded counter plus liveness, read atomically.

        The controller's health view reads this instead of the bare
        attributes so a snapshot taken mid-request can never pair a
        pre-crash ``alive`` with a post-crash ``failed`` count.
        """
        with self._lock:
            return {
                "inflight": self.inflight,
                "served": self.served,
                "failed": self.failed,
                "abandoned_streams": self.abandoned_streams,
                "alive": self.alive,
            }

    def _check_up(self, amount: int = 1) -> None:
        """Raise if down or crash-injected; charges ``failed``."""
        with self._lock:
            if not self.alive:
                raise WorkerCrashed(f"{self.worker_id} is not alive")
            if self.fail_next > 0:
                self.fail_next -= 1
                self.failed += amount
                raise WorkerCrashed(
                    f"{self.worker_id} crashed handling a request"
                )

    def _begin(self, amount: int = 1) -> None:
        with self._lock:
            self.inflight += amount
            depth = self.inflight
        _queue_depth_gauge().set(depth, worker=self.worker_id)

    def _end(self, amount: int = 1, served: int = 0) -> None:
        with self._lock:
            self.inflight -= amount
            self.served += served
            depth = self.inflight
        _queue_depth_gauge().set(depth, worker=self.worker_id)

    # -- execution ---------------------------------------------------------

    def handle(self, request: GenerationRequest) -> GenerationResponse:
        """Run one inference call; raises :class:`WorkerCrashed` when
        the worker is down."""
        self._check_up()
        self._begin()
        served = 0
        try:
            with get_tracer().span(
                "smmf.worker",
                worker=self.worker_id,
                model=self.model.name,
            ) as span:
                # A worker execution is by definition the cache-miss
                # path: turns served by the inference cache never get
                # here (the client short-circuits before the server).
                span.set_attribute("cache.hit", False)
                response = self.model.generate(request)
                span.set_attributes(
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                )
            served = 1
        finally:
            self._end(served=served)
        return response

    def handle_batch(
        self, requests: list[GenerationRequest]
    ) -> list[GenerationResponse]:
        """Run a coalesced batch as one model call.

        The whole batch succeeds or fails together (one replica, one
        execution); the scheduler fails the batch over to another
        replica on :class:`WorkerCrashed`.
        """
        if not requests:
            return []
        self._check_up(amount=len(requests))
        self._begin(len(requests))
        served = 0
        try:
            with get_tracer().span(
                "smmf.batch",
                worker=self.worker_id,
                model=self.model.name,
            ) as span:
                span.set_attribute("batch.size", len(requests))
                span.set_attribute("cache.hit", False)
                responses = self.model.generate_batch(requests)
                span.set_attributes(
                    prompt_tokens=sum(r.prompt_tokens for r in responses),
                    completion_tokens=sum(
                        r.completion_tokens for r in responses
                    ),
                )
            served = len(requests)
        finally:
            self._end(len(requests), served=served)
        return responses

    def handle_stream(self, request: GenerationRequest):
        """Streaming inference: returns a generator of chunks.

        Liveness/failure-injection checks run eagerly at call time (not
        at first ``next``), the stream runs inside the same
        ``smmf.worker`` span discipline as :meth:`handle`, and a
        consumer that abandons the generator mid-stream is counted
        distinctly (``abandoned_streams`` / ``worker_streams_total``)
        instead of silently skipping ``served``.
        """
        self._check_up()
        return self._stream_body(request)

    def _stream_body(self, request: GenerationRequest):
        self._begin()
        completed = False
        try:
            with get_tracer().span(
                "smmf.worker",
                worker=self.worker_id,
                model=self.model.name,
                stream=True,
            ) as span:
                span.set_attribute("cache.hit", False)
                chunks = 0
                try:
                    for chunk in self.model.stream(request):
                        chunks += 1
                        yield chunk
                finally:
                    span.set_attribute("chunks", chunks)
            completed = True
        except GeneratorExit:
            with self._lock:
                self.abandoned_streams += 1
            _stream_counter().inc(
                worker=self.worker_id, outcome="abandoned"
            )
            raise
        except Exception:
            _stream_counter().inc(worker=self.worker_id, outcome="error")
            raise
        finally:
            self._end(served=1 if completed else 0)
            if completed:
                _stream_counter().inc(
                    worker=self.worker_id, outcome="completed"
                )

    def kill(self) -> None:
        """Simulate the worker process dying."""
        with self._lock:
            self.alive = False

    def restart(self) -> None:
        """Bring the worker back up, clearing injected faults.

        Restarting re-enables execution but does *not* re-admit the
        worker into routing by itself — the controller's recovery path
        (lazy re-admission, or a resilience health probe) does that.
        """
        with self._lock:
            self.alive = True
            self.fail_next = 0

    def inject_failures(self, count: int) -> None:
        """Arm ``count`` crash injections (chaos harness entry point)."""
        with self._lock:
            self.fail_next += count

    def probe(self) -> bool:
        """Liveness probe: up, with no armed crash injections.

        Used by the resilience health monitor; deliberately not an
        inference call, so probing never consumes injected faults or
        occupies the replica.
        """
        with self._lock:
            return self.alive and self.fail_next == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return (
            f"ModelWorker({self.worker_id}, model={self.model.name!r}, "
            f"{state})"
        )
