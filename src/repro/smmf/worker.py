"""Model workers: the inference layer."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.llm.base import (
    GenerationRequest,
    GenerationResponse,
    LanguageModel,
)
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

_worker_ids = itertools.count(1)


def _queue_depth_gauge():
    return get_registry().gauge(
        "worker_inflight", "requests currently executing per worker"
    )


class WorkerCrashed(Exception):
    """The worker is down (failure injection or explicit kill)."""


class ModelWorker:
    """Hosts one model replica and executes inference requests.

    Tracks in-flight and served counts (used by the least-busy
    balancer) and supports failure injection for failover tests.
    """

    def __init__(
        self,
        model: LanguageModel,
        latency_ms: float = 10.0,
        worker_id: Optional[str] = None,
    ) -> None:
        self.model = model
        self.latency_ms = latency_ms
        self.worker_id = worker_id or f"worker-{next(_worker_ids)}"
        self.inflight = 0
        self.served = 0
        self.failed = 0
        self.alive = True
        #: When > 0, the next N requests crash (failure injection).
        self.fail_next = 0

    def handle(self, request: GenerationRequest) -> GenerationResponse:
        """Run one inference call; raises :class:`WorkerCrashed` when
        the worker is down."""
        if not self.alive:
            raise WorkerCrashed(f"{self.worker_id} is not alive")
        if self.fail_next > 0:
            self.fail_next -= 1
            self.failed += 1
            raise WorkerCrashed(
                f"{self.worker_id} crashed handling a request"
            )
        gauge = _queue_depth_gauge()
        self.inflight += 1
        gauge.set(self.inflight, worker=self.worker_id)
        try:
            with get_tracer().span(
                "smmf.worker",
                worker=self.worker_id,
                model=self.model.name,
            ) as span:
                # A worker execution is by definition the cache-miss
                # path: turns served by the inference cache never get
                # here (the client short-circuits before the server).
                span.set_attribute("cache.hit", False)
                response = self.model.generate(request)
                span.set_attributes(
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                )
        finally:
            self.inflight -= 1
            gauge.set(self.inflight, worker=self.worker_id)
        self.served += 1
        return response

    def handle_stream(self, request: GenerationRequest):
        """Streaming inference: yields completion chunks."""
        if not self.alive:
            raise WorkerCrashed(f"{self.worker_id} is not alive")
        if self.fail_next > 0:
            self.fail_next -= 1
            self.failed += 1
            raise WorkerCrashed(
                f"{self.worker_id} crashed handling a request"
            )
        gauge = _queue_depth_gauge()
        self.inflight += 1
        gauge.set(self.inflight, worker=self.worker_id)
        try:
            yield from self.model.stream(request)
        finally:
            self.inflight -= 1
            gauge.set(self.inflight, worker=self.worker_id)
        self.served += 1

    def kill(self) -> None:
        """Simulate the worker process dying."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True
        self.fail_next = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return (
            f"ModelWorker({self.worker_id}, model={self.model.name!r}, "
            f"{state})"
        )
