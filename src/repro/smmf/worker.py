"""Model workers: the inference layer."""

from __future__ import annotations

import itertools
import threading
from typing import Optional

from repro.llm.base import (
    GenerationRequest,
    GenerationResponse,
    LanguageModel,
)
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

_worker_ids = itertools.count(1)


def _queue_depth_gauge():
    return get_registry().gauge(
        "worker_inflight", "requests currently executing per worker"
    )


def _stream_counter():
    return get_registry().counter(
        "worker_streams_total", "streams by worker and outcome"
    )


class WorkerCrashed(Exception):
    """The worker is down (failure injection or explicit kill)."""


class ModelWorker:
    """Hosts one model replica and executes inference requests.

    Tracks in-flight and served counts (used by the least-busy
    balancer) and supports failure injection for failover tests.
    Counter updates are guarded by a per-worker lock: the serving
    scheduler dispatches to one worker from several pool threads
    concurrently, and unguarded ``+=`` would drop updates.
    """

    def __init__(
        self,
        model: LanguageModel,
        latency_ms: float = 10.0,
        worker_id: Optional[str] = None,
    ) -> None:
        self.model = model
        self.latency_ms = latency_ms
        self.worker_id = worker_id or f"worker-{next(_worker_ids)}"
        self.inflight = 0
        self.served = 0
        self.failed = 0
        #: Streams whose consumer walked away before exhaustion.
        self.abandoned_streams = 0
        #: Streams cancelled mid-generation through the continuous
        #: engine (slot released before the response finished).
        self.cancelled_streams = 0
        self.alive = True
        #: When > 0, the next N requests crash (failure injection).
        self.fail_next = 0
        self._lock = threading.Lock()

    # -- bookkeeping (all under the worker lock) ---------------------------

    def load_snapshot(self) -> tuple[int, int]:
        """A consistent ``(inflight, served)`` pair for balancers."""
        with self._lock:
            return self.inflight, self.served

    def stats_snapshot(self) -> dict[str, object]:
        """Every lock-guarded counter plus liveness, read atomically.

        The controller's health view reads this instead of the bare
        attributes so a snapshot taken mid-request can never pair a
        pre-crash ``alive`` with a post-crash ``failed`` count.
        """
        with self._lock:
            return {
                "inflight": self.inflight,
                "served": self.served,
                "failed": self.failed,
                "abandoned_streams": self.abandoned_streams,
                "cancelled_streams": self.cancelled_streams,
                "alive": self.alive,
            }

    def _check_up(self, amount: int = 1) -> None:
        """Raise if down or crash-injected; charges ``failed``."""
        with self._lock:
            if not self.alive:
                raise WorkerCrashed(f"{self.worker_id} is not alive")
            if self.fail_next > 0:
                self.fail_next -= 1
                self.failed += amount
                raise WorkerCrashed(
                    f"{self.worker_id} crashed handling a request"
                )

    def _begin(self, amount: int = 1) -> None:
        with self._lock:
            self.inflight += amount
            depth = self.inflight
        _queue_depth_gauge().set(depth, worker=self.worker_id)

    def _end(self, amount: int = 1, served: int = 0) -> None:
        with self._lock:
            self.inflight -= amount
            self.served += served
            depth = self.inflight
        _queue_depth_gauge().set(depth, worker=self.worker_id)

    # -- execution ---------------------------------------------------------

    def handle(self, request: GenerationRequest) -> GenerationResponse:
        """Run one inference call; raises :class:`WorkerCrashed` when
        the worker is down."""
        self._check_up()
        self._begin()
        served = 0
        try:
            with get_tracer().span(
                "smmf.worker",
                worker=self.worker_id,
                model=self.model.name,
            ) as span:
                # A worker execution is by definition the cache-miss
                # path: turns served by the inference cache never get
                # here (the client short-circuits before the server).
                span.set_attribute("cache.hit", False)
                response = self.model.generate(request)
                span.set_attributes(
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                )
            served = 1
        finally:
            self._end(served=served)
        return response

    def handle_batch(
        self, requests: list[GenerationRequest]
    ) -> list[GenerationResponse]:
        """Run a coalesced batch as one model call.

        The whole batch succeeds or fails together (one replica, one
        execution); the scheduler fails the batch over to another
        replica on :class:`WorkerCrashed`.
        """
        if not requests:
            return []
        self._check_up(amount=len(requests))
        self._begin(len(requests))
        served = 0
        try:
            with get_tracer().span(
                "smmf.batch",
                worker=self.worker_id,
                model=self.model.name,
            ) as span:
                span.set_attribute("batch.size", len(requests))
                span.set_attribute("cache.hit", False)
                responses = self.model.generate_batch(requests)
                span.set_attributes(
                    prompt_tokens=sum(r.prompt_tokens for r in responses),
                    completion_tokens=sum(
                        r.completion_tokens for r in responses
                    ),
                )
            served = len(requests)
        finally:
            self._end(len(requests), served=served)
        return responses

    def start_batch(self, requests: list[GenerationRequest]):
        """Open a continuous-batching execution on this replica.

        Liveness/failure-injection checks run *before* the model sees
        anything (so the whole just-formed batch fails over without a
        partial model call), and every member is charged to
        ``inflight`` until :class:`WorkerExecution` individually ends
        it — completed, cancelled, or abandoned to isolation.
        """
        self._check_up(amount=len(requests))
        self._begin(len(requests))
        try:
            execution = self.model.start_batch(list(requests))
        except BaseException:
            self._end(len(requests))
            raise
        return WorkerExecution(self, execution)

    def handle_stream(self, request: GenerationRequest):
        """Streaming inference: returns a generator of chunks.

        Liveness/failure-injection checks run eagerly at call time (not
        at first ``next``), the stream runs inside the same
        ``smmf.worker`` span discipline as :meth:`handle`, and a
        consumer that abandons the generator mid-stream is counted
        distinctly (``abandoned_streams`` / ``worker_streams_total``)
        instead of silently skipping ``served``.
        """
        self._check_up()
        return self._stream_body(request)

    def _stream_body(self, request: GenerationRequest):
        self._begin()
        completed = False
        try:
            with get_tracer().span(
                "smmf.worker",
                worker=self.worker_id,
                model=self.model.name,
                stream=True,
            ) as span:
                span.set_attribute("cache.hit", False)
                chunks = 0
                try:
                    for chunk in self.model.stream(request):
                        chunks += 1
                        yield chunk
                finally:
                    span.set_attribute("chunks", chunks)
            completed = True
        except GeneratorExit:
            with self._lock:
                self.abandoned_streams += 1
            _stream_counter().inc(
                worker=self.worker_id, outcome="abandoned"
            )
            raise
        except Exception:
            _stream_counter().inc(worker=self.worker_id, outcome="error")
            raise
        finally:
            self._end(served=1 if completed else 0)
            if completed:
                _stream_counter().inc(
                    worker=self.worker_id, outcome="completed"
                )

    def kill(self) -> None:
        """Simulate the worker process dying."""
        with self._lock:
            self.alive = False

    def restart(self) -> None:
        """Bring the worker back up, clearing injected faults.

        Restarting re-enables execution but does *not* re-admit the
        worker into routing by itself — the controller's recovery path
        (lazy re-admission, or a resilience health probe) does that.
        """
        with self._lock:
            self.alive = True
            self.fail_next = 0

    def inject_failures(self, count: int) -> None:
        """Arm ``count`` crash injections (chaos harness entry point)."""
        with self._lock:
            self.fail_next += count

    def probe(self) -> bool:
        """Liveness probe: up, with no armed crash injections.

        Used by the resilience health monitor; deliberately not an
        inference call, so probing never consumes injected faults or
        occupies the replica.
        """
        with self._lock:
            return self.alive and self.fail_next == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return (
            f"ModelWorker({self.worker_id}, model={self.model.name!r}, "
            f"{state})"
        )


class WorkerExecution:
    """One live continuous batch on one worker: steps + accounting.

    Wraps the model-side :class:`repro.llm.base.BatchExecution` with
    the worker's in-flight/served bookkeeping. Members are charged to
    the worker at admission and individually released — ``complete``
    counts ``served``, ``release`` does not (cancellation, isolation,
    crash failover). Calls are serialized by the owning engine task;
    the worker's own counters stay lock-guarded as everywhere else.
    """

    def __init__(self, worker: ModelWorker, execution) -> None:
        self._worker = worker
        self.execution = execution

    @property
    def worker(self) -> ModelWorker:
        return self._worker

    def admit(self, request: GenerationRequest) -> int:
        """Add one member mid-run; raises :class:`WorkerCrashed` if
        the replica died (the engine leaves the request queued for a
        fresh execution)."""
        self._worker._check_up()
        self._worker._begin()
        try:
            return self.execution.admit(request)
        except BaseException:
            self._worker._end()
            raise

    def admit_many(self, requests: list[GenerationRequest]) -> list[int]:
        """Batched :meth:`admit`: one liveness check and one in-flight
        charge for the whole group — the engine admits a cohort
        between steps without paying per-member lock and gauge
        traffic. All-or-nothing, like :meth:`start_batch`."""
        if not requests:
            return []
        self._worker._check_up(amount=len(requests))
        self._worker._begin(len(requests))
        members: list[int] = []
        try:
            for request in requests:
                members.append(self.execution.admit(request))
        except BaseException:
            for member in members:
                self.execution.cancel(member)
            self._worker._end(len(requests))
            raise
        return members

    def pending(self) -> list[int]:
        return self.execution.pending()

    def step(self) -> list[int]:
        """One fused forward pass over every pending member.

        The liveness check runs first — a worker killed (or
        crash-injected) mid-run crashes the *step*, and the engine
        fails the uncomputed members over to another replica; members
        already computed keep streaming their buffered output.
        """
        todo = self.execution.pending()
        if not todo:
            return []
        self._worker._check_up(amount=len(todo))
        with get_tracer().span(
            "smmf.batch",
            worker=self._worker.worker_id,
            model=self._worker.model.name,
            continuous=True,
        ) as span:
            span.set_attribute("batch.size", len(todo))
            span.set_attribute("cache.hit", False)
            computed = self.execution.step()
            span.set_attributes(
                prompt_tokens=sum(
                    self.execution.response(m).prompt_tokens
                    for m in computed
                ),
                completion_tokens=sum(
                    self.execution.response(m).completion_tokens
                    for m in computed
                ),
            )
        return computed

    def response(self, member: int) -> GenerationResponse:
        return self.execution.response(member)

    def complete(self, member: int) -> None:
        """Member delivered its response: count it served."""
        self._worker._end(served=1)

    def complete_many(self, members: list[int]) -> None:
        """Batched :meth:`complete`: one accounting update for a
        group of members delivered in the same step."""
        if members:
            self._worker._end(len(members), served=len(members))

    def release(self, member: int, *, cancelled: bool = False) -> None:
        """Member leaves without a served response — cancelled by its
        consumer, handed to per-request isolation, or failed over
        after a crash. Frees the worker in-flight slot immediately
        (mid-generation for cancellations)."""
        self.execution.cancel(member)
        self._worker._end(served=0)
        if cancelled:
            with self._worker._lock:
                self._worker.cancelled_streams += 1
            _stream_counter().inc(
                worker=self._worker.worker_id, outcome="cancelled"
            )
