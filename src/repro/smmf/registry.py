"""Model registry: the controller's metadata store."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.smmf.worker import ModelWorker


class RegistryError(Exception):
    """Invalid registry operation."""


@dataclass
class WorkerRecord:
    """Registry metadata for one worker."""

    worker: ModelWorker
    model_name: str
    heartbeat: float = 0.0
    healthy: bool = True
    #: Why ``healthy`` went False: ``"crash"`` (routing saw a
    #: WorkerCrashed) or ``"sweep"`` (stale heartbeat). ``None`` while
    #: healthy. Crash-marked records are eligible for lazy
    #: re-admission once the worker process is back up; sweep-marked
    #: ones need a real heartbeat (or a resilience health probe).
    down_reason: Optional[str] = None
    metadata: dict[str, Any] = field(default_factory=dict)


class ModelRegistry:
    """Tracks which workers serve which model, with heartbeats.

    Time is an explicit parameter (a logical clock) so tests and
    benchmarks control it deterministically. A registry lock guards the
    record tables: scheduler pool threads read candidate lists while
    heartbeats, sweeps and (de)registrations mutate them.
    """

    def __init__(self, heartbeat_timeout: float = 30.0) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self._records: dict[str, WorkerRecord] = {}
        self._by_model: dict[str, list[str]] = {}
        self._lock = threading.RLock()

    def register(
        self,
        worker: ModelWorker,
        now: float = 0.0,
        metadata: Optional[dict[str, Any]] = None,
    ) -> None:
        with self._lock:
            if worker.worker_id in self._records:
                raise RegistryError(
                    f"worker {worker.worker_id!r} already registered"
                )
            record = WorkerRecord(
                worker=worker,
                model_name=worker.model.name,
                heartbeat=now,
                metadata=dict(metadata or {}),
            )
            self._records[worker.worker_id] = record
            self._by_model.setdefault(worker.model.name, []).append(
                worker.worker_id
            )

    def deregister(self, worker_id: str) -> None:
        with self._lock:
            record = self._records.pop(worker_id, None)
            if record is None:
                raise RegistryError(f"unknown worker {worker_id!r}")
            self._by_model[record.model_name].remove(worker_id)
            if not self._by_model[record.model_name]:
                del self._by_model[record.model_name]

    def heartbeat(self, worker_id: str, now: float) -> None:
        with self._lock:
            record = self._records.get(worker_id)
            if record is None:
                raise RegistryError(f"unknown worker {worker_id!r}")
            record.heartbeat = now
            record.healthy = True
            record.down_reason = None

    def sweep(self, now: float) -> list[str]:
        """Mark workers with stale heartbeats unhealthy; returns them."""
        stale = []
        with self._lock:
            for worker_id, record in self._records.items():
                if now - record.heartbeat > self.heartbeat_timeout:
                    if record.healthy:
                        record.down_reason = "sweep"
                    record.healthy = False
                    stale.append(worker_id)
        return stale

    def mark_crashed(self, worker_id: str) -> None:
        """Take a worker out of rotation after a crash (one request's
        failover saw :class:`~repro.smmf.worker.WorkerCrashed`)."""
        with self._lock:
            record = self._records.get(worker_id)
            if record is None:
                return
            record.healthy = False
            record.down_reason = "crash"

    def readmit_recovered(
        self,
        model_name: str,
        exclude: Optional[set[str]] = None,
    ) -> list[str]:
        """Re-admit crash-marked workers whose process is back up.

        The last-resort recovery the routing loop runs when no healthy
        candidate remains: a worker that crashed but has since been
        restarted (``worker.alive`` is True again) rejoins rotation
        instead of staying out forever. Sweep-marked workers are left
        alone — silence needs a heartbeat, not an optimistic retry.
        Returns the re-admitted worker ids.
        """
        exclude = exclude or set()
        readmitted: list[str] = []
        with self._lock:
            for worker_id in self._by_model.get(model_name, []):
                record = self._records[worker_id]
                if (
                    not record.healthy
                    and record.down_reason == "crash"
                    and record.worker.alive
                    and worker_id not in exclude
                ):
                    record.healthy = True
                    record.down_reason = None
                    readmitted.append(worker_id)
        return readmitted

    def healthy_workers(self, model_name: str) -> list[WorkerRecord]:
        with self._lock:
            ids = self._by_model.get(model_name, [])
            return [
                self._records[worker_id]
                for worker_id in ids
                if self._records[worker_id].healthy
                and self._records[worker_id].worker.alive
            ]

    def all_workers(self, model_name: Optional[str] = None) -> list[WorkerRecord]:
        with self._lock:
            if model_name is None:
                return list(self._records.values())
            return [
                self._records[worker_id]
                for worker_id in self._by_model.get(model_name, [])
            ]

    def model_names(self) -> list[str]:
        with self._lock:
            return sorted(self._by_model)

    def record(self, worker_id: str) -> WorkerRecord:
        with self._lock:
            record = self._records.get(worker_id)
            if record is None:
                raise RegistryError(f"unknown worker {worker_id!r}")
            return record
