"""HTTP-shaped API server over the controller.

The paper's deployment layer has "an API server and a model handler".
Requests/responses here are dataclasses shaped like HTTP (method, path,
JSON body, status code) so the protocol is faithful while staying
in-process (DESIGN.md records the substitution).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.llm.base import GenerationRequest, LLMError
from repro.serving.scheduler import (
    DeadlineExceeded,
    SchedulerClosed,
    SchedulerOverloaded,
)
from repro.smmf.controller import ModelController, SmmfError


@dataclass
class ApiRequest:
    method: str
    path: str
    body: dict[str, Any] = field(default_factory=dict)


@dataclass
class ApiResponse:
    status: int
    body: dict[str, Any]

    def json(self) -> str:
        return json.dumps(self.body)


class ApiServer:
    """Routes ``/v1/*`` endpoints onto a :class:`ModelController`."""

    def __init__(self, controller: ModelController) -> None:
        self.controller = controller

    def handle(self, request: ApiRequest) -> ApiResponse:
        route = (request.method.upper(), request.path)
        if route == ("POST", "/v1/generate"):
            return self._generate(request.body)
        if route == ("GET", "/v1/models"):
            return ApiResponse(200, {"models": self.controller.models()})
        if route == ("GET", "/v1/health"):
            return self._health()
        if route == ("GET", "/v1/metrics"):
            return ApiResponse(
                200, {"metrics": self.controller.metrics.snapshot()}
            )
        if route == ("GET", "/v1/serving"):
            return self._serving()
        return ApiResponse(
            404,
            {
                "error": f"no route {request.method} {request.path}",
                "code": "route_not_found",
            },
        )

    def _generate(self, body: dict[str, Any]) -> ApiResponse:
        model = body.get("model")
        prompt = body.get("prompt")
        if not model or prompt is None:
            return ApiResponse(
                400,
                {
                    "error": "body requires 'model' and 'prompt'",
                    "code": "invalid_request",
                },
            )
        generation_request = GenerationRequest(
            prompt=prompt,
            task=body.get("task"),
            max_tokens=int(body.get("max_tokens", 512)),
            temperature=float(body.get("temperature", 0.0)),
            metadata=dict(body.get("metadata", {})),
        )
        try:
            scheduler = self.controller.scheduler
            if scheduler is not None:
                timeout_s = body.get("timeout_s")
                response = scheduler.schedule(
                    model,
                    generation_request,
                    timeout_s=float(timeout_s)
                    if timeout_s is not None
                    else None,
                )
            else:
                response = self.controller.generate(
                    model, generation_request
                )
        except SchedulerOverloaded as exc:
            # Subclasses (tenant throttling) carry their own stable code.
            return ApiResponse(
                429,
                {
                    "error": str(exc),
                    "code": getattr(exc, "code", "scheduler_overloaded"),
                    "retry_after": exc.retry_after,
                },
            )
        except DeadlineExceeded as exc:
            return ApiResponse(
                504, {"error": str(exc), "code": "deadline_exceeded"}
            )
        except SchedulerClosed as exc:
            return ApiResponse(
                503, {"error": str(exc), "code": "scheduler_closed"}
            )
        except SmmfError as exc:
            return ApiResponse(
                503, {"error": str(exc), "code": "smmf_unavailable"}
            )
        except LLMError as exc:
            return ApiResponse(422, {"error": str(exc), "code": "llm_error"})
        body = {
            "text": response.text,
            "model": response.model,
            "usage": {
                "prompt_tokens": response.prompt_tokens,
                "completion_tokens": response.completion_tokens,
                "total_tokens": response.total_tokens,
            },
            "finish_reason": response.finish_reason,
        }
        # Only present when the degradation ladder answered (fallback
        # model), keeping the happy-path body byte-identical.
        if response.degraded:
            body["degraded"] = True
        return ApiResponse(200, body)

    def _serving(self) -> ApiResponse:
        scheduler = self.controller.scheduler
        if scheduler is None:
            return ApiResponse(200, {"enabled": False})
        return ApiResponse(200, {"enabled": True, **scheduler.stats()})

    def _health(self) -> ApiResponse:
        workers = self.controller.workers()
        up = sum(1 for r in workers if r.healthy and r.worker.alive)
        status = 200 if up == len(workers) and workers else 503
        if workers and up:
            status = 200
        return ApiResponse(
            status,
            {
                "workers": len(workers),
                "healthy": up,
                "models": self.controller.models(),
                "detail": self.controller.health_snapshot(),
            },
        )
