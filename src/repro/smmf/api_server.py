"""HTTP-shaped API server over the controller.

The paper's deployment layer has "an API server and a model handler".
Requests/responses here are dataclasses shaped like HTTP (method, path,
JSON body, status code) so the protocol is faithful while staying
in-process (DESIGN.md records the substitution).
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.llm.base import GenerationRequest, LLMError
from repro.serving.scheduler import (
    DeadlineExceeded,
    SchedulerClosed,
    SchedulerOverloaded,
)
from repro.smmf.controller import ModelController, SmmfError


@dataclass
class ApiRequest:
    method: str
    path: str
    body: dict[str, Any] = field(default_factory=dict)


@dataclass
class ApiResponse:
    status: int
    body: dict[str, Any]

    def json(self) -> str:
        return json.dumps(self.body)


@dataclass
class ApiStreamResponse:
    """A chunked (SSE-shaped) response.

    ``chunks`` is the token iterator on a 200 — a sync iterator from
    :meth:`ApiServer.handle_stream`, an async iterator from
    :meth:`ApiServer.ahandle_stream`. Admission failures surface as a
    non-200 status with the same error body :class:`ApiResponse`
    carries; mid-stream failures raise out of the iterator (the
    connection would drop mid-transfer over real HTTP).
    """

    status: int
    body: dict[str, Any]
    chunks: Optional[Any] = None


async def _drain_in_executor(chunks: Iterator[str]):
    """Adapt a sync chunk iterator to async without blocking the loop."""
    loop = asyncio.get_running_loop()
    sentinel = object()
    try:
        while True:
            chunk = await loop.run_in_executor(None, next, chunks, sentinel)
            if chunk is sentinel:
                return
            yield chunk
    finally:
        close = getattr(chunks, "close", None)
        if close is not None:
            await loop.run_in_executor(None, close)


class ApiServer:
    """Routes ``/v1/*`` endpoints onto a :class:`ModelController`."""

    def __init__(self, controller: ModelController) -> None:
        self.controller = controller

    def handle(self, request: ApiRequest) -> ApiResponse:
        route = (request.method.upper(), request.path)
        if route == ("POST", "/v1/generate"):
            return self._generate(request.body)
        if route == ("GET", "/v1/models"):
            return ApiResponse(200, {"models": self.controller.models()})
        if route == ("GET", "/v1/health"):
            return self._health()
        if route == ("GET", "/v1/metrics"):
            return ApiResponse(
                200, {"metrics": self.controller.metrics.snapshot()}
            )
        if route == ("GET", "/v1/serving"):
            return self._serving()
        return ApiResponse(
            404,
            {
                "error": f"no route {request.method} {request.path}",
                "code": "route_not_found",
            },
        )

    @staticmethod
    def _parse_generation(
        body: dict[str, Any],
    ) -> tuple[
        Optional[tuple[str, GenerationRequest, Optional[float]]],
        Optional[ApiResponse],
    ]:
        model = body.get("model")
        prompt = body.get("prompt")
        if not model or prompt is None:
            return None, ApiResponse(
                400,
                {
                    "error": "body requires 'model' and 'prompt'",
                    "code": "invalid_request",
                },
            )
        generation_request = GenerationRequest(
            prompt=prompt,
            task=body.get("task"),
            max_tokens=int(body.get("max_tokens", 512)),
            temperature=float(body.get("temperature", 0.0)),
            metadata=dict(body.get("metadata", {})),
        )
        timeout_s = body.get("timeout_s")
        return (
            model,
            generation_request,
            float(timeout_s) if timeout_s is not None else None,
        ), None

    @staticmethod
    def _error_response(exc: Exception) -> Optional[ApiResponse]:
        """The one serving-error → HTTP mapping, shared by the unary
        and streaming endpoints so codes stay identical."""
        if isinstance(exc, SchedulerOverloaded):
            # Subclasses (tenant throttling) carry their own stable code.
            return ApiResponse(
                429,
                {
                    "error": str(exc),
                    "code": getattr(exc, "code", "scheduler_overloaded"),
                    "retry_after": exc.retry_after,
                },
            )
        if isinstance(exc, DeadlineExceeded):
            return ApiResponse(
                504, {"error": str(exc), "code": "deadline_exceeded"}
            )
        if isinstance(exc, SchedulerClosed):
            return ApiResponse(
                503, {"error": str(exc), "code": "scheduler_closed"}
            )
        if isinstance(exc, SmmfError):
            return ApiResponse(
                503, {"error": str(exc), "code": "smmf_unavailable"}
            )
        if isinstance(exc, LLMError):
            return ApiResponse(
                422, {"error": str(exc), "code": "llm_error"}
            )
        return None

    @staticmethod
    def _generation_body(response) -> dict[str, Any]:
        body = {
            "text": response.text,
            "model": response.model,
            "usage": {
                "prompt_tokens": response.prompt_tokens,
                "completion_tokens": response.completion_tokens,
                "total_tokens": response.total_tokens,
            },
            "finish_reason": response.finish_reason,
        }
        # Only present when the degradation ladder answered (fallback
        # model), keeping the happy-path body byte-identical.
        if response.degraded:
            body["degraded"] = True
        return body

    def _generate(self, body: dict[str, Any]) -> ApiResponse:
        parsed, error = self._parse_generation(body)
        if error is not None:
            return error
        model, generation_request, timeout_s = parsed
        try:
            scheduler = self.controller.scheduler
            if scheduler is not None:
                response = scheduler.schedule(
                    model, generation_request, timeout_s=timeout_s
                )
            else:
                response = self.controller.generate(
                    model, generation_request
                )
        except Exception as exc:
            mapped = self._error_response(exc)
            if mapped is None:
                raise
            return mapped
        return ApiResponse(200, self._generation_body(response))

    async def ahandle(self, request: ApiRequest) -> ApiResponse:
        """Async :meth:`handle`.

        ``POST /v1/generate`` awaits the continuous engine's
        ``aschedule`` when one is mounted, so no thread is parked per
        in-flight request and concurrent callers coalesce into shared
        batches; every other route (and the scheduler-less fallback)
        runs the sync handler on the default executor.
        """
        route = (request.method.upper(), request.path)
        if route == ("POST", "/v1/generate"):
            scheduler = self.controller.scheduler
            if scheduler is not None and hasattr(scheduler, "aschedule"):
                return await self._agenerate(request.body, scheduler)
        loop = asyncio.get_running_loop()
        call = functools.partial(self.handle, request)
        return await loop.run_in_executor(
            None, contextvars.copy_context().run, call
        )

    async def _agenerate(self, body: dict[str, Any], scheduler) -> ApiResponse:
        parsed, error = self._parse_generation(body)
        if error is not None:
            return error
        model, generation_request, timeout_s = parsed
        try:
            response = await scheduler.aschedule(
                model, generation_request, timeout_s=timeout_s
            )
        except Exception as exc:
            mapped = self._error_response(exc)
            if mapped is None:
                raise
            return mapped
        return ApiResponse(200, self._generation_body(response))

    def handle_stream(self, request: ApiRequest) -> ApiStreamResponse:
        """``POST /v1/generate/stream``: token streaming.

        With the continuous engine mounted the stream rides the
        engine's bounded per-request :class:`TokenStream` (end-to-end
        backpressure; closing the returned iterator cancels the member
        mid-generation). Otherwise it falls back to the controller's
        direct streaming path.
        """
        route = (request.method.upper(), request.path)
        if route != ("POST", "/v1/generate/stream"):
            return ApiStreamResponse(
                404,
                {
                    "error": f"no stream route {request.method} "
                    f"{request.path}",
                    "code": "route_not_found",
                },
            )
        parsed, error = self._parse_generation(request.body)
        if error is not None:
            return ApiStreamResponse(error.status, error.body)
        model, generation_request, timeout_s = parsed
        scheduler = self.controller.scheduler
        try:
            if scheduler is not None and hasattr(scheduler, "stream"):
                chunks = scheduler.stream(
                    model, generation_request, timeout_s=timeout_s
                )
            else:
                chunks = self.controller.stream(model, generation_request)
        except Exception as exc:
            mapped = self._error_response(exc)
            if mapped is None:
                raise
            return ApiStreamResponse(mapped.status, mapped.body)
        return ApiStreamResponse(200, {}, chunks=chunks)

    async def ahandle_stream(self, request: ApiRequest) -> ApiStreamResponse:
        """Async ``POST /v1/generate/stream``: ``chunks`` is an async
        iterator. With the continuous engine this is async end-to-end
        (admission in the caller's task, chunks awaited off the
        engine's loop); the fallback drains the sync stream through
        the default executor one chunk at a time."""
        route = (request.method.upper(), request.path)
        if route != ("POST", "/v1/generate/stream"):
            return ApiStreamResponse(
                404,
                {
                    "error": f"no stream route {request.method} "
                    f"{request.path}",
                    "code": "route_not_found",
                },
            )
        parsed, error = self._parse_generation(request.body)
        if error is not None:
            return ApiStreamResponse(error.status, error.body)
        model, generation_request, timeout_s = parsed
        scheduler = self.controller.scheduler
        try:
            if scheduler is not None and hasattr(scheduler, "astream"):
                chunks = scheduler.astream(
                    model, generation_request, timeout_s=timeout_s
                )
            else:
                sync_chunks = self.controller.stream(
                    model, generation_request
                )
                chunks = _drain_in_executor(sync_chunks)
        except Exception as exc:
            mapped = self._error_response(exc)
            if mapped is None:
                raise
            return ApiStreamResponse(mapped.status, mapped.body)
        return ApiStreamResponse(200, {}, chunks=chunks)

    def _serving(self) -> ApiResponse:
        scheduler = self.controller.scheduler
        if scheduler is None:
            return ApiResponse(200, {"enabled": False})
        return ApiResponse(200, {"enabled": True, **scheduler.stats()})

    def _health(self) -> ApiResponse:
        workers = self.controller.workers()
        up = sum(1 for r in workers if r.healthy and r.worker.alive)
        status = 200 if up == len(workers) and workers else 503
        if workers and up:
            status = 200
        return ApiResponse(
            status,
            {
                "workers": len(workers),
                "healthy": up,
                "models": self.controller.models(),
                "detail": self.controller.health_snapshot(),
            },
        )
