"""The model controller: registry ownership, routing and failover."""

from __future__ import annotations

import random
import threading
from dataclasses import replace
from typing import Any, Callable, Optional

from repro.llm.base import GenerationRequest, GenerationResponse, LLMError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.resilience.breaker import BreakerBoard
from repro.resilience.config import ResilienceConfig
from repro.resilience.health import HealthMonitor
from repro.resilience.retry import RetryPolicy
from repro.smmf.balancer import LoadBalancer, RoundRobinBalancer
from repro.smmf.metrics import MetricsCollector
from repro.smmf.registry import ModelRegistry, WorkerRecord
from repro.smmf.worker import ModelWorker, WorkerCrashed, WorkerExecution


class SmmfError(Exception):
    """A request could not be served (no workers, all retries failed)."""


class _AllReplicasFailed(Exception):
    """Internal: one failover sweep exhausted every admissible replica.

    Carries the last worker error; converted to :class:`SmmfError` (or
    absorbed by a timed retry round / fallback route) by the caller.
    """

    def __init__(self, last_error: Optional[Exception]) -> None:
        super().__init__(str(last_error))
        self.last_error = last_error


class ModelController:
    """Routes requests to model workers with retry-based failover.

    A crashed worker is retried on the remaining replicas (up to
    ``max_retries``); what happens to the *crashed* worker depends on
    the resilience configuration:

    - **disabled** (default): the record is marked unhealthy with
      ``down_reason="crash"``. It stays out of rotation until routing
      hits a wall (no healthy candidates) and lazy re-admission finds
      the worker process alive again — the post-``restart()`` recovery
      the pre-resilience stack lacked.
    - **enabled**: a per-worker circuit breaker records the failure
      (closed → open on consecutive crashes → half-open probe), the
      balancer consults breakers instead of the one-way healthy flag,
      timed retry rounds (exponential backoff on the logical clock)
      re-sweep after the health monitor has had a chance to re-admit
      recovered workers, and an exhausted model can degrade to a
      configured fallback model (responses marked ``degraded``).
    """

    def __init__(
        self,
        balancer: Optional[LoadBalancer] = None,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 2,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self.registry = ModelRegistry(heartbeat_timeout)
        self.balancer = balancer or RoundRobinBalancer()
        self.metrics = MetricsCollector()
        self.max_retries = max_retries
        self._clock = 0.0
        self._clock_lock = threading.Lock()
        #: Optional micro-batching scheduler in front of the pool (set
        #: by :func:`repro.smmf.deploy.deploy` when serving is enabled;
        #: the API server routes through it when present).
        self.scheduler = None
        self.resilience = (
            resilience if resilience is not None and resilience.enabled
            else None
        )
        self.breakers: Optional[BreakerBoard] = None
        self.health: Optional[HealthMonitor] = None
        self._retry_policy: Optional[RetryPolicy] = None
        if self.resilience is not None:
            self.breakers = BreakerBoard(self.resilience.breaker, self._now)
            self.health = HealthMonitor(
                self.registry,
                probe_interval_s=self.resilience.probe_interval_s,
                breakers=self.breakers,
            )
            # Controller retries advance the *logical* clock (which is
            # also what runs health probes and breaker timeouts), so
            # recovery tests are deterministic; the seeded rng keeps
            # the jittered delay sequence reproducible too.
            self._retry_policy = RetryPolicy(
                self.resilience.retry,
                sleep=self.advance_clock,
                rng=random.Random(0),
                layer="controller",
            )

    # -- time ------------------------------------------------------------

    def _now(self) -> float:
        """The logical clock, read under its lock.

        ``advance_clock`` runs on whatever thread served the request,
        so an unguarded read could observe a torn/stale value; every
        reader (property, registry calls, breaker board) goes through
        here.
        """
        with self._clock_lock:
            return self._clock

    def advance_clock(self, seconds: float) -> float:
        """Advance the controller's logical clock (tests/benchmarks).

        With resilience enabled, every advance also runs due health
        probes, so recovery happens as a side effect of time passing —
        traffic latency, retry backoff, or an explicit advance.
        """
        with self._clock_lock:
            self._clock += seconds
            now = self._clock
        if self.health is not None:
            self.health.probe(now)
        return now

    @property
    def clock(self) -> float:
        return self._now()

    # -- worker lifecycle ---------------------------------------------------

    def register_worker(
        self, worker: ModelWorker, latency_ms: float = 10.0
    ) -> None:
        self.registry.register(
            worker, now=self._now(), metadata={"latency_ms": latency_ms}
        )

    def deregister_worker(self, worker_id: str) -> None:
        self.registry.deregister(worker_id)

    def heartbeat(self, worker_id: str) -> None:
        self.registry.heartbeat(worker_id, self._now())

    def health_sweep(self) -> list[str]:
        """Evict workers whose heartbeats are stale."""
        return self.registry.sweep(self._now())

    def models(self) -> list[str]:
        return self.registry.model_names()

    def workers(self, model_name: Optional[str] = None) -> list[WorkerRecord]:
        return self.registry.all_workers(model_name)

    def health_snapshot(self) -> list[dict[str, Any]]:
        """Per-worker health view for ``repro health`` / ``/health``."""
        rows = []
        for record in self.registry.all_workers():
            worker = record.worker
            stats = worker.stats_snapshot()
            rows.append(
                {
                    "worker": worker.worker_id,
                    "model": record.model_name,
                    "alive": stats["alive"],
                    "healthy": record.healthy,
                    "down_reason": record.down_reason,
                    "breaker": (
                        self.breakers.state(worker.worker_id)
                        if self.breakers is not None
                        else None
                    ),
                    "inflight": stats["inflight"],
                    "served": stats["served"],
                    "failed": stats["failed"],
                }
            )
        return rows

    # -- failure accounting ------------------------------------------------

    def _record_worker_failure(self, record: WorkerRecord) -> None:
        if self.breakers is not None:
            self.breakers.record_failure(record.worker.worker_id)
        else:
            self.registry.mark_crashed(record.worker.worker_id)

    def _record_worker_success(self, record: WorkerRecord) -> None:
        if self.breakers is not None:
            self.breakers.record_success(record.worker.worker_id)

    # -- routing ----------------------------------------------------------

    def _sweep(
        self,
        model_name: str,
        execute: Callable[[WorkerRecord], Any],
    ) -> tuple[Any, WorkerRecord, int]:
        """One failover sweep: try each admissible replica at most once.

        Returns ``(result, record, retries)`` on success. Raises
        :class:`_AllReplicasFailed` when every candidate crashed or
        none was admissible; :class:`LLMError` propagates untouched (a
        bad prompt is not a worker failure, so it must not burn
        replicas or trip breakers).
        """
        attempts = 0
        tried: set[str] = set()
        last_error: Optional[Exception] = None
        readmission_tried = False
        while attempts <= self.max_retries:
            candidates = [
                record
                for record in self.registry.healthy_workers(model_name)
                if record.worker.worker_id not in tried
                and (
                    self.breakers is None
                    or self.breakers.available(record.worker.worker_id)
                )
            ]
            if not candidates:
                # Last resort before giving up: crash-marked workers
                # whose process has been restarted rejoin rotation.
                if not readmission_tried:
                    readmission_tried = True
                    if self.registry.readmit_recovered(
                        model_name, exclude=tried
                    ):
                        continue
                break
            record = self.balancer.choose(candidates)
            worker = record.worker
            tried.add(worker.worker_id)
            if self.breakers is not None and not self.breakers.acquire(
                worker.worker_id
            ):
                # Lost a half-open probe slot to a concurrent request.
                continue
            attempts += 1
            try:
                result = execute(record)
            except WorkerCrashed as exc:
                self._record_worker_failure(record)
                last_error = exc
                continue
            except LLMError:
                self._record_worker_success(record)
                raise
            self._record_worker_success(record)
            return result, record, attempts - 1
        raise _AllReplicasFailed(last_error)

    def _route(
        self,
        model_name: str,
        execute: Callable[[WorkerRecord], Any],
        allow_fallback: bool = True,
    ) -> tuple[Any, WorkerRecord, int, bool]:
        """Sweep + resilience: timed retry rounds, then fallback.

        Returns ``(result, record, retries, degraded)``; raises
        :class:`_AllReplicasFailed` once the whole ladder is exhausted.
        """
        run_sweep = lambda: self._sweep(model_name, execute)  # noqa: E731
        if self._retry_policy is None:
            result, record, retries = run_sweep()
            return result, record, retries, False
        try:
            result, record, retries = self._retry_policy.run(
                run_sweep,
                classify=lambda exc: (
                    isinstance(exc, _AllReplicasFailed),
                    None,
                ),
            )
            return result, record, retries, False
        except _AllReplicasFailed:
            fallback = self.resilience.fallback_model
            if (
                not allow_fallback
                or fallback is None
                or fallback == model_name
                or fallback not in self.registry.model_names()
            ):
                raise
            get_registry().counter(
                "resilience_fallbacks_total",
                "requests degraded to the fallback model",
            ).inc(model=model_name, fallback=fallback)
            result, record, retries, _ = self._route(
                fallback, execute, allow_fallback=False
            )
            return result, record, retries, True

    def generate(
        self, model_name: str, request: GenerationRequest
    ) -> GenerationResponse:
        """Serve one request with failover across replicas."""
        with get_tracer().span("smmf.generate", model=model_name) as span:
            response = self._generate(model_name, request, span)
        return response

    def _generate(
        self, model_name: str, request: GenerationRequest, span
    ) -> GenerationResponse:
        try:
            response, record, retries, degraded = self._route(
                model_name, lambda rec: rec.worker.handle(request)
            )
        except _AllReplicasFailed as exc:
            self.metrics.record_failure(model_name)
            raise self._exhausted_error(model_name, exc.last_error)
        except LLMError:
            self.metrics.record_failure(model_name)
            raise
        if degraded:
            response = replace(response, degraded=True)
            span.set_attribute("degraded", True)
        latency = float(record.metadata.get("latency_ms", 0.0))
        self.metrics.record_success(
            model=model_name,
            worker_id=record.worker.worker_id,
            latency_ms=latency,
            prompt_tokens=response.prompt_tokens,
            completion_tokens=response.completion_tokens,
            retries=retries,
        )
        span.set_attributes(
            worker=record.worker.worker_id, retries=retries
        )
        self.advance_clock(latency / 1000.0)
        return response

    def generate_batch(
        self, model_name: str, requests: list[GenerationRequest]
    ) -> list[GenerationResponse]:
        """Serve a coalesced batch on one replica, with batch failover.

        The batch is dispatched as a single ``generate_batch`` model
        call; if the chosen worker crashes mid-dispatch the *whole*
        batch retries on another replica (no partial results exist —
        the batch is one execution), up to ``max_retries`` times. A
        model-level :class:`LLMError` (one poison request) propagates
        to the scheduler, which re-dispatches the batch members
        individually so the poison request fails alone.
        """
        if not requests:
            return []
        with get_tracer().span(
            "smmf.generate_batch",
            model=model_name,
            batch_size=len(requests),
        ) as span:
            return self._generate_batch(model_name, requests, span)

    def _generate_batch(
        self,
        model_name: str,
        requests: list[GenerationRequest],
        span,
    ) -> list[GenerationResponse]:
        try:
            responses, record, retries, degraded = self._route(
                model_name, lambda rec: rec.worker.handle_batch(requests)
            )
        except _AllReplicasFailed as exc:
            for _request in requests:
                self.metrics.record_failure(model_name)
            raise self._exhausted_error(
                model_name, exc.last_error, batch=len(requests)
            )
        except LLMError:
            self.metrics.record_failure(model_name)
            raise
        if degraded:
            responses = [
                replace(response, degraded=True) for response in responses
            ]
            span.set_attribute("degraded", True)
        latency = float(record.metadata.get("latency_ms", 0.0))
        for response in responses:
            self.metrics.record_success(
                model=model_name,
                worker_id=record.worker.worker_id,
                latency_ms=latency,
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
                retries=retries,
            )
        span.set_attributes(
            worker=record.worker.worker_id, retries=retries
        )
        # One batch occupies the replica for one latency window,
        # which is exactly the throughput win being modelled.
        self.advance_clock(latency / 1000.0)
        return responses

    def start_batch(
        self, model_name: str, requests: list[GenerationRequest]
    ) -> "ExecutionLease":
        """Open a continuous-batching execution on one replica.

        Routing and failover mirror :meth:`generate_batch`: the whole
        just-formed batch retries on another replica if the chosen
        worker crashes at start (no model call happened yet), and an
        exhausted model degrades to the configured fallback. What
        comes back is a lease the serving engine steps: forward
        passes, mid-run admissions, and per-member completion all run
        against the leased replica.
        """
        if not requests:
            raise ValueError("cannot start an empty execution")
        with get_tracer().span(
            "smmf.start_batch",
            model=model_name,
            batch_size=len(requests),
        ) as span:
            try:
                wexec, record, retries, degraded = self._route(
                    model_name,
                    lambda rec: rec.worker.start_batch(requests),
                )
            except _AllReplicasFailed as exc:
                for _request in requests:
                    self.metrics.record_failure(model_name)
                raise self._exhausted_error(
                    model_name, exc.last_error, batch=len(requests)
                )
            span.set_attributes(
                worker=record.worker.worker_id,
                retries=retries,
                degraded=degraded,
            )
        return ExecutionLease(self, model_name, wexec, record, degraded)

    def stream(self, model_name: str, request: GenerationRequest):
        """Streaming inference with the same failover as generate().

        Failover covers the time until the first chunk is produced; a
        crash mid-stream surfaces to the caller (tokens were already
        delivered, so transparent retry would duplicate output).
        """

        def start(record: WorkerRecord):
            iterator = record.worker.handle_stream(request)
            return iterator, next(iterator, None)

        try:
            (iterator, first), record, retries, _ = self._route(
                model_name, start, allow_fallback=False
            )
        except _AllReplicasFailed as exc:
            self.metrics.record_failure(model_name)
            raise SmmfError(
                f"all replicas of {model_name!r} failed to start a "
                f"stream (last error: {exc.last_error})"
            )

        def chunks(first_chunk=first, rest=iterator):
            if first_chunk is not None:
                yield first_chunk
            yield from rest

        latency = float(record.metadata.get("latency_ms", 0.0))
        self.metrics.record_success(
            model=model_name,
            worker_id=record.worker.worker_id,
            latency_ms=latency,
            prompt_tokens=0,
            completion_tokens=0,
            retries=retries,
        )
        return chunks()

    def _exhausted_error(
        self,
        model_name: str,
        last_error: Optional[Exception],
        batch: Optional[int] = None,
    ) -> SmmfError:
        known = self.registry.model_names()
        if model_name not in known:
            return SmmfError(
                f"no model named {model_name!r} is deployed; "
                f"available: {known}"
            )
        if batch is not None:
            return SmmfError(
                f"all replicas of {model_name!r} failed a batch of "
                f"{batch} (last error: {last_error})"
            )
        return SmmfError(
            f"all replicas of {model_name!r} failed "
            f"(last error: {last_error})"
        )


class ExecutionLease:
    """A continuous-batching execution leased from one replica.

    Bridges the serving engine to the controller's accounting: each
    :meth:`step` charges one replica latency window to the logical
    clock (a fused pass occupies the replica exactly like a windowed
    batch did) and feeds the circuit breakers; :meth:`complete`
    records per-member success metrics; a :class:`WorkerCrashed` from
    a step is recorded as a worker failure before propagating, so the
    engine's failover re-dispatch routes around the dead replica.
    """

    def __init__(
        self,
        controller: ModelController,
        model_name: str,
        wexec: WorkerExecution,
        record: WorkerRecord,
        degraded: bool,
    ) -> None:
        self._controller = controller
        self.model_name = model_name
        self._wexec = wexec
        self.record = record
        self.degraded = degraded

    @property
    def worker_id(self) -> str:
        return self.record.worker.worker_id

    def admit(self, request: GenerationRequest) -> int:
        return self._wexec.admit(request)

    def admit_many(self, requests: list[GenerationRequest]) -> list[int]:
        """Batched :meth:`admit`: one worker handshake for a cohort
        joining the live batch between steps."""
        return self._wexec.admit_many(requests)

    def pending(self) -> list[int]:
        return self._wexec.pending()

    def step(self) -> list[int]:
        """One fused forward pass; returns the member ids computed.

        :class:`LLMError` (poison prompt) leaves the members pending
        for the engine's per-request isolation and is *not* a worker
        failure; :class:`WorkerCrashed` is recorded against the
        replica before re-raising.
        """
        try:
            computed = self._wexec.step()
        except WorkerCrashed:
            self._controller._record_worker_failure(self.record)
            raise
        except LLMError:
            self._controller._record_worker_success(self.record)
            self._controller.metrics.record_failure(self.model_name)
            raise
        self._controller._record_worker_success(self.record)
        if computed:
            latency = float(self.record.metadata.get("latency_ms", 0.0))
            # One fused pass occupies the replica for one latency
            # window — the same clock charge a windowed batch made.
            self._controller.advance_clock(latency / 1000.0)
        return computed

    def response(self, member: int) -> GenerationResponse:
        response = self._wexec.response(member)
        if self.degraded and not response.degraded:
            response = replace(response, degraded=True)
        return response

    def complete(self, member: int) -> GenerationResponse:
        """Member delivered: worker ``served`` + success metrics."""
        response = self.response(member)
        self._wexec.complete(member)
        self._controller.metrics.record_success(
            model=self.model_name,
            worker_id=self.worker_id,
            latency_ms=float(self.record.metadata.get("latency_ms", 0.0)),
            prompt_tokens=response.prompt_tokens,
            completion_tokens=response.completion_tokens,
            retries=0,
        )
        return response

    def complete_many(self, members: list[int]) -> None:
        """Batched :meth:`complete`: one worker accounting update for
        members delivered in the same step, then per-member success
        metrics (the per-request ledger the windowed path kept)."""
        self._wexec.complete_many(members)
        latency = float(self.record.metadata.get("latency_ms", 0.0))
        for member in members:
            response = self.response(member)
            self._controller.metrics.record_success(
                model=self.model_name,
                worker_id=self.worker_id,
                latency_ms=latency,
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
                retries=0,
            )

    def release(self, member: int, *, cancelled: bool = False) -> None:
        """Member leaves unserved (cancelled / isolated / failed
        over); frees its worker slot immediately."""
        self._wexec.release(member, cancelled=cancelled)
