"""The model controller: registry ownership, routing and failover."""

from __future__ import annotations

import threading
from typing import Optional

from repro.llm.base import GenerationRequest, GenerationResponse, LLMError
from repro.obs.tracer import get_tracer
from repro.smmf.balancer import LoadBalancer, RoundRobinBalancer
from repro.smmf.metrics import MetricsCollector
from repro.smmf.registry import ModelRegistry, WorkerRecord
from repro.smmf.worker import ModelWorker, WorkerCrashed


class SmmfError(Exception):
    """A request could not be served (no workers, all retries failed)."""


class ModelController:
    """Routes requests to model workers with retry-based failover.

    A crashed worker is marked unhealthy and the request retried on the
    remaining replicas (up to ``max_retries``), which is the behaviour
    the failover benchmark measures.
    """

    def __init__(
        self,
        balancer: Optional[LoadBalancer] = None,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 2,
    ) -> None:
        self.registry = ModelRegistry(heartbeat_timeout)
        self.balancer = balancer or RoundRobinBalancer()
        self.metrics = MetricsCollector()
        self.max_retries = max_retries
        self._clock = 0.0
        self._clock_lock = threading.Lock()
        #: Optional micro-batching scheduler in front of the pool (set
        #: by :func:`repro.smmf.deploy.deploy` when serving is enabled;
        #: the API server routes through it when present).
        self.scheduler = None

    # -- time ------------------------------------------------------------

    def advance_clock(self, seconds: float) -> float:
        """Advance the controller's logical clock (tests/benchmarks)."""
        with self._clock_lock:
            self._clock += seconds
            return self._clock

    @property
    def clock(self) -> float:
        return self._clock

    # -- worker lifecycle ---------------------------------------------------

    def register_worker(
        self, worker: ModelWorker, latency_ms: float = 10.0
    ) -> None:
        self.registry.register(
            worker, now=self._clock, metadata={"latency_ms": latency_ms}
        )

    def deregister_worker(self, worker_id: str) -> None:
        self.registry.deregister(worker_id)

    def heartbeat(self, worker_id: str) -> None:
        self.registry.heartbeat(worker_id, self._clock)

    def health_sweep(self) -> list[str]:
        """Evict workers whose heartbeats are stale."""
        return self.registry.sweep(self._clock)

    def models(self) -> list[str]:
        return self.registry.model_names()

    def workers(self, model_name: Optional[str] = None) -> list[WorkerRecord]:
        return self.registry.all_workers(model_name)

    # -- routing ----------------------------------------------------------

    def generate(
        self, model_name: str, request: GenerationRequest
    ) -> GenerationResponse:
        """Serve one request with failover across replicas."""
        with get_tracer().span("smmf.generate", model=model_name) as span:
            response = self._generate(model_name, request, span)
        return response

    def _generate(
        self, model_name: str, request: GenerationRequest, span
    ) -> GenerationResponse:
        attempts = 0
        tried: set[str] = set()
        last_error: Optional[Exception] = None
        while attempts <= self.max_retries:
            candidates = [
                record
                for record in self.registry.healthy_workers(model_name)
                if record.worker.worker_id not in tried
            ]
            if not candidates:
                break
            record = self.balancer.choose(candidates)
            worker = record.worker
            tried.add(worker.worker_id)
            attempts += 1
            try:
                response = worker.handle(request)
            except WorkerCrashed as exc:
                record.healthy = False
                last_error = exc
                continue
            except LLMError:
                # A model-level error (bad prompt) is not a worker
                # failure; surface it without burning replicas.
                self.metrics.record_failure(model_name)
                raise
            latency = float(record.metadata.get("latency_ms", 0.0))
            self.metrics.record_success(
                model=model_name,
                worker_id=worker.worker_id,
                latency_ms=latency,
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
                retries=attempts - 1,
            )
            span.set_attributes(
                worker=worker.worker_id, retries=attempts - 1
            )
            self.advance_clock(latency / 1000.0)
            return response
        self.metrics.record_failure(model_name)
        known = self.registry.model_names()
        if model_name not in known:
            raise SmmfError(
                f"no model named {model_name!r} is deployed; "
                f"available: {known}"
            )
        raise SmmfError(
            f"all replicas of {model_name!r} failed "
            f"(last error: {last_error})"
        )

    def generate_batch(
        self, model_name: str, requests: list[GenerationRequest]
    ) -> list[GenerationResponse]:
        """Serve a coalesced batch on one replica, with batch failover.

        The batch is dispatched as a single ``generate_batch`` model
        call; if the chosen worker crashes mid-dispatch the *whole*
        batch retries on another replica (no partial results exist —
        the batch is one execution), up to ``max_retries`` times.
        """
        if not requests:
            return []
        with get_tracer().span(
            "smmf.generate_batch",
            model=model_name,
            batch_size=len(requests),
        ) as span:
            return self._generate_batch(model_name, requests, span)

    def _generate_batch(
        self,
        model_name: str,
        requests: list[GenerationRequest],
        span,
    ) -> list[GenerationResponse]:
        attempts = 0
        tried: set[str] = set()
        last_error: Optional[Exception] = None
        while attempts <= self.max_retries:
            candidates = [
                record
                for record in self.registry.healthy_workers(model_name)
                if record.worker.worker_id not in tried
            ]
            if not candidates:
                break
            record = self.balancer.choose(candidates)
            worker = record.worker
            tried.add(worker.worker_id)
            attempts += 1
            try:
                responses = worker.handle_batch(requests)
            except WorkerCrashed as exc:
                record.healthy = False
                last_error = exc
                continue
            except LLMError:
                self.metrics.record_failure(model_name)
                raise
            latency = float(record.metadata.get("latency_ms", 0.0))
            for response in responses:
                self.metrics.record_success(
                    model=model_name,
                    worker_id=worker.worker_id,
                    latency_ms=latency,
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                    retries=attempts - 1,
                )
            span.set_attributes(
                worker=worker.worker_id, retries=attempts - 1
            )
            # One batch occupies the replica for one latency window,
            # which is exactly the throughput win being modelled.
            self.advance_clock(latency / 1000.0)
            return responses
        for _request in requests:
            self.metrics.record_failure(model_name)
        known = self.registry.model_names()
        if model_name not in known:
            raise SmmfError(
                f"no model named {model_name!r} is deployed; "
                f"available: {known}"
            )
        raise SmmfError(
            f"all replicas of {model_name!r} failed a batch of "
            f"{len(requests)} (last error: {last_error})"
        )

    def stream(self, model_name: str, request: GenerationRequest):
        """Streaming inference with the same failover as generate().

        Failover covers the time until the first chunk is produced; a
        crash mid-stream surfaces to the caller (tokens were already
        delivered, so transparent retry would duplicate output).
        """
        attempts = 0
        tried: set[str] = set()
        last_error: Optional[Exception] = None
        while attempts <= self.max_retries:
            candidates = [
                record
                for record in self.registry.healthy_workers(model_name)
                if record.worker.worker_id not in tried
            ]
            if not candidates:
                break
            record = self.balancer.choose(candidates)
            worker = record.worker
            tried.add(worker.worker_id)
            attempts += 1
            try:
                iterator = worker.handle_stream(request)
                first = next(iterator, None)
            except WorkerCrashed as exc:
                record.healthy = False
                last_error = exc
                continue

            def chunks(first_chunk=first, rest=iterator):
                if first_chunk is not None:
                    yield first_chunk
                yield from rest

            latency = float(record.metadata.get("latency_ms", 0.0))
            self.metrics.record_success(
                model=model_name,
                worker_id=worker.worker_id,
                latency_ms=latency,
                prompt_tokens=0,
                completion_tokens=0,
                retries=attempts - 1,
            )
            return chunks()
        self.metrics.record_failure(model_name)
        raise SmmfError(
            f"all replicas of {model_name!r} failed to start a stream "
            f"(last error: {last_error})"
        )
