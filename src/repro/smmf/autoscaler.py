"""Replica autoscaling for SMMF worker pools.

The paper positions SMMF for MaaS/cloud deployments; this policy-driven
autoscaler watches per-replica request rate between evaluations and
grows or shrinks the worker pool between configured bounds. Decisions
use the controller's logical clock, so tests drive scaling
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.smmf.controller import ModelController
from repro.smmf.spec import ModelSpec
from repro.smmf.worker import ModelWorker


@dataclass
class ScalingDecision:
    """One evaluation outcome."""

    action: str  # 'scale_up' | 'scale_down' | 'hold'
    replicas: int
    load_per_replica: float
    reason: str


@dataclass
class AutoScalerConfig:
    min_replicas: int = 1
    max_replicas: int = 8
    #: Requests per replica per evaluation above which we scale up.
    high_watermark: float = 10.0
    #: ... below which we scale down.
    low_watermark: float = 2.0
    #: Replicas added/removed per decision.
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_replicas <= 0 or self.max_replicas < self.min_replicas:
            raise ValueError("invalid replica bounds")
        if self.low_watermark >= self.high_watermark:
            raise ValueError("low_watermark must be < high_watermark")
        if self.step <= 0:
            raise ValueError("step must be positive")


class AutoScaler:
    """Scale one model's worker pool by observed request rate."""

    def __init__(
        self,
        controller: ModelController,
        spec: ModelSpec,
        config: Optional[AutoScalerConfig] = None,
    ) -> None:
        self.controller = controller
        self.spec = spec
        self.config = config or AutoScalerConfig()
        self._last_requests = self._total_requests()
        self.history: list[ScalingDecision] = []

    def _total_requests(self) -> int:
        return self.controller.metrics.model(self.spec.name).requests

    def _replicas(self) -> list:
        return [
            record
            for record in self.controller.workers(self.spec.name)
            if record.worker.alive
        ]

    def evaluate(self) -> ScalingDecision:
        """Observe the window since the last call and act once."""
        replicas = self._replicas()
        count = max(len(replicas), 1)
        total = self._total_requests()
        window = total - self._last_requests
        self._last_requests = total
        load = window / count

        if (
            load > self.config.high_watermark
            and len(replicas) < self.config.max_replicas
        ):
            added = 0
            for _ in range(self.config.step):
                if len(self._replicas()) >= self.config.max_replicas:
                    break
                worker = ModelWorker(
                    self.spec.factory(), latency_ms=self.spec.latency_ms
                )
                self.controller.register_worker(
                    worker, latency_ms=self.spec.latency_ms
                )
                added += 1
            decision = ScalingDecision(
                "scale_up",
                len(self._replicas()),
                load,
                f"load {load:.1f} > high watermark "
                f"{self.config.high_watermark}; +{added}",
            )
        elif (
            load < self.config.low_watermark
            and len(replicas) > self.config.min_replicas
        ):
            removed = 0
            for record in sorted(
                replicas, key=lambda r: r.worker.inflight
            )[: self.config.step]:
                if len(self._replicas()) <= self.config.min_replicas:
                    break
                if record.worker.inflight == 0:
                    self.controller.deregister_worker(
                        record.worker.worker_id
                    )
                    removed += 1
            decision = ScalingDecision(
                "scale_down" if removed else "hold",
                len(self._replicas()),
                load,
                f"load {load:.1f} < low watermark "
                f"{self.config.low_watermark}; -{removed}",
            )
        else:
            decision = ScalingDecision(
                "hold", len(replicas), load, "load within watermarks"
            )
        self.history.append(decision)
        return decision
