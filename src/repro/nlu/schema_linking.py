"""Schema linking: mapping question phrases to schema elements.

Two linkers cooperate:

- lexicon linking — table/column mentions through the vocabulary
  (schema identifiers for the zero-shot model, plus learned synonyms
  after fine-tuning);
- content linking — literal cell values found in the question resolve
  to ``(table, column, value)`` filter candidates, the classic
  database-content linking used by Text-to-SQL systems.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.datasources.base import DataSource
from repro.nlu.lexicon import Lexicon, LexiconEntry


@dataclass
class SchemaIndex:
    """Everything the linker knows about one data source."""

    tables: dict[str, list[str]]  # table -> column names
    column_types: dict[tuple[str, str], str]  # (table, column) -> type
    value_index: dict[str, list[tuple[str, str]]]  # value -> [(table, col)]
    label_columns: dict[str, str] = field(default_factory=dict)
    #: lower-cased value -> its original database casing (SQL literals
    #: must preserve casing; matching is case-insensitive).
    value_originals: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: DataSource,
        max_values_per_column: int = 200,
    ) -> "SchemaIndex":
        """Introspect a data source, sampling text-column values."""
        tables: dict[str, list[str]] = {}
        column_types: dict[tuple[str, str], str] = {}
        value_index: dict[str, list[tuple[str, str]]] = {}
        value_originals: dict[str, str] = {}
        label_columns: dict[str, str] = {}
        for info in source.tables():
            tables[info.name] = list(info.columns)
            for column, ctype in zip(info.columns, info.column_types):
                column_types[(info.name, column)] = ctype
                if ctype == "TEXT":
                    values = source.query(
                        f"SELECT DISTINCT {column} FROM {info.name} "
                        f"WHERE {column} IS NOT NULL "
                        f"LIMIT {max_values_per_column}"
                    ).column(column)
                    for value in values:
                        key = str(value).lower()
                        value_index.setdefault(key, []).append(
                            (info.name, column)
                        )
                        value_originals.setdefault(key, str(value))
            label_columns[info.name] = guess_label_column(
                info.columns, column_types, info.name
            )
        return cls(
            tables, column_types, value_index, label_columns,
            value_originals,
        )

    def numeric_columns(self, table: str) -> list[str]:
        return [
            column
            for column in self.tables.get(table, [])
            if self.column_types.get((table, column)) in ("INTEGER", "REAL")
            and not column.lower().endswith("_id")
            and column.lower() != "id"
        ]

    def base_lexicon(self) -> Lexicon:
        """The zero-shot vocabulary: schema identifiers only."""
        lexicon = Lexicon()
        for table, columns in self.tables.items():
            lexicon.add(LexiconEntry(table, "table", table))
            for column in columns:
                lexicon.add(
                    LexiconEntry(column, "column", column, table=table)
                )
        return lexicon


def guess_label_column(
    columns: list[str],
    column_types: dict[tuple[str, str], str],
    table: str,
) -> str:
    """The human-readable column of a table (for "list the X" answers)."""
    preferred = ("name", "title", "label")
    for column in columns:
        if column.lower() in preferred:
            return column
    for column in columns:
        lowered = column.lower()
        if any(lowered.endswith(f"_{p}") or lowered.startswith(p) for p in preferred):
            return column
    for column in columns:
        if column_types.get((table, column)) == "TEXT":
            return column
    return columns[0]


@dataclass
class Mention:
    """One linked phrase with its position in the question."""

    phrase: str
    start: int
    entry: LexiconEntry


@dataclass
class ValueMention:
    """One literal value found in the question."""

    value: str
    start: int
    candidates: list[tuple[str, str]]  # (table, column)


@dataclass
class LinkResult:
    mentions: list[Mention]
    values: list[ValueMention]

    def tables(self) -> list[str]:
        """Distinct tables mentioned, in question order."""
        seen: list[str] = []
        for mention in self.mentions:
            if mention.entry.kind == "table" and mention.entry.target not in seen:
                seen.append(mention.entry.target)
        return seen

    def columns(self) -> list[Mention]:
        return [m for m in self.mentions if m.entry.kind == "column"]


class SchemaLinker:
    """Greedy longest-phrase-first linking over a question string."""

    def __init__(self, index: SchemaIndex, lexicon: Lexicon) -> None:
        self.index = index
        self.lexicon = lexicon

    def link(self, question: str) -> LinkResult:
        text = question.lower()
        mentions = self._link_lexicon(text)
        values = self._link_values(text, mentions)
        return LinkResult(mentions, values)

    def _link_lexicon(self, text: str) -> list[Mention]:
        mentions: list[Mention] = []
        consumed = [False] * len(text)
        candidates = list(self.lexicon.phrases())
        # Also try singular/plural surface variants of each phrase.
        for phrase in candidates:
            variants = {phrase}
            if phrase.endswith("s"):
                variants.add(phrase[:-1])
            else:
                variants.add(phrase + "s")
            for variant in sorted(variants, key=len, reverse=True):
                for match in _find_phrase(text, variant):
                    start, end = match
                    if any(consumed[start:end]):
                        continue
                    entries = self.lexicon.lookup(phrase)
                    if not entries:
                        continue
                    for position in range(start, end):
                        consumed[position] = True
                    mentions.append(Mention(variant, start, entries[0]))
        mentions.sort(key=lambda m: m.start)
        return mentions

    def _link_values(
        self, text: str, mentions: list[Mention]
    ) -> list[ValueMention]:
        taken = {
            (m.start, m.start + len(m.phrase)) for m in mentions
        }
        values: list[ValueMention] = []
        for value in sorted(self.index.value_index, key=len, reverse=True):
            for start, end in _find_phrase(text, value):
                overlaps_mention = any(
                    start < t_end and end > t_start
                    for t_start, t_end in taken
                )
                if overlaps_mention:
                    continue
                already = any(
                    v.start < end and start < v.start + len(v.value)
                    for v in values
                )
                if already:
                    continue
                values.append(
                    ValueMention(
                        value=value,
                        start=start,
                        candidates=list(self.index.value_index[value]),
                    )
                )
        values.sort(key=lambda v: v.start)
        return values


def _find_phrase(text: str, phrase: str) -> list[tuple[int, int]]:
    """All occurrences of ``phrase`` in ``text`` on word boundaries.

    CJK phrases (no ASCII letters) match as plain substrings since
    Chinese has no word delimiters.
    """
    if not phrase:
        return []
    has_ascii = any("a" <= ch <= "z" or "0" <= ch <= "9" for ch in phrase)
    if not has_ascii:
        positions = []
        start = text.find(phrase)
        while start != -1:
            positions.append((start, start + len(phrase)))
            start = text.find(phrase, start + 1)
        return positions
    pattern = re.compile(
        r"(?<![a-z0-9])" + re.escape(phrase) + r"(?![a-z0-9])"
    )
    return [(m.start(), m.end()) for m in pattern.finditer(text)]
