"""Follow-up question rewriting for multi-turn data chat.

Figure 3 area 7: users "continue to engage with their data through
natural language inputs" — which in practice means elliptical
follow-ups ("what about per region?", "and for france?", "only the top
3"). The rewriter resolves those against the previous full question so
the stateless Text-to-SQL path receives a complete utterance.

Deliberately conservative: when no pattern matches, the input passes
through untouched, so fully-specified questions are never mangled.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


@dataclass
class Rewrite:
    """The rewriting outcome."""

    question: str
    rewritten: bool
    rule: str = ""


_GROUP_SWAP = re.compile(
    r"^(?:and|what about|how about|now)\s+(?:per|by|for each)\s+(.+?)\??$",
    re.IGNORECASE,
)
_FILTER_ADD = re.compile(
    r"^(?:and|what about|how about|now)\s+(?:for|in|only)\s+(.+?)\??$",
    re.IGNORECASE,
)
_BARE_WHAT_ABOUT = re.compile(
    r"^(?:and|what about|how about)\s+(.+?)\??$", re.IGNORECASE
)
_TOP_ONLY = re.compile(
    r"^(?:only\s+)?the\s+top\s+(\d+)\??$", re.IGNORECASE
)

_EXISTING_GROUP = re.compile(
    r"\s+(?:per|by|for each)\s+[\w\s]+?(?=\?|$)", re.IGNORECASE
)
_EXISTING_FILTER = re.compile(
    r"\s+(?:for|in)\s+[\w\s]+?(?=\?|$)", re.IGNORECASE
)


class FollowUpRewriter:
    """Resolve elliptical follow-ups against the previous question."""

    def __init__(self) -> None:
        self._previous: Optional[str] = None

    def reset(self) -> None:
        self._previous = None

    def rewrite(self, question: str) -> Rewrite:
        """Rewrite ``question`` if it is an ellipsis; track history."""
        text = question.strip()
        result = self._apply(text)
        # A rewritten (or complete) question becomes the new context.
        self._previous = result.question
        return result

    def _apply(self, text: str) -> Rewrite:
        if self._previous is None:
            return Rewrite(text, False)
        base = self._previous.rstrip("?!. ")

        match = _GROUP_SWAP.match(text)
        if match:
            dimension = match.group(1).strip()
            swapped, count = _EXISTING_GROUP.subn(
                f" per {dimension}", base, count=1
            )
            if count:
                return Rewrite(swapped + "?", True, "group-swap")
            return Rewrite(f"{base} per {dimension}?", True, "group-add")

        match = _TOP_ONLY.match(text)
        if match:
            n = match.group(1)
            return Rewrite(
                f"{base} top {n}?", True, "top-n",
            )

        match = _FILTER_ADD.match(text)
        if match:
            value = match.group(1).strip()
            swapped, count = _EXISTING_FILTER.subn(
                f" for {value}", base, count=1
            )
            if count:
                return Rewrite(swapped + "?", True, "filter-swap")
            return Rewrite(f"{base} for {value}?", True, "filter-add")

        match = _BARE_WHAT_ABOUT.match(text)
        if match:
            # "what about X?" where X names a measure/column: swap the
            # group dimension if the base has one, else append a filter.
            mention = match.group(1).strip()
            swapped, count = _EXISTING_GROUP.subn(
                f" per {mention}", base, count=1
            )
            if count:
                return Rewrite(swapped + "?", True, "group-swap")
            return Rewrite(f"{base} {mention}?", True, "append")

        return Rewrite(text, False)
