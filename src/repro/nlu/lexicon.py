"""Phrase -> schema-element vocabulary with longest-match lookup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class LexiconEntry:
    """One vocabulary item.

    ``kind`` is ``'table'`` or ``'column'``; ``target`` is the schema
    identifier; columns carry their owning ``table`` when known.
    """

    phrase: str
    kind: str
    target: str
    table: Optional[str] = None
    weight: float = 1.0


class Lexicon:
    """Multi-phrase vocabulary supporting plural folding and merging.

    Phrases are stored lower-cased. ``lookup`` also tries the singular
    form (trailing ``s`` stripped) so "customers" finds "customer".
    """

    def __init__(self) -> None:
        self._entries: dict[str, list[LexiconEntry]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase: str) -> bool:
        return self._normalize(phrase) in self._entries

    @staticmethod
    def _normalize(phrase: str) -> str:
        return phrase.strip().lower().replace("_", " ")

    def add(self, entry: LexiconEntry) -> None:
        phrase = self._normalize(entry.phrase)
        if not phrase:
            raise ValueError("empty lexicon phrase")
        bucket = self._entries.setdefault(phrase, [])
        # Keep the highest-weight entry per (kind, target, table).
        for index, existing in enumerate(bucket):
            same = (
                existing.kind == entry.kind
                and existing.target == entry.target
                and existing.table == entry.table
            )
            if same:
                if entry.weight > existing.weight:
                    bucket[index] = entry
                return
        bucket.append(entry)

    def add_synonym(
        self,
        phrase: str,
        kind: str,
        target: str,
        table: Optional[str] = None,
        weight: float = 1.0,
    ) -> None:
        self.add(LexiconEntry(phrase, kind, target, table, weight))

    def lookup(self, phrase: str) -> list[LexiconEntry]:
        """All entries for ``phrase`` (or its singular), best first."""
        normalized = self._normalize(phrase)
        found = self._entries.get(normalized)
        if not found and normalized.endswith("s"):
            found = self._entries.get(normalized[:-1])
        if not found and not normalized.endswith("s"):
            found = self._entries.get(normalized + "s")
        if not found:
            return []
        return sorted(found, key=lambda e: -e.weight)

    def phrases(self) -> list[str]:
        """All phrases, longest first (for greedy matching)."""
        return sorted(self._entries, key=lambda p: (-len(p), p))

    def merge(self, other: "Lexicon") -> None:
        """Add every entry of ``other`` into this lexicon."""
        for entries in other._entries.values():
            for entry in entries:
                self.add(entry)

    def copy(self) -> "Lexicon":
        clone = Lexicon()
        clone.merge(self)
        return clone

    @classmethod
    def from_entries(cls, entries: Iterable[LexiconEntry]) -> "Lexicon":
        lexicon = cls()
        for entry in entries:
            lexicon.add(entry)
        return lexicon
