"""SQL-to-Text: explain a SQL statement in plain language."""

from __future__ import annotations

from repro.sqlengine import nodes
from repro.sqlengine.parser import parse_sql

_AGG_WORDS = {
    "COUNT": "the number of",
    "SUM": "the total",
    "AVG": "the average",
    "MAX": "the maximum",
    "MIN": "the minimum",
    "GROUP_CONCAT": "the concatenation of",
}


def sql_to_text(sql: str, language: str = "en") -> str:
    """Render a one-sentence explanation of ``sql``.

    Supports SELECT (including joins, grouping, ordering, limits) and
    the DML/DDL statements; raises the parser's error on invalid SQL.
    """
    statement = parse_sql(sql)
    if isinstance(statement, nodes.Select):
        sentence = _explain_select(statement)
    elif isinstance(statement, nodes.Insert):
        count = len(statement.rows) if statement.rows else "queried"
        sentence = f"This inserts {count} row(s) into {statement.table}"
    elif isinstance(statement, nodes.Update):
        columns = ", ".join(name for name, _ in statement.assignments)
        sentence = f"This updates {columns} in {statement.table}"
        if statement.where is not None:
            sentence += f" where {_explain_expr(statement.where)}"
    elif isinstance(statement, nodes.Delete):
        sentence = f"This deletes rows from {statement.table}"
        if statement.where is not None:
            sentence += f" where {_explain_expr(statement.where)}"
    elif isinstance(statement, nodes.CreateTable):
        sentence = (
            f"This creates table {statement.name} with "
            f"{len(statement.columns)} column(s)"
        )
    elif isinstance(statement, nodes.DropTable):
        sentence = f"This drops table {statement.name}"
    elif isinstance(statement, nodes.CreateIndex):
        sentence = (
            f"This creates index {statement.name} on "
            f"{statement.table}({', '.join(statement.columns)})"
        )
    elif isinstance(statement, nodes.DropIndex):
        sentence = f"This drops index {statement.name}"
    elif isinstance(statement, nodes.CreateView):
        sentence = (
            f"This creates view {statement.name} defined as: "
            f"{_explain_select(statement.query)[0].lower()}"
            f"{_explain_select(statement.query)[1:]}"
        )
    elif isinstance(statement, nodes.DropView):
        sentence = f"This drops view {statement.name}"
    elif isinstance(statement, nodes.TransactionStatement):
        verbs = {
            "BEGIN": "starts a transaction",
            "COMMIT": "commits the current transaction",
            "ROLLBACK": "rolls back the current transaction",
        }
        sentence = f"This {verbs[statement.action]}"
    elif isinstance(statement, nodes.Explain):
        sentence = (
            "This shows the execution plan of: "
            f"{_explain_select(statement.query)[0].lower()}"
            f"{_explain_select(statement.query)[1:]}"
        )
    else:  # pragma: no cover - defensive default
        sentence = "This runs a SQL statement"
    return sentence.strip() + "."


def _explain_select(select: nodes.Select) -> str:
    targets = ", ".join(
        _explain_expr(item.expression) for item in select.items
    )
    sentence = f"This retrieves {targets}"
    if select.distinct:
        sentence = f"This retrieves the distinct {targets}"
    if select.source is not None:
        sentence += f" from {_explain_source(select.source)}"
    if select.where is not None:
        sentence += f" where {_explain_expr(select.where)}"
    if select.group_by:
        grouped = ", ".join(_explain_expr(e) for e in select.group_by)
        sentence += f", grouped by {grouped}"
    if select.having is not None:
        sentence += f", keeping groups where {_explain_expr(select.having)}"
    if select.order_by:
        orders = ", ".join(
            f"{_explain_expr(o.expression)} "
            f"{'descending' if o.descending else 'ascending'}"
            for o in select.order_by
        )
        sentence += f", sorted by {orders}"
    if select.limit is not None:
        sentence += f", returning at most {_explain_expr(select.limit)} row(s)"
    for op, _query in select.compound:
        word = {
            "UNION": "combined (without duplicates) with",
            "UNION ALL": "combined with",
            "INTERSECT": "intersected with",
            "EXCEPT": "excluding",
        }.get(op, op.lower())
        sentence += f", {word} another query"
    return sentence


def _explain_source(source: nodes.TableRef) -> str:
    if isinstance(source, nodes.NamedTable):
        return source.name
    if isinstance(source, nodes.SubqueryTable):
        return f"a subquery ({source.alias})"
    if isinstance(source, nodes.Join):
        verb = {
            "INNER": "joined with",
            "LEFT": "left-joined with",
            "RIGHT": "right-joined with",
            "FULL": "full-joined with",
            "CROSS": "cross-joined with",
        }[source.join_type]
        text = (
            f"{_explain_source(source.left)} {verb} "
            f"{_explain_source(source.right)}"
        )
        if source.condition is not None:
            text += f" on {_explain_expr(source.condition)}"
        return text
    return source.to_sql()


def _explain_expr(expr: nodes.Expression) -> str:
    if isinstance(expr, nodes.Star):
        return "all columns"
    if isinstance(expr, nodes.ColumnRef):
        return expr.to_sql()
    if isinstance(expr, nodes.Literal):
        return expr.to_sql()
    if isinstance(expr, nodes.FunctionCall):
        phrase = _AGG_WORDS.get(expr.name)
        if phrase:
            inner = (
                "rows"
                if expr.args and isinstance(expr.args[0], nodes.Star)
                else ", ".join(_explain_expr(a) for a in expr.args)
            )
            if expr.distinct:
                inner = f"distinct {inner}"
            return f"{phrase} {inner}"
        inner = ", ".join(_explain_expr(a) for a in expr.args)
        return f"{expr.name.lower()}({inner})"
    if isinstance(expr, nodes.BinaryOp):
        words = {
            "=": "equals",
            "<>": "does not equal",
            "<": "is less than",
            ">": "is greater than",
            "<=": "is at most",
            ">=": "is at least",
            "AND": "and",
            "OR": "or",
        }
        word = words.get(expr.op, expr.op)
        return f"{_explain_expr(expr.left)} {word} {_explain_expr(expr.right)}"
    if isinstance(expr, nodes.IsNull):
        suffix = "is not missing" if expr.negated else "is missing"
        return f"{_explain_expr(expr.operand)} {suffix}"
    if isinstance(expr, nodes.Like):
        verb = "does not match" if expr.negated else "matches"
        return (
            f"{_explain_expr(expr.operand)} {verb} the pattern "
            f"{_explain_expr(expr.pattern)}"
        )
    if isinstance(expr, nodes.Between):
        verb = "is not between" if expr.negated else "is between"
        return (
            f"{_explain_expr(expr.operand)} {verb} "
            f"{_explain_expr(expr.low)} and {_explain_expr(expr.high)}"
        )
    if isinstance(expr, nodes.InList):
        verb = "is not one of" if expr.negated else "is one of"
        items = ", ".join(_explain_expr(i) for i in expr.items)
        return f"{_explain_expr(expr.operand)} {verb} ({items})"
    if isinstance(expr, nodes.InSubquery):
        verb = "is not in" if expr.negated else "is in"
        return f"{_explain_expr(expr.operand)} {verb} the result of a subquery"
    if isinstance(expr, nodes.Exists):
        return "a matching row exists in a subquery"
    if isinstance(expr, nodes.UnaryOp):
        if expr.op == "NOT":
            return f"not ({_explain_expr(expr.operand)})"
        return f"{expr.op}{_explain_expr(expr.operand)}"
    return expr.to_sql()
