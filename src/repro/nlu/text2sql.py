"""The Text-to-SQL semantic parser.

Assembles SQL from (a) the question's intent, (b) linked schema
elements, and (c) content-linked filter values, with automatic
foreign-key join inference when the selected columns span tables.

The parser is the inference procedure of the simulated Text-to-SQL LLM:
its *lexicon* is the model's learnable parameter (zero-shot = schema
identifiers only; fine-tuned = schema identifiers + learned synonyms).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.nlu.intent import Intent, IntentClassifier, IntentResult
from repro.nlu.lexicon import Lexicon
from repro.nlu.multilingual import detect_language, translate_zh_phrases
from repro.nlu.schema_linking import (
    LinkResult,
    Mention,
    SchemaIndex,
    SchemaLinker,
)


class Text2SqlError(Exception):
    """The question could not be grounded in the schema."""


@dataclass
class Text2SqlResult:
    """Parsed SQL plus diagnostics for the repair loop / UI."""

    sql: str
    confidence: float
    language: str
    intent: Intent
    tables: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


_COMPARISON = re.compile(
    r"(?:more than|greater than|over|above|at least)\s+(\d+(?:\.\d+)?)|"
    r"(?:less than|under|below|at most)\s+(\d+(?:\.\d+)?)"
)

_RANGE = re.compile(
    r"between\s+(\d+(?:\.\d+)?)\s+and\s+(\d+(?:\.\d+)?)"
)

_GROUP_MARKER = re.compile(
    r"(?<![a-z])(?:per|for each|by each|grouped by|by)(?![a-z])"
)


class Text2SqlParser:
    """Parse natural-language questions to SQL over one schema.

    >>> # doctest setup omitted; see tests/nlu/test_text2sql.py
    """

    def __init__(
        self,
        index: SchemaIndex,
        lexicon: Optional[Lexicon] = None,
    ) -> None:
        self.index = index
        self.lexicon = lexicon if lexicon is not None else index.base_lexicon()
        self._linker = SchemaLinker(index, self.lexicon)
        self._classifier = IntentClassifier()

    # -- public API ------------------------------------------------------

    def parse(self, question: str) -> Text2SqlResult:
        """Parse ``question``; raises :class:`Text2SqlError` if hopeless."""
        language = detect_language(question)
        text = question.lower()
        if language == "zh":
            text = translate_zh_phrases(text)
        link = self._linker.link(text)
        intent_result = self._classifier.classify(text)
        notes: list[str] = []
        fallbacks = 0

        primary = self._primary_table(link, notes)
        if primary is None:
            raise Text2SqlError(
                f"could not identify a table in: {question!r}"
            )
        if not link.tables():
            fallbacks += 1

        where, where_table, where_fallback = self._build_where(
            text, link, primary, notes
        )
        fallbacks += where_fallback

        sql, used_tables, build_fallbacks = self._build_sql(
            text, link, intent_result, primary, where, where_table, notes
        )
        fallbacks += build_fallbacks
        confidence = max(0.0, 1.0 - 0.25 * fallbacks)
        return Text2SqlResult(
            sql=sql,
            confidence=confidence,
            language=language,
            intent=intent_result.intent,
            tables=used_tables,
            notes=notes,
        )

    # -- table resolution --------------------------------------------------

    def _primary_table(
        self, link: LinkResult, notes: list[str]
    ) -> Optional[str]:
        tables = link.tables()
        if tables:
            return tables[0]
        # Infer from column mentions.
        for mention in link.columns():
            if mention.entry.table:
                notes.append(
                    f"table inferred from column {mention.entry.target!r}"
                )
                return mention.entry.table
        # Infer from a content-linked value.
        for value in link.values:
            if value.candidates:
                notes.append(
                    f"table inferred from value {value.value!r}"
                )
                return value.candidates[0][0]
        return None

    # -- WHERE clause -------------------------------------------------------

    def _build_where(
        self,
        text: str,
        link: LinkResult,
        primary: str,
        notes: list[str],
    ) -> tuple[Optional[str], Optional[str], int]:
        """Returns (condition, table of the filter column, fallbacks)."""
        fallbacks = 0
        for value in link.values:
            candidates = value.candidates
            chosen = next(
                (c for c in candidates if c[0] == primary), None
            )
            if chosen is None:
                chosen = candidates[0]
                if len(candidates) > 1:
                    fallbacks += 1
                    notes.append(
                        f"ambiguous value {value.value!r}; "
                        f"guessed {chosen[0]}.{chosen[1]}"
                    )
            table, column = chosen
            original = self.index.value_originals.get(
                value.value, value.value
            )
            literal = original.replace("'", "''")
            return f"{column} = '{literal}'", table, fallbacks

        range_match = _RANGE.search(text)
        if range_match:
            low, high = range_match.group(1), range_match.group(2)
            column = self._numeric_mention(link, primary)
            if column is None:
                numerics = self.index.numeric_columns(primary)
                if numerics:
                    column = numerics[0]
                    fallbacks += 1
                    notes.append(f"range column guessed as {column!r}")
            if column is not None:
                return (
                    f"{column} BETWEEN {low} AND {high}",
                    primary,
                    fallbacks,
                )

        match = _COMPARISON.search(text)
        if match:
            threshold = match.group(1) or match.group(2)
            op = ">" if match.group(1) else "<"
            column = self._numeric_mention(link, primary)
            if column is None:
                numerics = self.index.numeric_columns(primary)
                if numerics:
                    column = numerics[0]
                    fallbacks += 1
                    notes.append(
                        f"comparison column guessed as {column!r}"
                    )
            if column is not None:
                return f"{column} {op} {threshold}", primary, fallbacks
        return None, None, fallbacks

    def _numeric_mention(
        self, link: LinkResult, primary: str
    ) -> Optional[str]:
        for mention in link.columns():
            target = mention.entry.target
            table = self._mention_table(mention, primary)
            if target in self.index.numeric_columns(table):
                return target
        return None


    def _mention_table(self, mention: Mention, primary: str) -> str:
        """Resolve a column mention's table, preferring the primary table
        when it also has a column with that name."""
        if mention.entry.target in self.index.tables.get(primary, []):
            return primary
        return mention.entry.table or primary

    # -- SELECT assembly -----------------------------------------------------

    def _build_sql(
        self,
        text: str,
        link: LinkResult,
        intent_result: IntentResult,
        primary: str,
        where: Optional[str],
        where_table: Optional[str],
        notes: list[str],
    ) -> tuple[str, list[str], int]:
        intent = intent_result.intent
        fallbacks = 0
        tables = [primary]

        def qualify(table: str, column: str) -> str:
            # The filter's table joins in at assembly time, so count it
            # now: a future two-table query must qualify its columns.
            multi = len(tables) > 1 or (
                where_table is not None and where_table not in tables
            )
            return f"{table}.{column}" if multi else column

        if intent is Intent.GROUP_COUNT:
            group_mention = self._group_column(text, link, primary)
            if group_mention is None:
                temporal = self._temporal_group(text, primary)
                if temporal is not None:
                    select = f"{temporal}, COUNT(*)"
                    sql = self._assemble(
                        select, tables, where, where_table, group_by=temporal
                    )
                    return sql, tables, fallbacks
                raise Text2SqlError(
                    "grouped count without a recognizable group column"
                )
            group_table = self._mention_table(group_mention, primary)
            if group_table != primary and group_table not in tables:
                tables.append(group_table)
            group_col = group_mention.entry.target
            select = (
                f"{qualify(group_table, group_col)}, COUNT(*)"
            )
            sql = self._assemble(
                select, tables, where, where_table,
                group_by=qualify(group_table, group_col),
            )
            return sql, tables, fallbacks

        if intent in (Intent.AVG, Intent.SUM, Intent.MAX, Intent.MIN):
            fn = intent.name
            measure = self._measure_column(link, primary, notes)
            if measure is None:
                numerics = self.index.numeric_columns(primary)
                if not numerics:
                    raise Text2SqlError(
                        f"no numeric column for {fn} over {primary!r}"
                    )
                measure = (primary, numerics[0])
                fallbacks += 1
                notes.append(f"measure guessed as {numerics[0]!r}")
            measure_table, measure_col = measure
            if measure_table != primary and measure_table not in tables:
                tables.append(measure_table)
            group_mention = self._group_column(
                text, link, primary, exclude={measure_col}
            )
            if group_mention is None:
                temporal = self._temporal_group(text, primary)
                if temporal is not None:
                    select = (
                        f"{temporal}, {fn}({qualify(measure_table, measure_col)})"
                    )
                    sql = self._assemble(
                        select, tables, where, where_table,
                        group_by=temporal, order_by=temporal + " ASC",
                    )
                    return sql, tables, fallbacks
            if group_mention is not None:
                group_table = self._mention_table(group_mention, primary)
                if group_table not in tables:
                    tables.append(group_table)
                group_ref = qualify(group_table, group_mention.entry.target)
                select = f"{group_ref}, {fn}({qualify(measure_table, measure_col)})"
                sql = self._assemble(
                    select, tables, where, where_table, group_by=group_ref
                )
                return sql, tables, fallbacks
            select = f"{fn}({qualify(measure_table, measure_col)})"
            return (
                self._assemble(select, tables, where, where_table),
                tables,
                fallbacks,
            )

        if intent is Intent.COUNT:
            return (
                self._assemble("COUNT(*)", tables, where, where_table),
                tables,
                fallbacks,
            )

        if intent is Intent.COUNT_DISTINCT:
            mention = self._first_column(link, primary)
            if mention is None:
                raise Text2SqlError(
                    "count-distinct question without a column"
                )
            column_table = self._mention_table(mention, primary)
            if column_table not in tables:
                tables.append(column_table)
            select = (
                f"COUNT(DISTINCT {qualify(column_table, mention.entry.target)})"
            )
            return (
                self._assemble(select, tables, where, where_table),
                tables,
                fallbacks,
            )

        if intent is Intent.TOP_N:
            measure = self._measure_column(link, primary, notes)
            if measure is None:
                numerics = self.index.numeric_columns(primary)
                if not numerics:
                    raise Text2SqlError(
                        f"top-n without a numeric column on {primary!r}"
                    )
                measure = (primary, numerics[0])
                fallbacks += 1
            measure_table, measure_col = measure
            label = self._label_column(link, primary, exclude={measure_col})
            if label is None:
                label = (primary, self.index.label_columns[primary])
                fallbacks += 1
                notes.append(f"label column guessed as {label[1]!r}")
            label_table, label_col = label
            for extra in (measure_table, label_table):
                if extra not in tables:
                    tables.append(extra)
            direction = "ASC" if intent_result.ascending else "DESC"
            n = intent_result.top_n or 1
            select = qualify(label_table, label_col)
            sql = self._assemble(
                select, tables, where, where_table,
                order_by=f"{qualify(measure_table, measure_col)} {direction}",
                limit=n,
            )
            return sql, tables, fallbacks

        if intent is Intent.DISTINCT:
            mention = self._first_column(link, primary)
            if mention is None:
                raise Text2SqlError("distinct question without a column")
            column_table = self._mention_table(mention, primary)
            if column_table not in tables:
                tables.append(column_table)
            select = f"DISTINCT {qualify(column_table, mention.entry.target)}"
            return (
                self._assemble(select, tables, where, where_table),
                tables,
                fallbacks,
            )

        # Intent.LIST
        where_column = where.split(" ")[0] if where else None
        mention = self._first_column(
            link, primary, exclude={where_column} if where_column else set()
        )
        if mention is not None:
            column_table = self._mention_table(mention, primary)
            if column_table not in tables:
                tables.append(column_table)
            select = qualify(column_table, mention.entry.target)
        else:
            select = qualify(primary, self.index.label_columns[primary])
            fallbacks += 1
            notes.append("select column guessed from label heuristic")
        return (
            self._assemble(select, tables, where, where_table),
            tables,
            fallbacks,
        )

    # -- column pickers --------------------------------------------------

    def _measure_column(
        self, link: LinkResult, primary: str, notes: list[str]
    ) -> Optional[tuple[str, str]]:
        for mention in link.columns():
            table = self._mention_table(mention, primary)
            if mention.entry.target in self.index.numeric_columns(table):
                return table, mention.entry.target
        return None

    def _group_column(
        self,
        text: str,
        link: LinkResult,
        primary: str,
        exclude: Optional[set[str]] = None,
    ) -> Optional[Mention]:
        exclude = exclude or set()
        match = _GROUP_MARKER.search(text)
        if match is None:
            return None
        marker_position = match.end() + 1
        after = [
            m
            for m in link.columns()
            if m.start >= marker_position - 1 and m.entry.target not in exclude
        ]
        if after:
            return after[0]
        remaining = [
            m for m in link.columns() if m.entry.target not in exclude
        ]
        return remaining[0] if remaining else None

    def _temporal_group(self, text: str, primary: str) -> Optional[str]:
        """A STRFTIME group expression for month/year questions.

        "total amount per month" has no literal schema column to link;
        when the primary table has a DATE column, group by its
        month/year bucket instead.
        """
        lowered = text.lower()
        if re.search(r"(?<![a-z])month(?:ly|s)?(?![a-z])|月", lowered):
            fmt = "%Y-%m"
        elif re.search(r"(?<![a-z])year(?:ly|s)?(?![a-z])|年", lowered):
            fmt = "%Y"
        else:
            return None
        for column in self.index.tables.get(primary, []):
            if self.index.column_types.get((primary, column)) == "DATE":
                return f"STRFTIME('{fmt}', {primary}.{column})"
        return None

    def _first_column(
        self,
        link: LinkResult,
        primary: str,
        exclude: Optional[set[str]] = None,
    ) -> Optional[Mention]:
        exclude = exclude or set()
        for mention in link.columns():
            if mention.entry.target not in exclude:
                return mention
        return None

    def _label_column(
        self,
        link: LinkResult,
        primary: str,
        exclude: set[str],
    ) -> Optional[tuple[str, str]]:
        for mention in link.columns():
            if mention.entry.target in exclude:
                continue
            table = self._mention_table(mention, primary)
            if mention.entry.target not in self.index.numeric_columns(table):
                return table, mention.entry.target
        return None

    # -- FROM clause / join inference --------------------------------------

    def _assemble(
        self,
        select: str,
        tables: list[str],
        where: Optional[str],
        where_table: Optional[str],
        group_by: Optional[str] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> str:
        if where_table is not None and where_table not in tables:
            tables.append(where_table)
        if len(tables) == 1:
            from_clause = tables[0]
            where_clause = where
        else:
            from_clause = self._join_clause(tables)
            where_clause = (
                f"{where_table}.{where}" if where and where_table else where
            )
        parts = [f"SELECT {select}", f"FROM {from_clause}"]
        if where_clause:
            parts.append(f"WHERE {where_clause}")
        if group_by:
            parts.append(f"GROUP BY {group_by}")
        if order_by:
            parts.append(f"ORDER BY {order_by}")
        if limit is not None:
            parts.append(f"LIMIT {limit}")
        return " ".join(parts)

    def _join_clause(self, tables: list[str]) -> str:
        clause = tables[0]
        joined = [tables[0]]
        for table in tables[1:]:
            condition = self._find_join(joined, table)
            if condition is None:
                raise Text2SqlError(
                    f"no join path between {joined} and {table!r}"
                )
            clause += f" JOIN {table} ON {condition}"
            joined.append(table)
        return clause

    def _find_join(
        self, joined: list[str], new_table: str
    ) -> Optional[str]:
        """Find a shared key column between ``new_table`` and any joined
        table (classic name-equality foreign-key inference)."""
        new_columns = set(self.index.tables.get(new_table, []))
        for existing in joined:
            shared = [
                column
                for column in self.index.tables.get(existing, [])
                if column in new_columns
                and (
                    column.lower().endswith("_id")
                    or column.lower() == "id"
                    or self._is_primary_like(column, existing, new_table)
                )
            ]
            if shared:
                key = shared[0]
                return f"{existing}.{key} = {new_table}.{key}"
        return None

    def _is_primary_like(
        self, column: str, left: str, right: str
    ) -> bool:
        lowered = column.lower()
        for table in (left, right):
            singular = table.lower().rstrip("s")
            if lowered == singular or lowered == f"{singular}_id":
                return True
        # A shared TEXT key column (e.g. departments.dept) also joins.
        left_type = self.index.column_types.get((left, column))
        right_type = self.index.column_types.get((right, column))
        return left_type is not None and left_type == right_type
