"""Question intent classification."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional


class Intent(enum.Enum):
    COUNT = "count"
    COUNT_DISTINCT = "count_distinct"
    AVG = "avg"
    SUM = "sum"
    MAX = "max"
    MIN = "min"
    TOP_N = "top_n"
    GROUP_COUNT = "group_count"
    DISTINCT = "distinct"
    LIST = "list"


@dataclass
class IntentResult:
    intent: Intent
    #: LIMIT for TOP_N questions.
    top_n: Optional[int] = None
    #: True when the TOP_N direction is ascending (lowest/cheapest).
    ascending: bool = False


_TOP_PATTERN = re.compile(
    r"\btop\s+(\d+)\b|\b(\d+)\s*个\b|(?:highest|largest|lowest|smallest)"
    r"\s+(\d+)\b"
)
_NUMBER = re.compile(r"\d+")


class IntentClassifier:
    """Keyword-driven intent detection over normalized English text.

    Chinese questions are pre-translated by
    :func:`repro.nlu.multilingual.translate_zh_phrases`, so the keyword
    tables here stay in one language.
    """

    @staticmethod
    def _has_word(lowered: str, *words: str) -> bool:
        return any(
            re.search(r"(?<![a-z])" + re.escape(w) + r"(?![a-z])", lowered)
            for w in words
        )

    def classify(self, text: str) -> IntentResult:
        lowered = text.lower()

        has_count = "how many" in lowered or self._has_word(lowered, "count")
        has_per = self._has_word(lowered, "per") or self._has_word(
            lowered, "for each", "by each"
        )
        has_distinct = self._has_word(
            lowered, "distinct", "unique", "different"
        )
        if has_count and has_per:
            return IntentResult(Intent.GROUP_COUNT)
        if has_count and has_distinct:
            return IntentResult(Intent.COUNT_DISTINCT)

        top = self._match_top_n(lowered)
        if top is not None:
            return top

        if has_distinct and self._has_word(lowered, "distinct", "unique"):
            return IntentResult(Intent.DISTINCT)
        if self._has_word(lowered, "average", "mean", "avg"):
            return IntentResult(Intent.AVG)
        if self._has_word(lowered, "total", "sum"):
            return IntentResult(Intent.SUM)
        if self._has_word(lowered, "maximum", "largest", "biggest"):
            return IntentResult(Intent.MAX)
        if self._has_word(lowered, "minimum", "smallest", "cheapest"):
            return IntentResult(Intent.MIN)
        if has_count:
            return IntentResult(Intent.COUNT)
        return IntentResult(Intent.LIST)

    @staticmethod
    def _match_top_n(lowered: str) -> Optional[IntentResult]:
        # "top 3", "highest 2", "最高的2个" (post-translation: "highest ... 2 个")
        if "top " in lowered:
            match = _NUMBER.search(lowered[lowered.index("top ") :])
            if match:
                return IntentResult(Intent.TOP_N, top_n=int(match.group()))
        for marker, ascending in (
            ("highest", False),
            ("largest", False),
            ("most", False),
            ("lowest", True),
            ("smallest", True),
            ("cheapest", True),
        ):
            if marker in lowered:
                match = _NUMBER.search(lowered)
                if match:
                    return IntentResult(
                        Intent.TOP_N,
                        top_n=int(match.group()),
                        ascending=ascending,
                    )
        return None
