"""Multilingual support: language detection and the built-in Chinese
vocabulary of the simulated LLM.

A real LLM knows from pretraining that 员工 means employee; the
simulated model's equivalent is this dictionary of common data-domain
words. Domain-*specific* jargon still has to be learned by fine-tuning,
exactly as in the English case.
"""

from __future__ import annotations

import re

_CJK = re.compile(r"[一-鿿]")

#: Chinese surface form -> English schema concept. Covers the common
#: business-data vocabulary (the simulated model's "pretraining").
_ZH_DICTIONARY: dict[str, str] = {
    "员工": "employees",
    "部门": "departments",
    "部门名": "dept",
    "客户": "customers",
    "采购记录": "purchases",
    "订单": "orders",
    "产品": "products",
    "用户": "users",
    "图书": "books",
    "借阅记录": "loans",
    "病人": "patients",
    "就诊记录": "visits",
    "工资": "salary",
    "预算": "budget",
    "级别": "level",
    "负责人": "head",
    "姓名": "name",
    "名称": "name",
    "花费": "cost",
    "数量": "qty",
    "国家": "country",
    "类型": "segment",
    "商品": "item",
    "页数": "pages",
    "类别": "genre",
    "作者": "author",
    "会员": "member",
    "周数": "weeks",
    "书名": "title",
    "年龄": "age",
    "城市": "city",
    "费用": "fee",
    "医生": "doctor",
    "金额": "amount",
    "月份": "month",
    "地区": "region",
    "价格": "price",
}

#: Chinese intent keywords -> canonical English intent keywords.
#: "是多少" ("what is") must be listed so it translates before the
#: embedded "多少" would wrongly become "how many".
ZH_INTENT_KEYWORDS: dict[str, str] = {
    "是多少": "what is",
    "有多少": "how many",
    "多少": "how many",
    "平均": "average",
    "总": "total",
    "最大": "maximum",
    "最小": "minimum",
    "最高": "highest",
    "最低": "lowest",
    "列出": "list",
    "不同的": "distinct",
    "每个": "per",
    "一共": "altogether",
    "是什么": "what is",
}


def detect_language(text: str) -> str:
    """'zh' when the text contains CJK characters, else 'en'."""
    return "zh" if _CJK.search(text) else "en"


def zh_dictionary() -> dict[str, str]:
    """A copy of the built-in ZH -> EN schema-concept dictionary."""
    return dict(_ZH_DICTIONARY)


def translate_zh_phrases(text: str) -> str:
    """Replace known Chinese phrases with their English concepts.

    Longest phrases first so 采购记录 wins over 记录. The output is a
    mixed-language string the English pipeline can link against.
    """
    for phrase in sorted(_ZH_DICTIONARY, key=len, reverse=True):
        text = text.replace(phrase, f" {_ZH_DICTIONARY[phrase]} ")
    for phrase in sorted(ZH_INTENT_KEYWORDS, key=len, reverse=True):
        text = text.replace(phrase, f" {ZH_INTENT_KEYWORDS[phrase]} ")
    return re.sub(r"\s+", " ", text).strip()
