"""Natural-language understanding: the deterministic Text-to-SQL core.

This package is the "model" behind the simulated Text-to-SQL LLM: a
grammar-driven semantic parser with schema linking. It is deliberately
split the way neural Text-to-SQL systems are analyzed:

- :mod:`repro.nlu.lexicon` — phrase -> schema-element vocabulary. The
  *base* lexicon knows only schema identifiers (zero-shot); fine-tuning
  (:mod:`repro.hub`) extends it with learned domain synonyms.
- :mod:`repro.nlu.multilingual` — built-in EN/ZH vocabulary so Chinese
  questions link to English schema identifiers.
- :mod:`repro.nlu.schema_linking` — mention detection over questions,
  including database-content (value) linking.
- :mod:`repro.nlu.intent` — question intent classification.
- :mod:`repro.nlu.text2sql` — the parser assembling SQL from intent +
  linked schema elements, with automatic foreign-key join inference.
- :mod:`repro.nlu.sql2text` — the inverse: SQL AST -> fluent text.
"""

from repro.nlu.intent import Intent, IntentClassifier
from repro.nlu.lexicon import Lexicon, LexiconEntry
from repro.nlu.multilingual import detect_language, zh_dictionary
from repro.nlu.schema_linking import SchemaIndex, SchemaLinker
from repro.nlu.sql2text import sql_to_text
from repro.nlu.text2sql import Text2SqlError, Text2SqlParser, Text2SqlResult

__all__ = [
    "Intent",
    "IntentClassifier",
    "Lexicon",
    "LexiconEntry",
    "SchemaIndex",
    "SchemaLinker",
    "Text2SqlError",
    "Text2SqlParser",
    "Text2SqlResult",
    "detect_language",
    "sql_to_text",
    "zh_dictionary",
]
