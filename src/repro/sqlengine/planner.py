"""Rule-based query planner producing an inspectable plan tree.

``build_plan`` turns a parsed :class:`~repro.sqlengine.nodes.Select`
into a :class:`SelectPlan` — the structure the executor runs and
``EXPLAIN`` renders. The planner applies a fixed rule set, in order:

1. **Predicate pushdown** — the WHERE clause is split into AND
   conjuncts; each conjunct whose column references all resolve to a
   single FROM leaf moves to that leaf's scan filter. Conjuncts are
   *not* pushed to the null-supplying side of an outer join (that
   would change which rows get null-extended), and conjuncts that
   contain subqueries stay put.
2. **Index selection** — per base-table scan, pushed conjuncts of the
   shape ``column = <constant>`` select a hash or sorted index whose
   columns are fully covered (point lookup); range conjuncts
   (``>``, ``>=``, ``<``, ``<=``, ``BETWEEN``) over the first column
   of a sorted index select a binary-searched range scan. All pushed
   conjuncts are still re-applied as the scan's residual filter, so
   correctness never depends on index semantics.
3. **Join strategy** — an ``ON`` conjunct of the shape
   ``left_col = right_col`` whose sides resolve to opposite join
   inputs turns a nested-loop join into a hash join (build right,
   probe left). The full ON condition still runs per candidate pair.
4. **Projection pruning** — when the statement has no ``*`` and no
   subqueries, each base-table scan emits only the columns some
   clause actually references.
5. **CTE / view / subquery scans** — names are resolved through the
   executor's scope (CTE first, then view, then table); their bodies
   execute as sub-selects and pushed conjuncts apply to their output.

The planner is deliberately *rule*-based, not cost-based: given the
same statement and schema it always produces the same plan, which is
what the golden-plan tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

from repro.sqlengine import nodes
from repro.sqlengine.catalog import TableSchema
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.functions import is_aggregate_function
from repro.sqlengine.indexes import IndexInfo

# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


@dataclass
class SeqAccess:
    """Full heap scan."""


@dataclass
class IndexEqAccess:
    """Point lookup: every index column has an equality constant."""

    index: IndexInfo
    values: tuple[nodes.Expression, ...]  # one constant per index column


@dataclass
class IndexRangeAccess:
    """Range scan over the first column of a sorted index."""

    index: IndexInfo
    column: str
    low: Optional[nodes.Expression] = None
    high: Optional[nodes.Expression] = None
    low_inclusive: bool = True
    high_inclusive: bool = True


AccessPath = Any  # SeqAccess | IndexEqAccess | IndexRangeAccess


@dataclass
class SourcePlan:
    """Base class for FROM-clause plan nodes."""

    binding: str
    #: Pushed-down conjuncts, AND-combined; re-checked on every row.
    filter: Optional[nodes.Expression] = None


@dataclass
class ScanPlan(SourcePlan):
    table: str = ""
    access: AccessPath = field(default_factory=SeqAccess)
    #: Projection pruning: emit only these columns (None = all).
    columns: Optional[tuple[str, ...]] = None


@dataclass
class ViewScanPlan(SourcePlan):
    name: str = ""
    query: Optional[nodes.Select] = None


@dataclass
class CteScanPlan(SourcePlan):
    name: str = ""


@dataclass
class SubqueryScanPlan(SourcePlan):
    query: Optional[nodes.Select] = None


@dataclass
class JoinPlan(SourcePlan):
    left: Optional[SourcePlan] = None
    right: Optional[SourcePlan] = None
    join_type: str = "INNER"
    condition: Optional[nodes.Expression] = None
    strategy: str = "loop"  # 'hash' | 'loop' | 'cross'
    #: For hash joins: the equi-conjunct refs (left side, right side).
    equi: Optional[tuple[nodes.ColumnRef, nodes.ColumnRef]] = None


@dataclass
class SelectPlan:
    """A planned single SELECT core (no compound operands)."""

    select: nodes.Select
    source: Optional[SourcePlan]
    #: WHERE conjuncts that could not be pushed down, AND-combined.
    residual: Optional[nodes.Expression]


class PlannerContext(Protocol):
    """Name resolution + index metadata, implemented by the executor."""

    def resolve(self, name: str) -> tuple[Optional[str], Any]:
        """(kind, payload): ('cte', columns-or-None) | ('view', Select)
        | ('table', TableSchema) | (None, None)."""

    def indexes(self, table: str) -> list[IndexInfo]:
        """Secondary-index metadata for a base table, in name order."""


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass
class _Leaf:
    plan: SourcePlan
    binding: str
    #: Lower-cased output column names; None when unknown (SELECT *).
    columns: Optional[list[str]]
    null_supplying: bool
    schema: Optional[TableSchema] = None  # base-table scans only
    pushed: list[nodes.Expression] = field(default_factory=list)


def build_plan(
    select: nodes.Select,
    context: PlannerContext,
    *,
    optimize: bool = True,
    enable_hash_join: bool = True,
) -> SelectPlan:
    """Plan one SELECT core against the given name/index context."""
    if select.source is None:
        return SelectPlan(select=select, source=None, residual=select.where)

    leaves: list[_Leaf] = []
    conditions: list[nodes.Expression] = []
    source = _convert_source(
        select.source,
        context,
        leaves,
        conditions,
        False,
        enable_hash_join,
    )

    residual: list[nodes.Expression] = []
    if select.where is not None:
        if optimize:
            for conjunct in _conjuncts(select.where):
                target = _pushdown_target(conjunct, leaves)
                if target is not None:
                    target.pushed.append(conjunct)
                else:
                    residual.append(conjunct)
        else:
            residual.append(select.where)

    for leaf in leaves:
        if leaf.pushed:
            leaf.plan.filter = _combine(leaf.pushed)
        if optimize and isinstance(leaf.plan, ScanPlan) and leaf.schema:
            leaf.plan.access = _choose_access(
                leaf, context.indexes(leaf.plan.table)
            )

    if optimize:
        _prune_projections(select, leaves, conditions)

    return SelectPlan(
        select=select, source=source, residual=_combine(residual)
    )


def _convert_source(
    source: nodes.TableRef,
    context: PlannerContext,
    leaves: list[_Leaf],
    conditions: list[nodes.Expression],
    null_supplying: bool,
    hash_joins: bool,
) -> SourcePlan:
    if isinstance(source, nodes.NamedTable):
        kind, payload = context.resolve(source.name)
        binding = source.binding
        if kind == "cte":
            plan: SourcePlan = CteScanPlan(binding=binding, name=source.name)
            columns = payload  # output columns, or None if unknown
        elif kind == "view":
            plan = ViewScanPlan(
                binding=binding, name=source.name, query=payload
            )
            columns = output_columns(payload)
        elif kind == "table":
            plan = ScanPlan(binding=binding, table=source.name)
            columns = [c.name.lower() for c in payload.columns]
            leaves.append(
                _Leaf(plan, binding, columns, null_supplying, payload)
            )
            return plan
        else:
            raise CatalogError(f"no table named {source.name!r}")
        leaves.append(_Leaf(plan, binding, columns, null_supplying))
        return plan
    if isinstance(source, nodes.SubqueryTable):
        plan = SubqueryScanPlan(binding=source.alias, query=source.subquery)
        leaves.append(
            _Leaf(
                plan,
                source.alias,
                output_columns(source.subquery),
                null_supplying,
            )
        )
        return plan
    if isinstance(source, nodes.Join):
        left_ns = null_supplying or source.join_type in ("RIGHT", "FULL")
        right_ns = null_supplying or source.join_type in ("LEFT", "FULL")
        if source.condition is not None:
            conditions.append(source.condition)
        mark = len(leaves)
        left = _convert_source(
            source.left, context, leaves, conditions, left_ns, hash_joins
        )
        split = len(leaves)
        right = _convert_source(
            source.right, context, leaves, conditions, right_ns, hash_joins
        )
        left_leaves = leaves[mark:split]
        right_leaves = leaves[split:]
        strategy = "loop"
        equi: Optional[tuple[nodes.ColumnRef, nodes.ColumnRef]] = None
        if source.join_type == "CROSS":
            strategy = "cross"
        elif hash_joins:
            equi = _find_equi_pair(
                source.condition, left_leaves, right_leaves
            )
            if equi is not None:
                strategy = "hash"
        return JoinPlan(
            binding="",
            left=left,
            right=right,
            join_type=source.join_type,
            condition=source.condition,
            strategy=strategy,
            equi=equi,
        )
    raise CatalogError(f"unsupported FROM source: {source!r}")


def output_columns(select: nodes.Select) -> Optional[list[str]]:
    """Lower-cased output column names of a select, or None if a ``*``
    makes them unknowable without execution."""
    names: list[str] = []
    for item in select.items:
        if isinstance(item.expression, nodes.Star):
            return None
        names.append(item.output_name.lower())
    return names


# -- predicate pushdown ----------------------------------------------------


def _conjuncts(expression: nodes.Expression):
    """Yield the top-level AND conjuncts of an expression."""
    if isinstance(expression, nodes.BinaryOp) and expression.op == "AND":
        yield from _conjuncts(expression.left)
        yield from _conjuncts(expression.right)
    else:
        yield expression


_SUBQUERY_NODES = (nodes.InSubquery, nodes.ScalarSubquery, nodes.Exists)


def _pushdown_target(
    conjunct: nodes.Expression, leaves: list[_Leaf]
) -> Optional[_Leaf]:
    """The single leaf this conjunct can be evaluated at, if any."""
    refs: list[nodes.ColumnRef] = []
    for sub in nodes.walk_expressions(conjunct):
        if isinstance(sub, (_SUBQUERY_NODES, nodes.Star)):
            return None  # subqueries and stars never move
        if isinstance(sub, nodes.ColumnRef):
            refs.append(sub)
    if not refs:
        return None  # constant predicate: leave at the top, it is cheap
    target: Optional[_Leaf] = None
    for ref in refs:
        leaf = _resolve_leaf(ref, leaves)
        if leaf is None:
            return None
        if target is None:
            target = leaf
        elif leaf is not target:
            return None  # spans two leaves (e.g. a join predicate)
    if target is not None and target.null_supplying:
        return None  # pushing would change outer-join null extension
    return target


def _resolve_leaf(
    ref: nodes.ColumnRef, leaves: list[_Leaf]
) -> Optional[_Leaf]:
    if ref.table is not None:
        wanted = ref.table.lower()
        matches = [l for l in leaves if l.binding.lower() == wanted]
        if len(matches) != 1:
            return None
        leaf = matches[0]
        if leaf.columns is not None and ref.name.lower() not in leaf.columns:
            return None
        return leaf
    # Unqualified: only safe when every leaf's columns are known, so
    # uniqueness (and the engine's ambiguity errors) are preserved.
    if any(leaf.columns is None for leaf in leaves):
        return None
    matches = [l for l in leaves if ref.name.lower() in (l.columns or [])]
    if len(matches) != 1:
        return None
    return matches[0]


def _combine(
    conjuncts: list[nodes.Expression],
) -> Optional[nodes.Expression]:
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = nodes.BinaryOp("AND", combined, conjunct)
    return combined


# -- index selection -------------------------------------------------------


def _is_constant(expr: nodes.Expression) -> bool:
    """No column references or subqueries: literals, parameters,
    arithmetic over them."""
    for sub in nodes.walk_expressions(expr):
        if isinstance(sub, (nodes.ColumnRef, nodes.Star, *_SUBQUERY_NODES)):
            return False
    return True


_RANGE_OPS = {">": "low_open", ">=": "low", "<": "high_open", "<=": "high"}
_FLIP = {">": "<", ">=": "<=", "<": ">", "<=": ">="}


@dataclass
class _Bounds:
    eq: Optional[nodes.Expression] = None
    low: Optional[nodes.Expression] = None
    low_inclusive: bool = True
    high: Optional[nodes.Expression] = None
    high_inclusive: bool = True


def _column_bounds(leaf: _Leaf) -> dict[str, _Bounds]:
    """Per-column equality/range constants among the pushed conjuncts."""
    bounds: dict[str, _Bounds] = {}

    def slot(name: str) -> _Bounds:
        return bounds.setdefault(name.lower(), _Bounds())

    def record_range(name: str, op: str, expr: nodes.Expression) -> None:
        entry = slot(name)
        if op in (">", ">=") and entry.low is None:
            entry.low = expr
            entry.low_inclusive = op == ">="
        elif op in ("<", "<=") and entry.high is None:
            entry.high = expr
            entry.high_inclusive = op == "<="

    for conjunct in leaf.pushed:
        if isinstance(conjunct, nodes.BinaryOp):
            sides = (
                (conjunct.left, conjunct.right, conjunct.op),
                (conjunct.right, conjunct.left, _FLIP.get(conjunct.op, "=")),
            )
            for column_side, const_side, op in sides:
                if not isinstance(column_side, nodes.ColumnRef):
                    continue
                if not _is_constant(const_side):
                    continue
                if conjunct.op == "=":
                    entry = slot(column_side.name)
                    if entry.eq is None:
                        entry.eq = const_side
                elif conjunct.op in _RANGE_OPS:
                    record_range(column_side.name, op, const_side)
                break
        elif (
            isinstance(conjunct, nodes.Between)
            and not conjunct.negated
            and isinstance(conjunct.operand, nodes.ColumnRef)
            and _is_constant(conjunct.low)
            and _is_constant(conjunct.high)
        ):
            record_range(conjunct.operand.name, ">=", conjunct.low)
            record_range(conjunct.operand.name, "<=", conjunct.high)
    return bounds


def _choose_access(leaf: _Leaf, infos: list[IndexInfo]) -> AccessPath:
    if not infos or not leaf.pushed:
        return SeqAccess()
    bounds = _column_bounds(leaf)
    if not bounds:
        return SeqAccess()

    # Rule: point lookup through an index whose columns all have an
    # equality constant. Prefer wider indexes, then hash over sorted,
    # then lexicographic name — a deterministic total order.
    covered = [
        info
        for info in infos
        if all(
            bounds.get(col.lower()) is not None
            and bounds[col.lower()].eq is not None
            for col in info.columns
        )
    ]
    if covered:
        best = sorted(
            covered,
            key=lambda info: (
                -len(info.columns),
                0 if info.kind == "hash" else 1,
                info.name.lower(),
            ),
        )[0]
        values = tuple(bounds[col.lower()].eq for col in best.columns)
        return IndexEqAccess(best, values)  # type: ignore[arg-type]

    # Rule: range scan over a sorted index whose first column has a
    # bound (an equality counts as both bounds).
    ranked: list[tuple[int, str, IndexInfo, _Bounds]] = []
    for info in infos:
        if info.kind != "sorted":
            continue
        entry = bounds.get(info.columns[0].lower())
        if entry is None:
            continue
        if entry.eq is not None:
            entry = _Bounds(low=entry.eq, high=entry.eq)
        if entry.low is None and entry.high is None:
            continue
        score = (entry.low is not None) + (entry.high is not None)
        ranked.append((-score, info.name.lower(), info, entry))
    if ranked:
        _score, _name, info, entry = sorted(ranked, key=lambda r: r[:2])[0]
        return IndexRangeAccess(
            index=info,
            column=info.columns[0],
            low=entry.low,
            high=entry.high,
            low_inclusive=entry.low_inclusive,
            high_inclusive=entry.high_inclusive,
        )
    return SeqAccess()


# -- join strategy ---------------------------------------------------------


def _find_equi_pair(
    condition: Optional[nodes.Expression],
    left_leaves: list[_Leaf],
    right_leaves: list[_Leaf],
) -> Optional[tuple[nodes.ColumnRef, nodes.ColumnRef]]:
    """A ``left_col = right_col`` conjunct usable as a hash-join key."""
    if condition is None:
        return None
    for conjunct in _conjuncts(condition):
        if not (
            isinstance(conjunct, nodes.BinaryOp) and conjunct.op == "="
        ):
            continue
        if not (
            isinstance(conjunct.left, nodes.ColumnRef)
            and isinstance(conjunct.right, nodes.ColumnRef)
        ):
            continue
        for first, second in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                _resolve_leaf(first, left_leaves) is not None
                and _resolve_leaf(second, right_leaves) is not None
            ):
                return first, second
    return None


# -- projection pruning ----------------------------------------------------


def _prune_projections(
    select: nodes.Select,
    leaves: list[_Leaf],
    conditions: list[nodes.Expression],
) -> None:
    """Restrict base-table scans to the columns the statement uses.

    Disabled whenever a ``*`` or a subquery appears anywhere — those
    can reference columns invisibly — or when any leaf's output
    columns are unknown (attribution would be guesswork).
    """
    if any(leaf.columns is None for leaf in leaves):
        return
    scans = [l for l in leaves if isinstance(l.plan, ScanPlan) and l.schema]
    if not scans:
        return

    needed: dict[int, set[str]] = {id(leaf.plan): set() for leaf in scans}
    for expr in _statement_expressions(select, conditions):
        for sub in nodes.walk_expressions(expr):
            if isinstance(sub, (nodes.Star, *_SUBQUERY_NODES)):
                return  # pruning is unsafe; keep every column
            if not isinstance(sub, nodes.ColumnRef):
                continue
            name = sub.name.lower()
            for leaf in scans:
                if sub.table is not None:
                    if leaf.binding.lower() != sub.table.lower():
                        continue
                if name in (leaf.columns or []):
                    needed[id(leaf.plan)].add(name)

    for leaf in scans:
        assert leaf.schema is not None and isinstance(leaf.plan, ScanPlan)
        keep = needed[id(leaf.plan)]
        columns = tuple(
            column.name
            for column in leaf.schema.columns
            if column.name.lower() in keep
        )
        if len(columns) < len(leaf.schema.columns):
            leaf.plan.columns = columns


def _statement_expressions(
    select: nodes.Select, conditions: list[nodes.Expression]
):
    """Every expression that may reference a scan column: select list,
    WHERE (covers pushed leaf filters too), GROUP BY, HAVING, ORDER BY
    and all join ON conditions."""
    for item in select.items:
        yield item.expression
    if select.where is not None:
        yield select.where
    for expr in select.group_by:
        yield expr
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expression
    yield from conditions


def uses_aggregates(select: nodes.Select) -> bool:
    """True when the select list / HAVING / ORDER BY contain aggregate
    calls (mirrors the executor's grouped-pipeline trigger)."""
    exprs = [item.expression for item in select.items]
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(order.expression for order in select.order_by)
    for expr in exprs:
        for sub in nodes.walk_expressions(expr):
            if isinstance(sub, nodes.FunctionCall) and is_aggregate_function(
                sub.name
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------

_STRATEGY_LABEL = {
    "hash": "HashJoin",
    "loop": "NestedLoopJoin",
    "cross": "CrossJoin",
}

RenderSubselect = Callable[[nodes.Select, int], list[str]]


def render_plan(
    plan: SelectPlan,
    depth: int = 0,
    render_subselect: Optional[RenderSubselect] = None,
) -> list[str]:
    """Render a plan as the indented text EXPLAIN returns.

    The scan/join tree comes first, then the pipeline steps in
    execution order (Filter, Aggregate, Having, Distinct, Sort, Limit,
    SetOp) — one line each, at the query's own depth.
    """
    pad = "  " * depth
    select = plan.select
    lines: list[str] = []
    if plan.source is None:
        lines.append(f"{pad}Result (no table)")
    else:
        _render_source(plan.source, lines, depth, render_subselect)
    if plan.residual is not None:
        lines.append(f"{pad}Filter: {plan.residual.to_sql()}")
    if select.group_by or uses_aggregates(select):
        grouped = ", ".join(e.to_sql() for e in select.group_by)
        lines.append(f"{pad}Aggregate{f' by {grouped}' if grouped else ''}")
    if select.having is not None:
        lines.append(f"{pad}Having: {select.having.to_sql()}")
    if select.distinct:
        lines.append(f"{pad}Distinct")
    if select.order_by:
        keys = ", ".join(o.to_sql() for o in select.order_by)
        lines.append(f"{pad}Sort: {keys}")
    if select.limit is not None:
        lines.append(f"{pad}Limit: {select.limit.to_sql()}")
    for op, query in select.compound:
        lines.append(f"{pad}SetOp: {op}")
        if render_subselect is not None:
            lines.extend(render_subselect(query, depth + 1))
    return lines


def _render_source(
    plan: SourcePlan,
    lines: list[str],
    depth: int,
    render_subselect: Optional[RenderSubselect],
) -> None:
    pad = "  " * depth
    if isinstance(plan, ScanPlan):
        lines.append(f"{pad}{_scan_label(plan)}")
        if plan.filter is not None:
            lines.append(f"{pad}  Filter: {plan.filter.to_sql()}")
        if plan.columns is not None:
            lines.append(f"{pad}  Columns: {', '.join(plan.columns)}")
        return
    if isinstance(plan, ViewScanPlan):
        lines.append(f"{pad}ViewScan({_binding_label(plan.name, plan)})")
        if plan.filter is not None:
            lines.append(f"{pad}  Filter: {plan.filter.to_sql()}")
        if render_subselect is not None and plan.query is not None:
            lines.extend(render_subselect(plan.query, depth + 1))
        return
    if isinstance(plan, CteScanPlan):
        lines.append(f"{pad}CteScan({_binding_label(plan.name, plan)})")
        if plan.filter is not None:
            lines.append(f"{pad}  Filter: {plan.filter.to_sql()}")
        return
    if isinstance(plan, SubqueryScanPlan):
        lines.append(f"{pad}Subquery({plan.binding})")
        if plan.filter is not None:
            lines.append(f"{pad}  Filter: {plan.filter.to_sql()}")
        if render_subselect is not None and plan.query is not None:
            lines.extend(render_subselect(plan.query, depth + 1))
        return
    if isinstance(plan, JoinPlan):
        label = _STRATEGY_LABEL.get(plan.strategy, "NestedLoopJoin")
        lines.append(f"{pad}{label}({plan.join_type})")
        if plan.left is not None:
            _render_source(plan.left, lines, depth + 1, render_subselect)
        if plan.right is not None:
            _render_source(plan.right, lines, depth + 1, render_subselect)
        return
    lines.append(f"{pad}{type(plan).__name__}")


def _binding_label(name: str, plan: SourcePlan) -> str:
    if plan.binding and plan.binding.lower() != name.lower():
        return f"{name} AS {plan.binding}"
    return name


def _scan_label(plan: ScanPlan) -> str:
    name = _binding_label(plan.table, plan)
    access = plan.access
    if isinstance(access, IndexEqAccess):
        terms = ", ".join(
            f"{plan.table}.{column} = {value.to_sql()}"
            for column, value in zip(access.index.columns, access.values)
        )
        return f"IndexScan({terms} via {access.index.name})"
    if isinstance(access, IndexRangeAccess):
        parts = []
        if access.low is not None:
            op = ">=" if access.low_inclusive else ">"
            parts.append(
                f"{plan.table}.{access.column} {op} {access.low.to_sql()}"
            )
        if access.high is not None:
            op = "<=" if access.high_inclusive else "<"
            parts.append(
                f"{plan.table}.{access.column} {op} {access.high.to_sql()}"
            )
        terms = " AND ".join(parts)
        return f"IndexRangeScan({terms} via {access.index.name})"
    return f"SeqScan({name})"
