"""Secondary index structures: hash (point) and sorted (point + range).

A secondary index maps values of one or more columns to row *positions*
in the owning :class:`~repro.sqlengine.table.Table`'s heap. Two kinds:

- :class:`HashIndex` — a dict from value tuples to position lists.
  O(1) point lookups; no ordering, so no range support.
- :class:`SortedIndex` — a bisect-maintained sorted list of
  ``(key, position)`` entries. Point lookups are O(log n), and range
  predicates over the *first* indexed column (``>``, ``>=``, ``<``,
  ``<=``, ``BETWEEN``) become binary-searched slices.

Both kinds skip rows whose indexed columns contain NULL: SQL equality
and range comparisons are never true against NULL, so such rows can
never be produced by an index lookup, and the executor re-applies the
full predicate to every candidate row anyway (correctness never rests
on index semantics alone).

Sorted keys are built with :func:`repro.sqlengine.types.sort_key`, the
engine's total order over heterogeneous values, so a column holding a
mix of numbers and text cannot break the bisect invariants.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.types import sort_key

#: Index kinds accepted by ``CREATE INDEX ... USING <kind>``.
INDEX_KINDS = ("hash", "sorted")


@dataclass(frozen=True)
class IndexInfo:
    """Catalog-level metadata for one secondary index."""

    name: str
    table: str
    columns: tuple[str, ...]
    kind: str  # 'hash' | 'sorted'

    def describe(self) -> str:
        cols = ", ".join(self.columns)
        return f"{self.name} ON {self.table} ({cols}) USING {self.kind.upper()}"


class SecondaryIndex:
    """Base class: maps column-value tuples to row positions."""

    kind = "abstract"

    def __init__(self, name: str, positions: tuple[int, ...]) -> None:
        self.name = name
        #: Column positions (within the table schema) this index covers.
        self.column_positions = positions

    def key_of(self, row: Sequence[Any]) -> Optional[tuple[Any, ...]]:
        """The index key for ``row``, or None when any part is NULL."""
        key = tuple(row[p] for p in self.column_positions)
        if any(part is None for part in key):
            return None
        return key

    def add(self, position: int, row: Sequence[Any]) -> None:
        raise NotImplementedError

    def rebuild(self, rows: Sequence[Sequence[Any]]) -> None:
        raise NotImplementedError

    def lookup(self, values: Sequence[Any]) -> list[int]:
        """Positions of rows whose indexed columns equal ``values``."""
        raise NotImplementedError

    def clone(self) -> "SecondaryIndex":
        raise NotImplementedError


class HashIndex(SecondaryIndex):
    """Equality index: value tuple -> row positions, via one dict."""

    kind = "hash"

    def __init__(self, name: str, positions: tuple[int, ...]) -> None:
        super().__init__(name, positions)
        self._buckets: dict[tuple[Any, ...], list[int]] = {}

    def add(self, position: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        if key is not None:
            self._buckets.setdefault(key, []).append(position)

    def rebuild(self, rows: Sequence[Sequence[Any]]) -> None:
        self._buckets = {}
        for position, row in enumerate(rows):
            self.add(position, row)

    def lookup(self, values: Sequence[Any]) -> list[int]:
        key = tuple(values)
        if any(part is None for part in key):
            return []
        try:
            return list(self._buckets.get(key, ()))
        except TypeError:  # unhashable probe value
            return []

    def clone(self) -> "HashIndex":
        twin = HashIndex(self.name, self.column_positions)
        twin._buckets = {k: list(v) for k, v in self._buckets.items()}
        return twin

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())


class SortedIndex(SecondaryIndex):
    """Ordered index: bisect over ``sort_key``-encoded value tuples.

    Supports point lookups on the full key and range scans over the
    first indexed column.
    """

    kind = "sorted"

    def __init__(self, name: str, positions: tuple[int, ...]) -> None:
        super().__init__(name, positions)
        #: Sorted parallel arrays: encoded key tuple / heap position.
        self._keys: list[tuple] = []
        self._positions: list[int] = []

    @staticmethod
    def _encode(values: Sequence[Any]) -> tuple:
        return tuple(sort_key(v) for v in values)

    def add(self, position: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        if key is None:
            return
        encoded = self._encode(key)
        at = bisect.bisect_right(self._keys, encoded)
        self._keys.insert(at, encoded)
        self._positions.insert(at, position)

    def rebuild(self, rows: Sequence[Sequence[Any]]) -> None:
        entries = []
        for position, row in enumerate(rows):
            key = self.key_of(row)
            if key is not None:
                entries.append((self._encode(key), position))
        entries.sort()
        self._keys = [key for key, _pos in entries]
        self._positions = [pos for _key, pos in entries]

    def lookup(self, values: Sequence[Any]) -> list[int]:
        if any(part is None for part in values):
            return []
        encoded = self._encode(values)
        lo = bisect.bisect_left(self._keys, encoded)
        hi = bisect.bisect_right(self._keys, encoded)
        return self._positions[lo:hi]

    def range_lookup(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Positions where the first indexed column lies in the range.

        ``None`` bounds are open. NULL rows are never in the index, so
        they are never produced (matching SQL comparison semantics).
        """
        first = [key[0] for key in self._keys]
        lo = 0
        hi = len(self._keys)
        if low is not None:
            bound = sort_key(low)
            lo = (
                bisect.bisect_left(first, bound)
                if low_inclusive
                else bisect.bisect_right(first, bound)
            )
        if high is not None:
            bound = sort_key(high)
            hi = (
                bisect.bisect_right(first, bound)
                if high_inclusive
                else bisect.bisect_left(first, bound)
            )
        return self._positions[lo:hi]

    def clone(self) -> "SortedIndex":
        twin = SortedIndex(self.name, self.column_positions)
        twin._keys = list(self._keys)
        twin._positions = list(self._positions)
        return twin

    def __len__(self) -> int:
        return len(self._keys)


def make_index(
    kind: str, name: str, positions: tuple[int, ...]
) -> SecondaryIndex:
    """Construct an index of ``kind`` ('hash' or 'sorted')."""
    lowered = kind.lower()
    if lowered == "hash":
        return HashIndex(name, positions)
    if lowered == "sorted":
        return SortedIndex(name, positions)
    raise ExecutionError(
        f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}"
    )
