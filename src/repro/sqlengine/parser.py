"""Recursive-descent SQL parser producing :mod:`repro.sqlengine.nodes`.

Grammar (informal)::

    statement     := select | insert | update | delete | create | drop
                   | explain | transaction
    select        := [WITH cte {, cte}]
                     SELECT [DISTINCT] items [FROM source] [WHERE expr]
                     [GROUP BY exprs] [HAVING expr] [ORDER BY orders]
                     [LIMIT expr [OFFSET expr]]
                     { (UNION [ALL] | INTERSECT | EXCEPT) select }
    cte           := name [( columns )] AS ( select )
    create_index  := CREATE INDEX name ON table ( columns )
                     [USING (HASH | SORTED)]
    explain       := EXPLAIN select
    source        := table_ref { join }
    expression    := or-precedence climbing down to primary

Precedence, loosest first: OR, AND, NOT, comparison/IN/LIKE/BETWEEN/IS,
additive (+, -, ||), multiplicative (*, /, %), unary sign, primary.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlengine import nodes
from repro.sqlengine.errors import SqlSyntaxError
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import Token, TokenType

_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}


def parse_sql(sql: str) -> nodes.Statement:
    """Parse a single SQL statement (optionally ``;``-terminated)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


def parse_expression(sql: str) -> nodes.Expression:
    """Parse a standalone SQL expression (used by tests and the NLU)."""
    parser = _Parser(tokenize(sql))
    expression = parser.parse_expr()
    parser.expect_end()
    return expression


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers ------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        return self._current.is_keyword(*names)

    def _accept_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> None:
        if not self._accept_keyword(name):
            raise self._error(f"expected {name}")

    def _check_word(self, *words: str) -> bool:
        """Contextual keyword check: matches an IDENTIFIER token whose
        text equals one of ``words`` (case-insensitively). Words like
        USING or SORTED are not reserved, so they lex as identifiers
        and stay usable as table/column names."""
        token = self._current
        return (
            token.type is TokenType.IDENTIFIER
            and token.value.upper() in words
        )

    def _accept_word(self, *words: str) -> bool:
        if self._check_word(*words):
            self._advance()
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == char:
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            raise self._error(f"expected {char!r}")

    def _accept_operator(self, *ops: str) -> Optional[str]:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in ops:
            self._advance()
            return token.value
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Allow non-reserved-looking keywords as identifiers in a pinch
        # (e.g. a column named "key" arrives as KEYWORD KEY).
        if token.type is TokenType.KEYWORD and token.value in (
            "KEY", "INDEX", "VIEW", "COLUMN",
        ):
            self._advance()
            return token.value.lower()
        raise self._error(f"expected {what}")

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._current
        shown = "end of input" if token.type is TokenType.EOF else repr(token.value)
        return SqlSyntaxError(
            f"{message}, found {shown} at position {token.position}",
            position=token.position,
        )

    def expect_end(self) -> None:
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- statements ---------------------------------------------------

    def _at_query_start(self) -> bool:
        """True at the start of a query: SELECT or a WITH clause."""
        return self._check_keyword("SELECT", "WITH")

    def parse_statement(self) -> nodes.Statement:
        if self._at_query_start():
            return self.parse_select()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("UPDATE"):
            return self._parse_update()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        if self._check_keyword("CREATE"):
            return self._parse_create()
        if self._check_keyword("DROP"):
            return self._parse_drop()
        if self._accept_keyword("BEGIN"):
            self._accept_keyword("TRANSACTION")
            return nodes.TransactionStatement("BEGIN")
        if self._accept_keyword("COMMIT"):
            self._accept_keyword("TRANSACTION")
            return nodes.TransactionStatement("COMMIT")
        if self._accept_keyword("ROLLBACK"):
            self._accept_keyword("TRANSACTION")
            return nodes.TransactionStatement("ROLLBACK")
        if self._accept_keyword("EXPLAIN"):
            if not self._at_query_start():
                raise self._error("EXPLAIN supports SELECT (and WITH) only")
            return nodes.Explain(self.parse_select())
        raise self._error("expected a SQL statement")

    def parse_select(self) -> nodes.Select:
        ctes = self._parse_with_clause()
        select = self._parse_select_core(allow_tail=False)
        compound: list[tuple[str, nodes.Select]] = []
        while True:
            if self._accept_keyword("UNION"):
                op = "UNION ALL" if self._accept_keyword("ALL") else "UNION"
            elif self._accept_keyword("INTERSECT"):
                op = "INTERSECT"
            elif self._accept_keyword("EXCEPT"):
                op = "EXCEPT"
            else:
                break
            compound.append((op, self._parse_select_core(allow_tail=False)))
        # ORDER BY / LIMIT bind to the whole compound (standard SQL).
        order_by, limit, offset = self._parse_select_tail()
        return nodes.Select(
            items=select.items,
            source=select.source,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=select.distinct,
            compound=tuple(compound),
            ctes=ctes,
        )

    def _parse_with_clause(self) -> tuple[nodes.CommonTableExpr, ...]:
        if not self._accept_keyword("WITH"):
            return ()
        if self._check_word("RECURSIVE"):
            raise self._error("WITH RECURSIVE is not supported")
        ctes = [self._parse_cte()]
        while self._accept_punct(","):
            ctes.append(self._parse_cte())
        return tuple(ctes)

    def _parse_cte(self) -> nodes.CommonTableExpr:
        name = self._expect_identifier("CTE name")
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier("column name"))
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        self._expect_keyword("AS")
        self._expect_punct("(")
        query = self.parse_select()
        self._expect_punct(")")
        return nodes.CommonTableExpr(name, query, tuple(columns))

    def _parse_select_tail(
        self,
    ) -> tuple[tuple[nodes.OrderItem, ...], Optional[nodes.Expression], Optional[nodes.Expression]]:
        order_by: list[nodes.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit = self.parse_expr() if self._accept_keyword("LIMIT") else None
        offset = None
        if limit is not None and self._accept_keyword("OFFSET"):
            offset = self.parse_expr()
        return tuple(order_by), limit, offset

    def _parse_select_core(self, allow_tail: bool = True) -> nodes.Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        elif self._accept_keyword("ALL"):
            pass
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        source = None
        if self._accept_keyword("FROM"):
            source = self._parse_source()
        where = self.parse_expr() if self._accept_keyword("WHERE") else None
        group_by: list[nodes.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self._accept_punct(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self._accept_keyword("HAVING") else None
        if allow_tail:
            order_by, limit, offset = self._parse_select_tail()
        else:
            order_by, limit, offset = (), None, None
        return nodes.Select(
            items=tuple(items),
            source=source,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> nodes.SelectItem:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return nodes.SelectItem(nodes.Star())
        # table.* form
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek_is_punct(1, ".")
            and self._peek_is_star(2)
        ):
            self._advance()  # identifier
            self._advance()  # '.'
            self._advance()  # '*'
            return nodes.SelectItem(nodes.Star(table=token.value))
        expression = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return nodes.SelectItem(expression, alias)

    def _peek_is_punct(self, ahead: int, char: str) -> bool:
        idx = self._pos + ahead
        if idx >= len(self._tokens):
            return False
        token = self._tokens[idx]
        return token.type is TokenType.PUNCTUATION and token.value == char

    def _peek_is_star(self, ahead: int) -> bool:
        idx = self._pos + ahead
        if idx >= len(self._tokens):
            return False
        token = self._tokens[idx]
        return token.type is TokenType.OPERATOR and token.value == "*"

    def _parse_order_item(self) -> nodes.OrderItem:
        expression = self.parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return nodes.OrderItem(expression, descending)

    def _parse_source(self) -> nodes.TableRef:
        left = self._parse_table_ref()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                if self._accept_punct(","):
                    right = self._parse_table_ref()
                    left = nodes.Join(left, right, "CROSS")
                    continue
                return left
            right = self._parse_table_ref()
            condition = None
            if join_type != "CROSS":
                self._expect_keyword("ON")
                condition = self.parse_expr()
            left = nodes.Join(left, right, join_type, condition)

    def _parse_join_type(self) -> Optional[str]:
        if self._accept_keyword("JOIN"):
            return "INNER"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "INNER"
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "CROSS"
        for name in ("LEFT", "RIGHT", "FULL"):
            if self._accept_keyword(name):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                return name
        return None

    def _parse_table_ref(self) -> nodes.TableRef:
        if self._accept_punct("("):
            subquery = self.parse_select()  # derived table: (SELECT/WITH ...)
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_identifier("subquery alias")
            return nodes.SubqueryTable(subquery, alias)
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return nodes.NamedTable(name, alias)

    # -- DML / DDL ----------------------------------------------------

    def _parse_insert(self) -> nodes.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier("column name"))
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        if self._at_query_start():
            query = self.parse_select()
            return nodes.Insert(table, tuple(columns), query=query)
        self._expect_keyword("VALUES")
        rows: list[tuple[nodes.Expression, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self.parse_expr()]
            while self._accept_punct(","):
                values.append(self.parse_expr())
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return nodes.Insert(table, tuple(columns), rows=tuple(rows))

    def _parse_update(self) -> nodes.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments: list[tuple[str, nodes.Expression]] = []
        while True:
            column = self._expect_identifier("column name")
            if self._accept_operator("=") is None:
                raise self._error("expected '=' in SET clause")
            assignments.append((column, self.parse_expr()))
            if not self._accept_punct(","):
                break
        where = self.parse_expr() if self._accept_keyword("WHERE") else None
        return nodes.Update(table, tuple(assignments), where)

    def _parse_delete(self) -> nodes.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = self.parse_expr() if self._accept_keyword("WHERE") else None
        return nodes.Delete(table, where)

    def _parse_create(self) -> nodes.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("VIEW"):
            name = self._expect_identifier("view name")
            self._expect_keyword("AS")
            return nodes.CreateView(name, self.parse_select())
        if self._accept_keyword("INDEX"):
            name = self._expect_identifier("index name")
            self._expect_keyword("ON")
            table = self._expect_identifier("table name")
            self._expect_punct("(")
            columns = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
            kind = "hash"
            if self._accept_word("USING"):
                if self._accept_word("HASH"):
                    kind = "hash"
                elif self._accept_word("SORTED"):
                    kind = "sorted"
                else:
                    raise self._error("expected HASH or SORTED after USING")
            return nodes.CreateIndex(name, table, tuple(columns), kind)
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns = [self._parse_column_def()]
        while self._accept_punct(","):
            columns.append(self._parse_column_def())
        self._expect_punct(")")
        return nodes.CreateTable(name, tuple(columns), if_not_exists)

    def _parse_column_def(self) -> nodes.ColumnDef:
        name = self._expect_identifier("column name")
        type_name = self._parse_type_name()
        not_null = False
        primary_key = False
        unique = False
        default: Optional[nodes.Expression] = None
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
                continue
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
                continue
            if self._accept_keyword("UNIQUE"):
                unique = True
                continue
            if self._accept_keyword("DEFAULT"):
                default = self._parse_primary()
                continue
            break
        return nodes.ColumnDef(
            name, type_name, not_null, primary_key, unique, default
        )

    def _parse_type_name(self) -> str:
        token = self._current
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._advance()
            type_name = str(token.value).upper()
        else:
            raise self._error("expected a type name")
        # VARCHAR(30) etc. — size is accepted and ignored.
        if self._accept_punct("("):
            while not self._accept_punct(")"):
                self._advance()
        return type_name

    def _parse_drop(self) -> nodes.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("INDEX"):
            return nodes.DropIndex(self._expect_identifier("index name"))
        if self._accept_keyword("VIEW"):
            if_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("EXISTS")
                if_exists = True
            return nodes.DropView(
                self._expect_identifier("view name"), if_exists
            )
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier("table name")
        return nodes.DropTable(name, if_exists)

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> nodes.Expression:
        return self._parse_or()

    def _parse_or(self) -> nodes.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = nodes.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> nodes.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = nodes.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> nodes.Expression:
        if self._accept_keyword("NOT"):
            return nodes.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> nodes.Expression:
        left = self._parse_additive()
        while True:
            op = self._accept_operator(*_COMPARISON_OPS)
            if op is not None:
                normalized = "<>" if op == "!=" else op
                left = nodes.BinaryOp(normalized, left, self._parse_additive())
                continue
            negated = False
            save = self._pos
            if self._accept_keyword("NOT"):
                negated = True
            if self._accept_keyword("IS"):
                is_not = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                left = nodes.IsNull(left, negated=is_not or negated)
                continue
            if self._accept_keyword("LIKE"):
                left = nodes.Like(left, self._parse_additive(), negated)
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = nodes.Between(left, low, high, negated)
                continue
            if self._accept_keyword("IN"):
                left = self._parse_in_tail(left, negated)
                continue
            if negated:
                self._pos = save
            break
        return left

    def _parse_in_tail(
        self, operand: nodes.Expression, negated: bool
    ) -> nodes.Expression:
        self._expect_punct("(")
        if self._at_query_start():
            subquery = self.parse_select()
            self._expect_punct(")")
            return nodes.InSubquery(operand, subquery, negated)
        items = [self.parse_expr()]
        while self._accept_punct(","):
            items.append(self.parse_expr())
        self._expect_punct(")")
        return nodes.InList(operand, tuple(items), negated)

    def _parse_additive(self) -> nodes.Expression:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            left = nodes.BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> nodes.Expression:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = nodes.BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> nodes.Expression:
        op = self._accept_operator("-", "+")
        if op is not None:
            return nodes.UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> nodes.Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return nodes.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return nodes.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            index = self._param_count
            self._param_count += 1
            return nodes.Parameter(index)
        if token.is_keyword("NULL"):
            self._advance()
            return nodes.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return nodes.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return nodes.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self.parse_select()
            self._expect_punct(")")
            return nodes.Exists(subquery)
        if self._accept_punct("("):
            if self._at_query_start():
                subquery = self.parse_select()
                self._expect_punct(")")
                return nodes.ScalarSubquery(subquery)
            expression = self.parse_expr()
            self._expect_punct(")")
            return expression
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise self._error("expected an expression")

    def _parse_identifier_expr(self) -> nodes.Expression:
        name = self._advance().value
        if self._accept_punct("("):
            return self._parse_function_tail(name)
        if self._accept_punct("."):
            # table.column or table.*
            if self._peek_is_star(0):
                self._advance()
                return nodes.Star(table=name)
            column = self._expect_identifier("column name")
            return nodes.ColumnRef(column, table=name)
        return nodes.ColumnRef(name)

    def _parse_function_tail(self, name: str) -> nodes.Expression:
        upper = name.upper()
        if self._accept_punct(")"):
            return nodes.FunctionCall(upper, ())
        distinct = self._accept_keyword("DISTINCT")
        if self._peek_is_star(0):
            self._advance()
            self._expect_punct(")")
            return nodes.FunctionCall(upper, (nodes.Star(),), distinct)
        args = [self.parse_expr()]
        while self._accept_punct(","):
            args.append(self.parse_expr())
        self._expect_punct(")")
        return nodes.FunctionCall(upper, tuple(args), distinct)

    def _parse_case(self) -> nodes.Expression:
        self._expect_keyword("CASE")
        branches: list[tuple[nodes.Expression, nodes.Expression]] = []
        operand: Optional[nodes.Expression] = None
        if not self._check_keyword("WHEN"):
            operand = self.parse_expr()
        while self._accept_keyword("WHEN"):
            condition = self.parse_expr()
            if operand is not None:
                condition = nodes.BinaryOp("=", operand, condition)
            self._expect_keyword("THEN")
            branches.append((condition, self.parse_expr()))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        default = self.parse_expr() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return nodes.Case(tuple(branches), default)

    def _parse_cast(self) -> nodes.Expression:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self.parse_expr()
        self._expect_keyword("AS")
        type_name = self._parse_type_name()
        self._expect_punct(")")
        return nodes.Cast(operand, type_name)
