"""Expression evaluation over row contexts.

A :class:`RowContext` binds ``(table_binding, column_name)`` pairs to the
values of the current row; contexts chain to their outer query's context
so correlated subqueries resolve free column references.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional, Sequence

from repro.sqlengine import nodes
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.functions import (
    call_scalar,
    is_aggregate_function,
    is_scalar_function,
)
from repro.sqlengine.types import DataType, coerce


class RowContext:
    """Column bindings for one row, chained to an optional outer context."""

    def __init__(
        self,
        columns: Sequence[tuple[Optional[str], str]],
        values: Sequence[Any],
        outer: Optional["RowContext"] = None,
    ) -> None:
        self.columns = list(columns)
        self.values = list(values)
        self.outer = outer
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for index, (binding, name) in enumerate(self.columns):
            lowered = name.lower()
            if binding is not None:
                self._by_qualified[(binding.lower(), lowered)] = index
            self._by_name.setdefault(lowered, []).append(index)

    def with_values(self, values: Sequence[Any]) -> "RowContext":
        """Cheap clone sharing the column layout (hot loop path)."""
        clone = RowContext.__new__(RowContext)
        clone.columns = self.columns
        clone.values = list(values)
        clone.outer = self.outer
        clone._by_qualified = self._by_qualified
        clone._by_name = self._by_name
        return clone

    def lookup(self, name: str, table: Optional[str] = None) -> Any:
        index = self.find(name, table)
        if index is not None:
            return self.values[index]
        if self.outer is not None:
            return self.outer.lookup(name, table)
        qualified = f"{table}.{name}" if table else name
        raise ExecutionError(f"unknown column: {qualified}")

    def find(self, name: str, table: Optional[str] = None) -> Optional[int]:
        lowered = name.lower()
        if table is not None:
            return self._by_qualified.get((table.lower(), lowered))
        positions = self._by_name.get(lowered)
        if not positions:
            return None
        if len(positions) > 1:
            raise ExecutionError(f"ambiguous column reference: {name}")
        return positions[0]

    def has(self, name: str, table: Optional[str] = None) -> bool:
        try:
            found_here = self.find(name, table) is not None
        except ExecutionError:
            return True  # ambiguous means "present"
        if found_here:
            return True
        return self.outer.has(name, table) if self.outer else False


SubqueryRunner = Callable[[nodes.Select, Optional[RowContext]], "object"]


class Evaluator:
    """Evaluate expression nodes against a row context.

    ``run_subquery`` is injected by the executor so that subqueries can
    be evaluated (with the current context as the outer scope).
    """

    def __init__(
        self,
        run_subquery: Optional[SubqueryRunner] = None,
        parameters: Sequence[Any] = (),
    ) -> None:
        self._run_subquery = run_subquery
        self._parameters = list(parameters)

    def evaluate(self, expr: nodes.Expression, ctx: RowContext) -> Any:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise ExecutionError(
                f"cannot evaluate expression: {expr!r}"
            )
        return method(self, expr, ctx)

    def evaluate_truth(self, expr: nodes.Expression, ctx: RowContext) -> bool:
        """Three-valued SQL truth: NULL counts as not-true."""
        value = self.evaluate(expr, ctx)
        return bool(value) if value is not None else False

    # -- node handlers --------------------------------------------------

    def _literal(self, expr: nodes.Literal, ctx: RowContext) -> Any:
        return expr.value

    def _parameter(self, expr: nodes.Parameter, ctx: RowContext) -> Any:
        if expr.index >= len(self._parameters):
            raise ExecutionError(
                f"missing bind parameter at index {expr.index}"
            )
        return self._parameters[expr.index]

    def _column(self, expr: nodes.ColumnRef, ctx: RowContext) -> Any:
        return ctx.lookup(expr.name, expr.table)

    def _unary(self, expr: nodes.UnaryOp, ctx: RowContext) -> Any:
        if expr.op == "NOT":
            value = self.evaluate(expr.operand, ctx)
            if value is None:
                return None
            return not bool(value)
        value = self.evaluate(expr.operand, ctx)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"unary {expr.op} over {value!r}")
        return -value if expr.op == "-" else value

    def _binary(self, expr: nodes.BinaryOp, ctx: RowContext) -> Any:
        op = expr.op
        if op == "AND":
            left = self.evaluate(expr.left, ctx)
            if left is not None and not left:
                return False
            right = self.evaluate(expr.right, ctx)
            if right is not None and not right:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(expr.left, ctx)
            if left is not None and left:
                return True
            right = self.evaluate(expr.right, ctx)
            if right is not None and right:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(expr.left, ctx)
        right = self.evaluate(expr.right, ctx)
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if left is None or right is None:
            return None
        if op in ("=", "<>", "<", ">", "<=", ">="):
            return self._compare(op, left, right)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise ExecutionError("division by zero")
                result = left / right
                if (
                    isinstance(left, int)
                    and isinstance(right, int)
                    and result == int(result)
                ):
                    return int(result)
                return result
            if op == "%":
                if right == 0:
                    raise ExecutionError("modulo by zero")
                return left % right
        except TypeError:
            raise ExecutionError(
                f"type error: {left!r} {op} {right!r}"
            ) from None
        raise ExecutionError(f"unknown operator: {op}")

    @staticmethod
    def _compare(op: str, left: Any, right: Any) -> bool:
        import datetime as _dt

        # Allow DATE-vs-ISO-string comparisons, common in generated SQL.
        if isinstance(left, _dt.date) and isinstance(right, str):
            right = coerce(right, DataType.DATE)
        elif isinstance(right, _dt.date) and isinstance(left, str):
            left = coerce(left, DataType.DATE)
        numeric = (int, float)
        mixed_types = isinstance(left, numeric) != isinstance(right, numeric)
        if mixed_types and op in ("=", "<>"):
            # SQL engines vary here; equality across type groups is false.
            return op == "<>"
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == ">":
                return left > right
            if op == "<=":
                return left <= right
            return left >= right
        except TypeError:
            raise ExecutionError(
                f"cannot compare {left!r} with {right!r}"
            ) from None

    def _is_null(self, expr: nodes.IsNull, ctx: RowContext) -> bool:
        value = self.evaluate(expr.operand, ctx)
        return (value is not None) if expr.negated else (value is None)

    def _like(self, expr: nodes.Like, ctx: RowContext) -> Any:
        value = self.evaluate(expr.operand, ctx)
        pattern = self.evaluate(expr.pattern, ctx)
        if value is None or pattern is None:
            return None
        matched = _like_match(str(value), str(pattern))
        return (not matched) if expr.negated else matched

    def _between(self, expr: nodes.Between, ctx: RowContext) -> Any:
        value = self.evaluate(expr.operand, ctx)
        low = self.evaluate(expr.low, ctx)
        high = self.evaluate(expr.high, ctx)
        if value is None or low is None or high is None:
            return None
        inside = self._compare("<=", low, value) and self._compare(
            "<=", value, high
        )
        return (not inside) if expr.negated else inside

    def _in_list(self, expr: nodes.InList, ctx: RowContext) -> Any:
        value = self.evaluate(expr.operand, ctx)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, ctx)
            if candidate is None:
                saw_null = True
                continue
            if self._compare("=", value, candidate):
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _in_subquery(self, expr: nodes.InSubquery, ctx: RowContext) -> Any:
        value = self.evaluate(expr.operand, ctx)
        if value is None:
            return None
        result = self._subquery(expr.subquery, ctx)
        saw_null = False
        for row in result.rows:
            candidate = row[0]
            if candidate is None:
                saw_null = True
                continue
            if self._compare("=", value, candidate):
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _exists(self, expr: nodes.Exists, ctx: RowContext) -> bool:
        result = self._subquery(expr.subquery, ctx)
        found = len(result.rows) > 0
        return (not found) if expr.negated else found

    def _scalar_subquery(
        self, expr: nodes.ScalarSubquery, ctx: RowContext
    ) -> Any:
        result = self._subquery(expr.subquery, ctx)
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise ExecutionError("scalar subquery returned multiple rows")
        return result.rows[0][0]

    def _subquery(self, select: nodes.Select, ctx: RowContext):
        if self._run_subquery is None:
            raise ExecutionError("subqueries are not available here")
        result = self._run_subquery(select, ctx)
        return result

    def _function(self, expr: nodes.FunctionCall, ctx: RowContext) -> Any:
        if is_aggregate_function(expr.name):
            raise ExecutionError(
                f"aggregate {expr.name} used outside GROUP BY context"
            )
        if not is_scalar_function(expr.name):
            raise ExecutionError(f"unknown function: {expr.name}")
        args = [self.evaluate(arg, ctx) for arg in expr.args]
        return call_scalar(expr.name, args)

    def _case(self, expr: nodes.Case, ctx: RowContext) -> Any:
        for condition, result in expr.branches:
            if self.evaluate_truth(condition, ctx):
                return self.evaluate(result, ctx)
        if expr.default is not None:
            return self.evaluate(expr.default, ctx)
        return None

    def _cast(self, expr: nodes.Cast, ctx: RowContext) -> Any:
        value = self.evaluate(expr.operand, ctx)
        data_type = DataType.from_name(expr.type_name)
        return coerce(value, data_type)

    def _star(self, expr: nodes.Star, ctx: RowContext) -> Any:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    _DISPATCH: dict[type, Callable] = {}


Evaluator._DISPATCH = {
    nodes.Literal: Evaluator._literal,
    nodes.Parameter: Evaluator._parameter,
    nodes.ColumnRef: Evaluator._column,
    nodes.UnaryOp: Evaluator._unary,
    nodes.BinaryOp: Evaluator._binary,
    nodes.IsNull: Evaluator._is_null,
    nodes.Like: Evaluator._like,
    nodes.Between: Evaluator._between,
    nodes.InList: Evaluator._in_list,
    nodes.InSubquery: Evaluator._in_subquery,
    nodes.Exists: Evaluator._exists,
    nodes.ScalarSubquery: Evaluator._scalar_subquery,
    nodes.FunctionCall: Evaluator._function,
    nodes.Case: Evaluator._case,
    nodes.Cast: Evaluator._cast,
    nodes.Star: Evaluator._star,
}


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with % and _ wildcards, case-insensitive."""
    regex_parts = []
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    regex = "".join(regex_parts)
    return re.fullmatch(regex, value, flags=re.IGNORECASE | re.DOTALL) is not None
