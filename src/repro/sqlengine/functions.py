"""Scalar and aggregate SQL functions.

Scalar functions are plain callables over Python values (NULL-safe: most
return NULL when any argument is NULL, matching SQL semantics).
Aggregates follow an accumulator protocol so the executor can stream
rows through them group by group.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Callable, Optional

from repro.sqlengine.errors import ExecutionError


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


def _sql_round(value: float, digits: int = 0) -> float:
    result = round(float(value), int(digits))
    return result if digits else float(int(result))


def _sql_substr(text: str, start: int, length: Optional[int] = None) -> str:
    # SQL SUBSTR is 1-based.
    begin = int(start) - 1
    if begin < 0:
        begin = 0
    if length is None:
        return str(text)[begin:]
    return str(text)[begin : begin + int(length)]


def _extract_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        from repro.sqlengine.types import parse_date

        return parse_date(value)
    raise ExecutionError(f"expected a date value, got {value!r}")


def _strftime(fmt: str, value: Any) -> str:
    return _extract_date(value).strftime(str(fmt))


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "ABS": _null_safe(lambda x: abs(x)),
    "ROUND": _null_safe(_sql_round),
    "FLOOR": _null_safe(lambda x: math.floor(x)),
    "CEIL": _null_safe(lambda x: math.ceil(x)),
    "CEILING": _null_safe(lambda x: math.ceil(x)),
    "SQRT": _null_safe(lambda x: math.sqrt(x)),
    "POWER": _null_safe(lambda x, y: x ** y),
    "MOD": _null_safe(lambda x, y: x % y),
    "SIGN": _null_safe(lambda x: (x > 0) - (x < 0)),
    "LENGTH": _null_safe(lambda s: len(str(s))),
    "LOWER": _null_safe(lambda s: str(s).lower()),
    "UPPER": _null_safe(lambda s: str(s).upper()),
    "TRIM": _null_safe(lambda s: str(s).strip()),
    "LTRIM": _null_safe(lambda s: str(s).lstrip()),
    "RTRIM": _null_safe(lambda s: str(s).rstrip()),
    "SUBSTR": _null_safe(_sql_substr),
    "SUBSTRING": _null_safe(_sql_substr),
    "REPLACE": _null_safe(lambda s, a, b: str(s).replace(str(a), str(b))),
    "CONCAT": lambda *args: "".join(
        "" if a is None else str(a) for a in args
    ),
    "INSTR": _null_safe(lambda s, sub: str(s).find(str(sub)) + 1),
    "YEAR": _null_safe(lambda v: _extract_date(v).year),
    "MONTH": _null_safe(lambda v: _extract_date(v).month),
    "DAY": _null_safe(lambda v: _extract_date(v).day),
    "STRFTIME": _null_safe(_strftime),
    "DATE": _null_safe(_extract_date),
    "COALESCE": lambda *args: next(
        (a for a in args if a is not None), None
    ),
    "NULLIF": lambda a, b: None if a == b else a,
    "IFNULL": lambda a, b: b if a is None else a,
    "MIN2": _null_safe(min),
    "MAX2": _null_safe(max),
}


def is_scalar_function(name: str) -> bool:
    return name.upper() in SCALAR_FUNCTIONS


def call_scalar(name: str, args: list[Any]) -> Any:
    fn = SCALAR_FUNCTIONS.get(name.upper())
    if fn is None:
        raise ExecutionError(f"unknown function: {name}")
    try:
        return fn(*args)
    except ExecutionError:
        raise
    except ZeroDivisionError:
        raise ExecutionError(f"{name}: division by zero") from None
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"{name}: {exc}") from exc


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """Accumulator protocol: ``add`` per row, ``result`` at group end."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _Count(Aggregate):
    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class _CountStar(Aggregate):
    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        self._count += 1

    def result(self) -> int:
        return self._count


class _Sum(Aggregate):
    def __init__(self) -> None:
        self._total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM over non-numeric value {value!r}")
        self._total = value if self._total is None else self._total + value

    def result(self) -> Any:
        return self._total


class _Avg(Aggregate):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"AVG over non-numeric value {value!r}")
        self._total += value
        self._count += 1

    def result(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._total / self._count


class _Min(Aggregate):
    def __init__(self) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


class _Max(Aggregate):
    def __init__(self) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


class _GroupConcat(Aggregate):
    def __init__(self, separator: str = ",") -> None:
        self._parts: list[str] = []
        self._separator = separator

    def add(self, value: Any) -> None:
        if value is not None:
            self._parts.append(str(value))

    def result(self) -> Optional[str]:
        if not self._parts:
            return None
        return self._separator.join(self._parts)


class _Distinct(Aggregate):
    """Wrap another aggregate, feeding it each distinct value once."""

    def __init__(self, inner: Aggregate) -> None:
        self._inner = inner
        self._seen: set = set()

    def add(self, value: Any) -> None:
        key = (type(value).__name__, value)
        try:
            if key in self._seen:
                return
            self._seen.add(key)
        except TypeError:
            raise ExecutionError(
                f"DISTINCT over unhashable value {value!r}"
            ) from None
        self._inner.add(value)

    def result(self) -> Any:
        return self._inner.result()


_AGGREGATE_FACTORIES: dict[str, Callable[[], Aggregate]] = {
    "COUNT": _Count,
    "SUM": _Sum,
    "AVG": _Avg,
    "MIN": _Min,
    "MAX": _Max,
    "GROUP_CONCAT": _GroupConcat,
}

AGGREGATE_NAMES = frozenset(_AGGREGATE_FACTORIES)


def is_aggregate_function(name: str) -> bool:
    return name.upper() in _AGGREGATE_FACTORIES


def make_aggregate(name: str, star: bool, distinct: bool) -> Aggregate:
    upper = name.upper()
    if upper == "COUNT" and star:
        return _CountStar()
    factory = _AGGREGATE_FACTORIES.get(upper)
    if factory is None:
        raise ExecutionError(f"unknown aggregate: {name}")
    aggregate = factory()
    if distinct:
        aggregate = _Distinct(aggregate)
    return aggregate
