"""Public database facade: the object applications hold on to.

Statement execution is guarded by a readers-writer lock: any number of
SELECT/EXPLAIN statements run concurrently, while DML/DDL waits for
exclusive access. The lock is write-preferring, so a steady stream of
readers cannot starve a writer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.cache.keys import instance_token, sql_key
from repro.cache.manager import get_cache_manager
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.executor import Executor, Relation
from repro.sqlengine.locking import ReadWriteLock
from repro.sqlengine.nodes import Statement
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.table import Table
from repro.sqlengine.types import DataType, infer_type


@dataclass
class ResultSet:
    """Columns and rows produced by :meth:`Database.execute`.

    ``rowcount`` is meaningful for DML (-1 for queries).
    """

    columns: list[str]
    rows: list[tuple[Any, ...]]
    rowcount: int = -1

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> Any:
        """First column of the first row, or None when empty."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.lower() == lowered:
                return [row[index] for row in self.rows]
        raise KeyError(name)

    def format_table(self, max_rows: int = 20) -> str:
        """Plain-text grid rendering (used by chat transcripts)."""
        shown = self.rows[:max_rows]
        cells = [[str(c) for c in self.columns]]
        for row in shown:
            cells.append(
                ["NULL" if v is None else str(v) for v in row]
            )
        widths = [
            max(len(line[i]) for line in cells)
            for i in range(len(self.columns))
        ] if self.columns else []
        lines = []
        for line_index, line in enumerate(cells):
            rendered = " | ".join(
                value.ljust(widths[i]) for i, value in enumerate(line)
            )
            lines.append(rendered)
            if line_index == 0:
                lines.append("-+-".join("-" * w for w in widths))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


class Database:
    """An in-memory SQL database.

    >>> db = Database("demo")
    >>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'ada')")
    >>> db.execute("SELECT name FROM t").scalar()
    'ada'
    """

    def __init__(
        self,
        name: str = "main",
        enable_hash_join: bool = True,
        optimize: bool = True,
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self.enable_hash_join = enable_hash_join
        #: Planner rules on/off. ``optimize=False`` runs every SELECT
        #: naively (full scans, no pushdown) — the reference the
        #: planner equivalence tests compare against.
        self.optimize = optimize
        self._views: dict[str, Any] = {}
        #: Transaction snapshot stack: (catalog, tables, views) triples.
        self._snapshots: list[tuple] = []
        #: Monotonic catalog/data version. Every mutating statement and
        #: programmatic write bumps it; the SQL result cache embeds it
        #: in every key, so a write instantly retires all cached reads.
        self.data_version = 0
        #: Counts CREATE/DROP INDEX events (and ROLLBACKs, which can
        #: restore a dropped index). Part of every SQL cache key, so a
        #: changed index set — hence a changed plan — never serves a
        #: result cached under the old plan.
        self.index_epoch = 0
        self._cache_token = instance_token()
        #: Guards statement execution: concurrent SELECTs share the
        #: read side; DML/DDL takes the write side exclusively.
        self._rwlock = ReadWriteLock()
        #: Raw SQL text -> (Select statement, canonical SQL). Parsing
        #: dominates a cached SELECT (the result lookup is cheap), so
        #: the hot path memoizes it; only used while the SQL cache
        #: tier is enabled, so disabled behavior is untouched.
        #: Guarded by ``_memo_lock`` (readers run concurrently).
        self._parse_memo: OrderedDict[str, tuple] = OrderedDict()
        self._memo_lock = threading.Lock()

    _PARSE_MEMO_CAPACITY = 512

    # -- execution -------------------------------------------------------

    def execute(
        self, sql: str, parameters: Sequence[Any] = ()
    ) -> ResultSet:
        """Parse and execute one SQL statement.

        SELECT results are served from the SQL cache tier (when
        enabled), keyed on this database's identity, its current data
        version and the statement's canonical SQL — so two spellings of
        the same query share an entry, and any write invalidates it.
        """
        from repro.sqlengine import nodes as _nodes

        manager = get_cache_manager()
        if not manager.enabled("sql"):
            return self.execute_statement(parse_sql(sql), parameters)
        with self._memo_lock:
            memo = self._parse_memo.get(sql)
        if memo is None:
            statement = parse_sql(sql)
            if not isinstance(statement, _nodes.Select):
                return self.execute_statement(statement, parameters)
            memo = (statement, statement.to_sql())
            with self._memo_lock:
                self._parse_memo[sql] = memo
                if len(self._parse_memo) > self._PARSE_MEMO_CAPACITY:
                    self._parse_memo.popitem(last=False)
        statement, canonical = memo
        params = tuple(parameters)
        try:
            key = sql_key(
                self._cache_token,
                self.name,
                self.data_version,
                canonical,
                params,
                index_epoch=self.index_epoch,
            )
            hash(key)
        except TypeError:
            # Unhashable parameter values: execute without caching.
            return self.execute_statement(statement, params)
        frozen = manager.cached(
            "sql",
            key,
            lambda: _freeze_result(self.execute_statement(statement, params)),
            database=self.name,
        )
        return _thaw_result(frozen)

    def execute_statement(
        self, statement: Statement, parameters: Sequence[Any] = ()
    ) -> ResultSet:
        from repro.sqlengine import nodes as _nodes

        if isinstance(statement, (_nodes.Select, _nodes.Explain)):
            with self._rwlock.reading():
                return self._run_statement(statement, parameters)
        with self._rwlock.writing():
            # DDL/DML (and transaction control, whose COMMIT/ROLLBACK
            # swap table state) invalidate every cached read. Bumping
            # before execution errs on the side of extra invalidation:
            # a failed write costs a recompute, never a stale read.
            self.data_version += 1
            if isinstance(
                statement, (_nodes.CreateIndex, _nodes.DropIndex)
            ) or (
                isinstance(statement, _nodes.TransactionStatement)
                and statement.action == "ROLLBACK"
            ):
                self.index_epoch += 1
            if isinstance(statement, _nodes.TransactionStatement):
                return self._execute_transaction(statement.action)
            return self._run_statement(statement, parameters)

    def _run_statement(
        self, statement: Statement, parameters: Sequence[Any]
    ) -> ResultSet:
        executor = Executor(
            self.catalog,
            self._tables,
            parameters,
            enable_hash_join=self.enable_hash_join,
            views=self._views,
            optimize=self.optimize,
        )
        return _to_result(executor.execute(statement))

    # -- transactions ------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return bool(self._snapshots)

    def _execute_transaction(self, action: str) -> ResultSet:
        from repro.sqlengine.errors import ExecutionError

        if action == "BEGIN":
            snapshot_tables = {
                name: table.clone() for name, table in self._tables.items()
            }
            self._snapshots.append(
                (self.catalog.clone(), snapshot_tables, dict(self._views))
            )
        elif action == "COMMIT":
            if not self._snapshots:
                raise ExecutionError("COMMIT without an active transaction")
            self._snapshots.pop()
        elif action == "ROLLBACK":
            if not self._snapshots:
                raise ExecutionError(
                    "ROLLBACK without an active transaction"
                )
            self.catalog, self._tables, self._views = self._snapshots.pop()
        return ResultSet(columns=["rowcount"], rows=[(0,)], rowcount=0)

    # -- indexes -------------------------------------------------------------

    def create_index(
        self,
        name: str,
        table: str,
        columns: str | Sequence[str],
        kind: str = "hash",
    ) -> None:
        """Create a secondary index from Python (no SQL round trip)."""
        from repro.sqlengine.indexes import IndexInfo

        if isinstance(columns, str):
            columns = (columns,)
        with self._rwlock.writing():
            storage = self._storage(table)
            storage.create_secondary_index(name, columns, kind)
            self.catalog.register_index(
                IndexInfo(
                    name=name,
                    table=table,
                    columns=tuple(columns),
                    kind=kind,
                )
            )
            self.index_epoch += 1
            self.data_version += 1

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def index_names(self) -> list[str]:
        names: list[str] = []
        for table in self._tables.values():
            names.extend(table.index_names())
        return sorted(names)

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Execute a ``;``-separated script, returning each result."""
        results = []
        for statement_text in split_statements(sql):
            results.append(self.execute(statement_text))
        return results

    # -- programmatic schema / data helpers -------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType | str]] | Sequence[ColumnSchema],
        primary_key: Optional[str] = None,
        comment: str = "",
    ) -> TableSchema:
        """Create a table from Python metadata (no SQL round trip)."""
        schemas: list[ColumnSchema] = []
        for column in columns:
            if isinstance(column, ColumnSchema):
                schemas.append(column)
                continue
            column_name, data_type = column
            if isinstance(data_type, str):
                data_type = DataType.from_name(data_type)
            schemas.append(
                ColumnSchema(
                    name=column_name,
                    data_type=data_type,
                    primary_key=(column_name == primary_key),
                )
            )
        schema = TableSchema(name, schemas, comment=comment)
        with self._rwlock.writing():
            self.data_version += 1
            self.catalog.create_table(schema)
            self._tables[name.lower()] = Table(schema)
        return schema

    def insert_rows(
        self, table: str, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Bulk insert positional rows."""
        with self._rwlock.writing():
            storage = self._storage(table)
            self.data_version += 1
            count = 0
            for row in rows:
                storage.insert(row)
                count += 1
        return count

    def insert_dicts(
        self, table: str, records: Iterable[dict[str, Any]]
    ) -> int:
        """Bulk insert mapping rows; missing columns get their default."""
        with self._rwlock.writing():
            storage = self._storage(table)
            self.data_version += 1
            schema = storage.schema
            count = 0
            for record in records:
                row = [
                    record.get(column.name, column.default)
                    for column in schema.columns
                ]
                storage.insert(row)
                count += 1
        return count

    def load_table(
        self,
        name: str,
        records: Sequence[dict[str, Any]],
        primary_key: Optional[str] = None,
    ) -> TableSchema:
        """Infer a schema from records, create the table, and load it."""
        if not records:
            raise CatalogError(
                f"cannot infer a schema for {name!r} from zero records"
            )
        column_types: dict[str, DataType] = {}
        for record in records:
            for key, value in record.items():
                if value is None:
                    column_types.setdefault(key, DataType.TEXT)
                    continue
                inferred = infer_type(value)
                current = column_types.get(key)
                if current is None or current is DataType.TEXT:
                    column_types[key] = inferred
                elif current is DataType.INTEGER and inferred is DataType.REAL:
                    column_types[key] = DataType.REAL
        schema = self.create_table(
            name, list(column_types.items()), primary_key=primary_key
        )
        self.insert_dicts(name, records)
        return schema

    def table_rowcount(self, name: str) -> int:
        return len(self._storage(name))

    def describe(self) -> str:
        return self.catalog.describe()

    def _storage(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError(f"no table named {name!r}")
        return table


def split_statements(sql: str) -> list[str]:
    """Split a script on top-level semicolons (string-literal aware)."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < n and sql[i + 1] == "'":
                    current.append("'")
                    i += 2
                    continue
                in_string = False
            i += 1
            continue
        if ch == "'":
            in_string = True
            current.append(ch)
            i += 1
            continue
        if ch == ";":
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    text = "".join(current).strip()
    if text:
        statements.append(text)
    return statements


def _freeze_result(result: ResultSet) -> tuple:
    """An immutable rendering safe to share across cache hits."""
    return (tuple(result.columns), tuple(result.rows), result.rowcount)


def _thaw_result(frozen: tuple) -> ResultSet:
    """A fresh :class:`ResultSet` per hit — callers may mutate theirs."""
    columns, rows, rowcount = frozen
    return ResultSet(
        columns=list(columns), rows=list(rows), rowcount=rowcount
    )


def _to_result(relation: Relation) -> ResultSet:
    if relation.columns == [(None, "rowcount")] and len(relation.rows) == 1:
        return ResultSet(
            columns=["rowcount"],
            rows=list(relation.rows),
            rowcount=relation.rows[0][0],
        )
    return ResultSet(columns=relation.column_names, rows=list(relation.rows))
