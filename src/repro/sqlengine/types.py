"""Value types supported by the engine and their coercion rules."""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

from repro.sqlengine.errors import TypeCheckError


class DataType(enum.Enum):
    """Column data types.

    ``DATE`` values are stored as :class:`datetime.date`; literals in SQL
    are ISO-8601 strings which the engine coerces on insert/compare.
    """

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "DECIMAL": cls.REAL,
            "NUMERIC": cls.REAL,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOL": cls.BOOLEAN,
            "DATETIME": cls.DATE,
            "TIMESTAMP": cls.DATE,
        }
        if normalized in aliases:
            return aliases[normalized]
        try:
            return cls(normalized)
        except ValueError:
            raise TypeCheckError(f"unknown data type: {name!r}") from None


def parse_date(value: str) -> _dt.date:
    """Parse an ISO date or datetime string to a date."""
    text = value.strip()
    try:
        if "T" in text or " " in text:
            return _dt.datetime.fromisoformat(text).date()
        return _dt.date.fromisoformat(text)
    except ValueError:
        raise TypeCheckError(f"invalid DATE literal: {value!r}") from None


def coerce(value: Any, data_type: DataType) -> Any:
    """Coerce ``value`` to the Python representation of ``data_type``.

    ``None`` (SQL NULL) passes through every type. Raises
    :class:`TypeCheckError` when the value cannot represent the type.
    """
    if value is None:
        return None
    if data_type is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                pass
        raise TypeCheckError(f"cannot coerce {value!r} to INTEGER")
    if data_type is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeCheckError(f"cannot coerce {value!r} to REAL")
    if data_type is DataType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, (_dt.date, _dt.datetime)):
            return value.isoformat()
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return str(value)
        raise TypeCheckError(f"cannot coerce {value!r} to TEXT")
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise TypeCheckError(f"cannot coerce {value!r} to BOOLEAN")
    if data_type is DataType.DATE:
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise TypeCheckError(f"cannot coerce {value!r} to DATE")
    raise TypeCheckError(f"unsupported data type: {data_type}")


def infer_type(value: Any) -> DataType:
    """Infer the narrowest :class:`DataType` for a Python value."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    if isinstance(value, (_dt.date, _dt.datetime)):
        return DataType.DATE
    return DataType.TEXT


def sort_key(value: Any) -> tuple:
    """Total ordering key: NULLs first, then by type group, then value."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, value)
    if isinstance(value, (_dt.date, _dt.datetime)):
        return (1, 2, value.isoformat())
    return (1, 3, str(value))
