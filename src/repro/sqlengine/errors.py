"""Exception hierarchy for the SQL engine.

All engine errors derive from :class:`SqlEngineError` so callers (for
example the chat2db application, which must report SQL failures back to
the user conversationally) can catch one base class.
"""

from __future__ import annotations


class SqlEngineError(Exception):
    """Base class for every error raised by the SQL engine."""


class SqlSyntaxError(SqlEngineError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so Text-to-SQL repair loops can point
    at the broken fragment.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(SqlEngineError):
    """A referenced table or column does not exist, or already exists."""


class TypeCheckError(SqlEngineError):
    """A value or expression does not match the declared column type."""


class ExecutionError(SqlEngineError):
    """A statement failed during evaluation (e.g. division by zero)."""
