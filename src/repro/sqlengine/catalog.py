"""Schema catalog: table and column metadata plus row storage handles.

The catalog also renders schema descriptions for prompts — the exact
text the Text-to-SQL models receive as context (schema linking operates
over this rendering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.sqlengine.errors import CatalogError, TypeCheckError
from repro.sqlengine.indexes import IndexInfo
from repro.sqlengine.types import DataType, coerce


@dataclass
class ColumnSchema:
    """Metadata for one column."""

    name: str
    data_type: DataType
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Any = None
    comment: str = ""

    def validate(self, value: Any) -> Any:
        """Coerce and constraint-check a value for this column."""
        coerced = coerce(value, self.data_type)
        if coerced is None and (self.not_null or self.primary_key):
            raise TypeCheckError(
                f"column {self.name!r} does not accept NULL"
            )
        return coerced


@dataclass
class TableSchema:
    """Metadata for one table."""

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)
    comment: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(lowered)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> ColumnSchema:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise CatalogError(
            f"no column {name!r} in table {self.name!r}"
        )

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError(
            f"no column {name!r} in table {self.name!r}"
        )

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def primary_key_columns(self) -> list[ColumnSchema]:
        return [column for column in self.columns if column.primary_key]

    def describe(self) -> str:
        """One-line schema rendering used in LLM prompts."""
        parts = []
        for column in self.columns:
            text = f"{column.name} {column.data_type.value}"
            if column.primary_key:
                text += " PRIMARY KEY"
            parts.append(text)
        return f"{self.name}({', '.join(parts)})"


class Catalog:
    """Case-insensitive registry of table schemas and index metadata.

    Tables own the index *structures*; the catalog records the index
    *metadata* (:class:`~repro.sqlengine.indexes.IndexInfo`) so the
    planner, ``DROP INDEX`` and introspection can reason about indexes
    without touching row storage.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._indexes: dict[str, IndexInfo] = {}

    def create_table(self, schema: TableSchema) -> None:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]
        self._indexes = {
            index_key: info
            for index_key, info in self._indexes.items()
            if info.table.lower() != key
        }

    def table(self, name: str) -> TableSchema:
        key = name.lower()
        schema = self._tables.get(key)
        if schema is None:
            raise CatalogError(f"no table named {name!r}")
        return schema

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [schema.name for schema in self._tables.values()]

    def tables(self) -> Iterable[TableSchema]:
        return list(self._tables.values())

    def describe(self) -> str:
        """Multi-line schema rendering of the whole database."""
        return "\n".join(
            schema.describe() for schema in self._tables.values()
        )

    def clone(self) -> "Catalog":
        """Shallow copy (schemas are treated as immutable after DDL)."""
        twin = Catalog()
        twin._tables = dict(self._tables)
        twin._indexes = dict(self._indexes)
        return twin

    # -- secondary-index metadata -------------------------------------

    def register_index(self, info: IndexInfo) -> None:
        key = info.name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {info.name!r} already exists")
        self._indexes[key] = info

    def drop_index(self, name: str) -> IndexInfo:
        key = name.lower()
        info = self._indexes.get(key)
        if info is None:
            raise CatalogError(f"no index named {name!r}")
        del self._indexes[key]
        return info

    def index(self, name: str) -> Optional[IndexInfo]:
        return self._indexes.get(name.lower())

    def indexes_for(self, table: str) -> list[IndexInfo]:
        """Index metadata for one table, in name order (deterministic
        planner choice)."""
        lowered = table.lower()
        return sorted(
            (
                info
                for info in self._indexes.values()
                if info.table.lower() == lowered
            ),
            key=lambda info: info.name.lower(),
        )

    def index_names(self) -> list[str]:
        return sorted(info.name for info in self._indexes.values())

    def describe_indexes(self) -> str:
        """Multi-line rendering of all indexes (not part of prompts)."""
        return "\n".join(
            self._indexes[key].describe() for key in sorted(self._indexes)
        )

    def find_column(self, column_name: str) -> list[tuple[str, ColumnSchema]]:
        """All (table name, column) pairs whose column matches ``column_name``."""
        lowered = column_name.lower()
        matches: list[tuple[str, ColumnSchema]] = []
        for schema in self._tables.values():
            for column in schema.columns:
                if column.name.lower() == lowered:
                    matches.append((schema.name, column))
        return matches
