"""Readers-writer lock for the SQL engine.

The serving layer fans SELECTs out across worker threads; with a single
mutex those reads serialize on the engine even though they never touch
shared mutable state. :class:`ReadWriteLock` lets any number of readers
proceed concurrently while writers (DML, DDL, transactions) get
exclusive access.

The lock is **write-preferring**: once a writer is waiting, new readers
queue behind it. A steady stream of cheap SELECTs therefore cannot
starve an INSERT indefinitely — the trade-off documented in
docs/sqlengine.md.

Neither side is reentrant. :class:`~repro.sqlengine.database.Database`
acquires the lock only at its public statement boundary and never
nests acquisitions, so reentrancy is not needed; attempting to nest
would deadlock (by design — it surfaces layering bugs immediately).

All internal state lives behind one :class:`threading.Condition`, which
keeps the repo's staticcheck LCK rules (lock-order, guarded attributes)
clean over this module.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Write-preferring readers-writer lock.

    Use the :meth:`reading` / :meth:`writing` context managers::

        lock = ReadWriteLock()
        with lock.reading():
            ...  # shared access; other readers run concurrently
        with lock.writing():
            ...  # exclusive access
    """

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._lock:
            while self._writer_active or self._writers_waiting:
                self._lock.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._lock:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._lock.notify_all()

    def acquire_write(self) -> None:
        with self._lock:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._lock.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._lock:
            self._writer_active = False
            self._lock.notify_all()

    @contextmanager
    def reading(self) -> Iterator[None]:
        """Hold a shared read lock for the duration of the block."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self) -> Iterator[None]:
        """Hold the exclusive write lock for the duration of the block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def stats(self) -> dict[str, int]:
        """Instantaneous counters (for tests and diagnostics)."""
        with self._lock:
            return {
                "active_readers": self._active_readers,
                "writer_active": int(self._writer_active),
                "writers_waiting": self._writers_waiting,
            }
