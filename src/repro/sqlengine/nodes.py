"""AST node definitions for parsed SQL statements.

Every node is a frozen dataclass; ``to_sql()`` round-trips the node back
to canonical SQL text, which the SQL-to-Text application and the
Text-to-SQL evaluator (canonical exact-match) both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression:
    """Base class for expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    value: Any  # int | float | str | bool | None

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class Parameter(Expression):
    """A ``?`` placeholder bound at execution time."""

    index: int

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # '-', '+', 'NOT'
    operand: Expression

    def to_sql(self) -> str:
        if self.op == "NOT":
            # Parenthesized so NOT can nest inside tighter operators.
            return f"(NOT {self.operand.to_sql()})"
        return f"{self.op}{self.operand.to_sql()}"


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # arithmetic, comparison, AND/OR, ||
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True)
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False

    def to_sql(self) -> str:
        verb = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {verb} {self.pattern.to_sql()})"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        verb = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {verb} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def to_sql(self) -> str:
        verb = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {verb} ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expression):
    operand: Expression
    subquery: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        verb = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {verb} ({self.subquery.to_sql()}))"


@dataclass(frozen=True)
class Exists(Expression):
    subquery: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        verb = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({verb} ({self.subquery.to_sql()}))"


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    subquery: "Select"

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str  # upper-cased
    args: tuple[Expression, ...]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Case(Expression):
    branches: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expression):
    operand: Expression
    type_name: str

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.type_name})"


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expression.to_sql()} AS {self.alias}"
        return self.expression.to_sql()

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return self.expression.to_sql()


@dataclass(frozen=True)
class TableRef:
    """Base class for FROM-clause sources."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str
    alias: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryTable(TableRef):
    subquery: "Select"
    alias: str

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()}) AS {self.alias}"

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(TableRef):
    left: TableRef
    right: TableRef
    join_type: str  # 'INNER', 'LEFT', 'RIGHT', 'FULL', 'CROSS'
    condition: Optional[Expression] = None

    def to_sql(self) -> str:
        if self.join_type == "CROSS":
            return f"{self.left.to_sql()} CROSS JOIN {self.right.to_sql()}"
        on = f" ON {self.condition.to_sql()}" if self.condition else ""
        return f"{self.left.to_sql()} {self.join_type} JOIN {self.right.to_sql()}{on}"


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"{self.expression.to_sql()} {direction}"


@dataclass(frozen=True)
class Statement:
    """Base class for top-level statements."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class CommonTableExpr:
    """One ``name [(cols)] AS (select)`` member of a WITH clause."""

    name: str
    query: "Select"
    columns: tuple[str, ...] = ()  # optional output-column renames

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        return f"{self.name}{cols} AS ({self.query.to_sql()})"


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    source: Optional[TableRef] = None
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False
    compound: tuple[tuple[str, "Select"], ...] = ()  # UNION [ALL]/INTERSECT/EXCEPT
    ctes: tuple[CommonTableExpr, ...] = ()  # WITH clause, in declaration order

    def to_sql(self) -> str:
        parts = []
        if self.ctes:
            parts.append("WITH " + ", ".join(cte.to_sql() for cte in self.ctes))
        parts.append("SELECT")
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.source is not None:
            parts.append("FROM")
            parts.append(self.source.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(e.to_sql() for e in self.group_by)
            )
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit.to_sql()}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset.to_sql()}")
        text = " ".join(parts)
        for op, query in self.compound:
            text = f"{text} {op} {query.to_sql()}"
        return text


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expression] = None

    def to_sql(self) -> str:
        parts = [self.name, self.type_name]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if self.not_null:
            parts.append("NOT NULL")
        if self.unique:
            parts.append("UNIQUE")
        if self.default is not None:
            parts.append(f"DEFAULT {self.default.to_sql()}")
        return " ".join(parts)


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False

    def to_sql(self) -> str:
        guard = "IF NOT EXISTS " if self.if_not_exists else ""
        cols = ", ".join(col.to_sql() for col in self.columns)
        return f"CREATE TABLE {guard}{self.name} ({cols})"


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        guard = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {guard}{self.name}"


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...]  # empty tuple means positional
    rows: tuple[tuple[Expression, ...], ...] = ()
    query: Optional[Select] = None  # INSERT ... SELECT

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.query is not None:
            return f"INSERT INTO {self.table}{cols} {self.query.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        where = f" WHERE {self.where.to_sql()}" if self.where else ""
        return f"DELETE FROM {self.table}{where}"


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    kind: str = "hash"  # 'hash' | 'sorted'

    def to_sql(self) -> str:
        cols = ", ".join(self.columns)
        using = "" if self.kind == "hash" else f" USING {self.kind.upper()}"
        return f"CREATE INDEX {self.name} ON {self.table} ({cols}){using}"


@dataclass(frozen=True)
class DropIndex(Statement):
    name: str

    def to_sql(self) -> str:
        return f"DROP INDEX {self.name}"


@dataclass(frozen=True)
class CreateView(Statement):
    name: str
    query: "Select"

    def to_sql(self) -> str:
        return f"CREATE VIEW {self.name} AS {self.query.to_sql()}"


@dataclass(frozen=True)
class DropView(Statement):
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        guard = "IF EXISTS " if self.if_exists else ""
        return f"DROP VIEW {guard}{self.name}"


@dataclass(frozen=True)
class TransactionStatement(Statement):
    """BEGIN / COMMIT / ROLLBACK."""

    action: str  # 'BEGIN' | 'COMMIT' | 'ROLLBACK'

    def to_sql(self) -> str:
        return self.action


@dataclass(frozen=True)
class Explain(Statement):
    """EXPLAIN <select>: describe the execution plan."""

    query: "Select"

    def to_sql(self) -> str:
        return f"EXPLAIN {self.query.to_sql()}"


AnyStatement = Union[Select, CreateTable, DropTable, Insert, Update, Delete]


def walk_expressions(expr: Expression):
    """Yield ``expr`` and every nested sub-expression, depth-first."""
    yield expr
    children: tuple[Expression, ...]
    if isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, (IsNull,)):
        children = (expr.operand,)
    elif isinstance(expr, Like):
        children = (expr.operand, expr.pattern)
    elif isinstance(expr, Between):
        children = (expr.operand, expr.low, expr.high)
    elif isinstance(expr, InList):
        children = (expr.operand, *expr.items)
    elif isinstance(expr, InSubquery):
        children = (expr.operand,)
    elif isinstance(expr, FunctionCall):
        children = expr.args
    elif isinstance(expr, Case):
        flat: list[Expression] = []
        for condition, result in expr.branches:
            flat.extend((condition, result))
        if expr.default is not None:
            flat.append(expr.default)
        children = tuple(flat)
    elif isinstance(expr, Cast):
        children = (expr.operand,)
    else:
        children = ()
    for child in children:
        yield from walk_expressions(child)
