"""In-memory relational SQL engine.

This package is the database substrate for the DB-GPT reproduction: the
SQL emitted by the Text-to-SQL models is parsed and executed here, so
execution accuracy is measurable end to end.

The engine is a classic pipeline::

    SQL text --lexer--> tokens --parser--> AST --executor--> ResultSet

Public entry points:

- :class:`Database` — create tables, execute SQL, inspect the catalog.
- :class:`ResultSet` — column names + rows returned by ``execute``.
- :func:`parse_sql` — parse a statement to its AST without executing.
"""

from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.database import Database, ResultSet
from repro.sqlengine.errors import (
    CatalogError,
    ExecutionError,
    SqlEngineError,
    SqlSyntaxError,
    TypeCheckError,
)
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.types import DataType

__all__ = [
    "Catalog",
    "ColumnSchema",
    "DataType",
    "Database",
    "ResultSet",
    "CatalogError",
    "ExecutionError",
    "SqlEngineError",
    "SqlSyntaxError",
    "TypeCheckError",
    "parse_sql",
]
