"""In-memory relational SQL engine.

This package is the database substrate for the DB-GPT reproduction: the
SQL emitted by the Text-to-SQL models is parsed and executed here, so
execution accuracy is measurable end to end.

The engine is a classic pipeline::

    SQL text --lexer--> tokens --parser--> AST --planner--> plan
             --executor--> ResultSet

Every SELECT is planned by a rule-based optimizer (predicate pushdown,
secondary-index access paths, hash joins, projection pruning) before it
runs; ``EXPLAIN <query>`` renders the plan tree. Reads execute
concurrently under a readers-writer lock; writes are exclusive.

Public entry points:

- :class:`Database` — create tables, execute SQL, inspect the catalog.
- :class:`ResultSet` — column names + rows returned by ``execute``.
- :func:`parse_sql` — parse a statement to its AST without executing.
- :func:`build_plan` / :func:`render_plan` — plan a parsed SELECT and
  render it the way ``EXPLAIN`` does.
"""

from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.database import Database, ResultSet
from repro.sqlengine.errors import (
    CatalogError,
    ExecutionError,
    SqlEngineError,
    SqlSyntaxError,
    TypeCheckError,
)
from repro.sqlengine.indexes import INDEX_KINDS, IndexInfo
from repro.sqlengine.locking import ReadWriteLock
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.planner import SelectPlan, build_plan, render_plan
from repro.sqlengine.types import DataType

__all__ = [
    "Catalog",
    "ColumnSchema",
    "DataType",
    "Database",
    "INDEX_KINDS",
    "IndexInfo",
    "ReadWriteLock",
    "ResultSet",
    "SelectPlan",
    "CatalogError",
    "ExecutionError",
    "SqlEngineError",
    "SqlSyntaxError",
    "TypeCheckError",
    "build_plan",
    "parse_sql",
    "render_plan",
]
