"""Row storage for one table, with constraint enforcement.

Alongside the unique/PK hash maps that enforce constraints, a table
carries the *secondary* indexes created by ``CREATE INDEX`` — the
:class:`~repro.sqlengine.indexes.HashIndex` /
:class:`~repro.sqlengine.indexes.SortedIndex` structures the planner
targets for point and range access paths. All indexes are maintained
incrementally on INSERT and rebuilt on the bulk ``replace_rows`` path
that backs UPDATE/DELETE, so they can never lag the heap.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.sqlengine.catalog import TableSchema
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.indexes import SecondaryIndex, make_index


class Table:
    """In-memory heap of rows (tuples) conforming to a schema.

    Enforces NOT NULL, PRIMARY KEY and UNIQUE on mutation. Unique/PK
    checks are maintained with hash indexes so bulk loads stay linear.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []
        self._unique_indexes: dict[int, dict[Any, int]] = {}
        #: CREATE INDEX structures, keyed by index name.
        self._secondary: dict[str, SecondaryIndex] = {}
        for index, column in enumerate(schema.columns):
            if column.primary_key or column.unique:
                self._unique_indexes[index] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def snapshot(self) -> list[tuple[Any, ...]]:
        return list(self._rows)

    def rows_at(self, positions: Iterable[int]) -> list[tuple[Any, ...]]:
        """Materialize the rows at the given heap positions, in order."""
        heap = self._rows
        return [heap[position] for position in positions]

    def insert(self, values: Iterable[Any]) -> None:
        row = self._validate_row(tuple(values))
        for column_index, index in self._unique_indexes.items():
            value = row[column_index]
            if value is None:
                continue
            if value in index:
                column = self.schema.columns[column_index]
                raise ExecutionError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.schema.name}.{column.name}"
                )
        position = len(self._rows)
        self._rows.append(row)
        for column_index, index in self._unique_indexes.items():
            value = row[column_index]
            if value is not None:
                index[value] = position
        for secondary in self._secondary.values():
            secondary.add(position, row)

    def _validate_row(self, values: tuple[Any, ...]) -> tuple[Any, ...]:
        if len(values) != len(self.schema.columns):
            raise ExecutionError(
                f"table {self.schema.name!r} expects "
                f"{len(self.schema.columns)} values, got {len(values)}"
            )
        validated = []
        for column, value in zip(self.schema.columns, values):
            validated.append(column.validate(value))
        return tuple(validated)

    def replace_rows(self, rows: list[tuple[Any, ...]]) -> None:
        """Bulk replace after UPDATE/DELETE; rebuilds all indexes."""
        validated = [self._validate_row(row) for row in rows]
        new_indexes: dict[int, dict[Any, int]] = {
            column_index: {} for column_index in self._unique_indexes
        }
        for position, row in enumerate(validated):
            for column_index, index in new_indexes.items():
                value = row[column_index]
                if value is None:
                    continue
                if value in index:
                    column = self.schema.columns[column_index]
                    raise ExecutionError(
                        f"duplicate value {value!r} for unique column "
                        f"{self.schema.name}.{column.name}"
                    )
                index[value] = position
        self._rows = validated
        self._unique_indexes = new_indexes
        for secondary in self._secondary.values():
            secondary.rebuild(self._rows)

    def clone(self) -> "Table":
        """Independent copy (transaction snapshots)."""
        twin = Table(self.schema)
        twin._rows = list(self._rows)
        twin._unique_indexes = {
            key: dict(value) for key, value in self._unique_indexes.items()
        }
        twin._secondary = {
            name: secondary.clone()
            for name, secondary in self._secondary.items()
        }
        return twin

    # -- secondary indexes (CREATE INDEX) -----------------------------

    def create_secondary_index(
        self,
        name: str,
        columns: Union[str, Sequence[str]],
        kind: str = "hash",
    ) -> None:
        """Create and backfill a secondary index over ``columns``."""
        if name in self._secondary:
            raise ExecutionError(f"index {name!r} already exists")
        if isinstance(columns, str):
            columns = (columns,)
        if not columns:
            raise ExecutionError("an index needs at least one column")
        positions = tuple(
            self.schema.column_index(column) for column in columns
        )
        if len(set(positions)) != len(positions):
            raise ExecutionError(
                f"index {name!r} lists a column more than once"
            )
        secondary = make_index(kind, name, positions)
        secondary.rebuild(self._rows)
        self._secondary[name] = secondary

    def drop_secondary_index(self, name: str) -> None:
        if name not in self._secondary:
            raise ExecutionError(f"no index named {name!r}")
        del self._secondary[name]

    def has_secondary_index(self, column_name: str) -> bool:
        """True when a single-column index (either kind) supports
        equality lookups on ``column_name``."""
        return self._equality_index(column_name) is not None

    def _equality_index(self, column_name: str) -> Optional[SecondaryIndex]:
        try:
            column_index = self.schema.column_index(column_name)
        except Exception:
            return None
        for secondary in self._secondary.values():
            if secondary.column_positions == (column_index,):
                return secondary
        return None

    def index_names(self) -> list[str]:
        return sorted(self._secondary)

    def indexes(self) -> list[SecondaryIndex]:
        """All secondary indexes, in name order."""
        return [self._secondary[name] for name in sorted(self._secondary)]

    def get_index(self, name: str) -> SecondaryIndex:
        try:
            return self._secondary[name]
        except KeyError:
            raise ExecutionError(f"no index named {name!r}") from None

    def secondary_lookup(
        self, column_name: str, value: Any
    ) -> Optional[list[tuple[Any, ...]]]:
        """Rows where ``column_name == value`` via an index, or None
        when no index covers the column."""
        secondary = self._equality_index(column_name)
        if secondary is None:
            return None
        return self.rows_at(secondary.lookup((value,)))

    def lookup_unique(self, column_name: str, value: Any) -> Optional[tuple]:
        """Point lookup through a unique index, or None."""
        column_index = self.schema.column_index(column_name)
        index = self._unique_indexes.get(column_index)
        if index is None:
            raise ExecutionError(
                f"column {column_name!r} has no unique index"
            )
        position = index.get(value)
        if position is None:
            return None
        return self._rows[position]
