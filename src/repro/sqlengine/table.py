"""Row storage for one table, with constraint enforcement."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.sqlengine.catalog import TableSchema
from repro.sqlengine.errors import ExecutionError, TypeCheckError


class Table:
    """In-memory heap of rows (tuples) conforming to a schema.

    Enforces NOT NULL, PRIMARY KEY and UNIQUE on mutation. Unique/PK
    checks are maintained with hash indexes so bulk loads stay linear.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []
        self._unique_indexes: dict[int, dict[Any, int]] = {}
        #: name -> (column position, value -> row positions)
        self._secondary: dict[str, tuple[int, dict[Any, list[int]]]] = {}
        for index, column in enumerate(schema.columns):
            if column.primary_key or column.unique:
                self._unique_indexes[index] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def snapshot(self) -> list[tuple[Any, ...]]:
        return list(self._rows)

    def insert(self, values: Iterable[Any]) -> None:
        row = self._validate_row(tuple(values))
        for column_index, index in self._unique_indexes.items():
            value = row[column_index]
            if value is None:
                continue
            if value in index:
                column = self.schema.columns[column_index]
                raise ExecutionError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.schema.name}.{column.name}"
                )
        position = len(self._rows)
        self._rows.append(row)
        for column_index, index in self._unique_indexes.items():
            value = row[column_index]
            if value is not None:
                index[value] = position
        for column_index, mapping in self._secondary.values():
            value = row[column_index]
            if value is not None:
                mapping.setdefault(value, []).append(position)

    def _validate_row(self, values: tuple[Any, ...]) -> tuple[Any, ...]:
        if len(values) != len(self.schema.columns):
            raise ExecutionError(
                f"table {self.schema.name!r} expects "
                f"{len(self.schema.columns)} values, got {len(values)}"
            )
        validated = []
        for column, value in zip(self.schema.columns, values):
            validated.append(column.validate(value))
        return tuple(validated)

    def replace_rows(self, rows: list[tuple[Any, ...]]) -> None:
        """Bulk replace after UPDATE/DELETE; rebuilds unique indexes."""
        validated = [self._validate_row(row) for row in rows]
        new_indexes: dict[int, dict[Any, int]] = {
            column_index: {} for column_index in self._unique_indexes
        }
        for position, row in enumerate(validated):
            for column_index, index in new_indexes.items():
                value = row[column_index]
                if value is None:
                    continue
                if value in index:
                    column = self.schema.columns[column_index]
                    raise ExecutionError(
                        f"duplicate value {value!r} for unique column "
                        f"{self.schema.name}.{column.name}"
                    )
                index[value] = position
        self._rows = validated
        self._unique_indexes = new_indexes
        for name in list(self._secondary):
            column_index, _old = self._secondary[name]
            self._secondary[name] = (
                column_index,
                self._build_secondary(column_index),
            )

    def clone(self) -> "Table":
        """Independent copy (transaction snapshots)."""
        twin = Table(self.schema)
        twin._rows = list(self._rows)
        twin._unique_indexes = {
            key: dict(value) for key, value in self._unique_indexes.items()
        }
        twin._secondary = {
            name: (position, {k: list(v) for k, v in mapping.items()})
            for name, (position, mapping) in self._secondary.items()
        }
        return twin

    # -- secondary indexes (CREATE INDEX) -----------------------------

    def create_secondary_index(self, name: str, column_name: str) -> None:
        if name in self._secondary:
            raise ExecutionError(f"index {name!r} already exists")
        column_index = self.schema.column_index(column_name)
        self._secondary[name] = (
            column_index,
            self._build_secondary(column_index),
        )

    def drop_secondary_index(self, name: str) -> None:
        if name not in self._secondary:
            raise ExecutionError(f"no index named {name!r}")
        del self._secondary[name]

    def has_secondary_index(self, column_name: str) -> bool:
        try:
            column_index = self.schema.column_index(column_name)
        except Exception:
            return False
        return any(
            idx == column_index for idx, _m in self._secondary.values()
        )

    def index_names(self) -> list[str]:
        return sorted(self._secondary)

    def secondary_lookup(
        self, column_name: str, value: Any
    ) -> Optional[list[tuple[Any, ...]]]:
        """Rows where ``column_name == value`` via an index, or None
        when no index covers the column."""
        column_index = self.schema.column_index(column_name)
        for idx, mapping in self._secondary.values():
            if idx == column_index:
                return [
                    self._rows[position]
                    for position in mapping.get(value, [])
                ]
        return None

    def _build_secondary(
        self, column_index: int
    ) -> dict[Any, list[int]]:
        mapping: dict[Any, list[int]] = {}
        for position, row in enumerate(self._rows):
            value = row[column_index]
            if value is not None:
                mapping.setdefault(value, []).append(position)
        return mapping

    def lookup_unique(self, column_name: str, value: Any) -> Optional[tuple]:
        """Point lookup through a unique index, or None."""
        column_index = self.schema.column_index(column_name)
        index = self._unique_indexes.get(column_index)
        if index is None:
            raise ExecutionError(
                f"column {column_name!r} has no unique index"
            )
        position = index.get(value)
        if position is None:
            return None
        return self._rows[position]
