"""Token definitions shared by the lexer and parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    PARAMETER = "PARAMETER"
    EOF = "EOF"


#: Reserved words. Identifiers matching these (case-insensitively) are
#: emitted as KEYWORD tokens with an upper-cased value.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL",
        "LIKE", "BETWEEN", "EXISTS", "DISTINCT", "ASC", "DESC", "JOIN",
        "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON", "UNION",
        "ALL", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "DROP", "TABLE", "IF", "PRIMARY", "KEY", "UNIQUE",
        "DEFAULT", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "TRUE",
        "FALSE", "INDEX", "VIEW", "INTERSECT", "EXCEPT", "ALTER", "ADD",
        "COLUMN", "RENAME", "TO", "BEGIN", "COMMIT", "ROLLBACK",
        "TRANSACTION", "EXPLAIN", "WITH",
    }
)

#: Multi-character operators, longest first so the lexer is greedy.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||")

SINGLE_CHAR_OPERATORS = frozenset("+-*/%=<>")

PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the normalized payload: upper-cased keyword text,
    the raw identifier, a Python int/float for numbers, or the unescaped
    string body for string literals.
    """

    type: TokenType
    value: Any
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"
