"""SQL tokenizer.

Hand-written single-pass scanner. Supports:

- identifiers (bare and double-quoted), keywords
- integer / float literals (including exponent form)
- single-quoted strings with ``''`` escaping
- line comments (``-- ...``) and block comments (``/* ... */``)
- parameters (``?``)
"""

from __future__ import annotations

from repro.sqlengine.errors import SqlSyntaxError
from repro.sqlengine.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_BODY = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", position=i)
            i = end + 2
            continue
        if ch in _IDENT_START:
            start = i
            while i < n and sql[i] in _IDENT_BODY:
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        if ch in _DIGITS or (
            ch == "." and i + 1 < n and sql[i + 1] in _DIGITS
        ):
            token, i = _scan_number(sql, i)
            tokens.append(token)
            continue
        if ch == "'":
            token, i = _scan_string(sql, i)
            tokens.append(token)
            continue
        if ch == '"':
            token, i = _scan_quoted_identifier(sql, i)
            tokens.append(token)
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", i))
            i += 1
            continue
        matched = False
        for op in MULTI_CHAR_OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _scan_number(sql: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(sql)
    is_float = False
    while i < n and sql[i] in _DIGITS:
        i += 1
    if i < n and sql[i] == ".":
        is_float = True
        i += 1
        while i < n and sql[i] in _DIGITS:
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j] in _DIGITS:
            is_float = True
            i = j
            while i < n and sql[i] in _DIGITS:
                i += 1
    text = sql[start:i]
    value = float(text) if is_float else int(text)
    return Token(TokenType.NUMBER, value, start), i


def _scan_string(sql: str, start: int) -> tuple[Token, int]:
    i = start + 1
    n = len(sql)
    parts: list[str] = []
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _scan_quoted_identifier(sql: str, start: int) -> tuple[Token, int]:
    end = sql.find('"', start + 1)
    if end == -1:
        raise SqlSyntaxError("unterminated quoted identifier", position=start)
    name = sql[start + 1 : end]
    if not name:
        raise SqlSyntaxError("empty quoted identifier", position=start)
    return Token(TokenType.IDENTIFIER, name, start), end + 1
