"""Statement execution: planned SELECT pipeline, DML and DDL.

Every SELECT core goes through :func:`repro.sqlengine.planner.build_plan`
first; the executor then runs the plan tree (scans with index access
paths and pushed filters, hash/nested-loop joins) and the textbook
pipeline on top::

    FROM/JOIN -> WHERE residual -> GROUP BY -> HAVING -> SELECT
    -> DISTINCT -> ORDER BY -> LIMIT/OFFSET -> compound set operators

Rows flow through as plain tuples alongside a column layout
``[(binding, name), ...]`` held by :class:`RowContext`. WITH clauses
materialize each CTE once, eagerly, into a scope frame that shadows
views and tables for the duration of the owning select.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.sqlengine import nodes
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.expressions import Evaluator, RowContext
from repro.sqlengine.functions import (
    Aggregate,
    is_aggregate_function,
    make_aggregate,
)
from repro.sqlengine.indexes import IndexInfo, SortedIndex
from repro.sqlengine.planner import (
    CteScanPlan,
    IndexEqAccess,
    IndexRangeAccess,
    JoinPlan,
    ScanPlan,
    SelectPlan,
    SourcePlan,
    SubqueryScanPlan,
    ViewScanPlan,
    build_plan,
    output_columns,
    render_plan,
)
from repro.sqlengine.table import Table
from repro.sqlengine.types import DataType, coerce, sort_key


@dataclass
class Relation:
    """An intermediate result: column layout plus rows."""

    columns: list[tuple[Optional[str], str]]
    rows: list[tuple[Any, ...]]

    @property
    def column_names(self) -> list[str]:
        return [name for _binding, name in self.columns]


@dataclass
class _CteSlot:
    """One WITH-clause binding: the materialized relation plus its
    lower-cased output column names. During EXPLAIN only the column
    names are known — ``relation`` stays None."""

    name: str
    relation: Optional[Relation]
    columns: Optional[list[str]]


class _PlannerContext:
    """Adapter exposing the executor's name scope and the catalog's
    index metadata to the planner (see
    :class:`repro.sqlengine.planner.PlannerContext`)."""

    def __init__(self, executor: "Executor") -> None:
        self._executor = executor

    def resolve(self, name: str) -> tuple[Optional[str], Any]:
        return self._executor._resolve_name(name)

    def indexes(self, table: str) -> list[IndexInfo]:
        return self._executor._catalog.indexes_for(table)


class Executor:
    """Execute parsed statements against a catalog + table storage."""

    def __init__(
        self,
        catalog: Catalog,
        tables: dict[str, Table],
        parameters: Sequence[Any] = (),
        enable_hash_join: bool = True,
        views: Optional[dict[str, nodes.Select]] = None,
        optimize: bool = True,
    ) -> None:
        self._catalog = catalog
        self._tables = tables
        self._views = views if views is not None else {}
        self.enable_hash_join = enable_hash_join
        self.optimize = optimize
        #: WITH-clause scope frames, innermost last; each maps a
        #: lower-cased CTE name to its materialized slot.
        self._cte_stack: list[dict[str, _CteSlot]] = []
        self._evaluator = Evaluator(
            run_subquery=self._run_subquery, parameters=parameters
        )

    # -- public entry points -------------------------------------------

    def execute(self, statement: nodes.Statement) -> Relation:
        if isinstance(statement, nodes.Select):
            return self.execute_select(statement)
        if isinstance(statement, nodes.Explain):
            return self.explain(statement.query)
        if isinstance(statement, nodes.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, nodes.DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, nodes.CreateView):
            key = statement.name.lower()
            if key in self._views or self._catalog.has_table(statement.name):
                raise CatalogError(
                    f"name {statement.name!r} is already in use"
                )
            self._views[key] = statement.query
            return _rowcount_relation(0)
        if isinstance(statement, nodes.DropView):
            key = statement.name.lower()
            if key not in self._views:
                if statement.if_exists:
                    return _rowcount_relation(0)
                raise CatalogError(f"no view named {statement.name!r}")
            del self._views[key]
            return _rowcount_relation(0)
        if isinstance(statement, nodes.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, nodes.Update):
            return self._execute_update(statement)
        if isinstance(statement, nodes.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, nodes.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, nodes.DropTable):
            return self._execute_drop(statement)
        raise ExecutionError(f"cannot execute statement: {statement!r}")

    def execute_select(
        self,
        select: nodes.Select,
        outer: Optional[RowContext] = None,
    ) -> Relation:
        if not select.ctes:
            return self._execute_query(select, outer)
        frame: dict[str, _CteSlot] = {}
        self._cte_stack.append(frame)
        try:
            for cte in select.ctes:
                key = cte.name.lower()
                if key in frame:
                    raise ExecutionError(
                        f"duplicate CTE name {cte.name!r} in WITH clause"
                    )
                # The CTE's own name is registered only after its body
                # runs, so self-references fail with the usual "no
                # table" error instead of recursing.
                relation = _apply_cte_columns(
                    cte, self.execute_select(cte.query, outer)
                )
                frame[key] = _CteSlot(
                    cte.name,
                    relation,
                    [name.lower() for name in relation.column_names],
                )
            return self._execute_query(select, outer)
        finally:
            self._cte_stack.pop()

    def _execute_query(
        self,
        select: nodes.Select,
        outer: Optional[RowContext] = None,
    ) -> Relation:
        if not select.compound:
            return self._execute_select_core(select, outer)
        import dataclasses

        first = dataclasses.replace(
            select, order_by=(), limit=None, offset=None, compound=()
        )
        result = self._execute_select_core(first, outer)
        for op, query in select.compound:
            other = self._execute_select_core(query, outer)
            if len(other.columns) != len(result.columns):
                raise ExecutionError(
                    f"{op}: operand column counts differ "
                    f"({len(result.columns)} vs {len(other.columns)})"
                )
            result = _apply_set_operator(op, result, other)
        return self._sort_and_limit_compound(select, result)

    def _sort_and_limit_compound(
        self, select: nodes.Select, relation: Relation
    ) -> Relation:
        """Apply compound-level ORDER BY / LIMIT over the merged rows."""
        rows = relation.rows
        if select.order_by:
            out_ctx = RowContext(
                relation.columns, [None] * len(relation.columns)
            )

            def key_for(row: tuple) -> list:
                parts = []
                for item in select.order_by:
                    expr = item.expression
                    if isinstance(expr, nodes.Literal) and isinstance(
                        expr.value, int
                    ):
                        ordinal = expr.value - 1
                        if not 0 <= ordinal < len(relation.columns):
                            raise ExecutionError(
                                f"ORDER BY position {expr.value} out of range"
                            )
                        value = row[ordinal]
                    else:
                        value = self._evaluator.evaluate(
                            expr, out_ctx.with_values(row)
                        )
                    part = sort_key(value)
                    parts.append(_invert(part) if item.descending else part)
                return parts

            rows = sorted(rows, key=key_for)
        if select.limit is not None:
            base_ctx = RowContext([], [])
            limit = self._evaluator.evaluate(select.limit, base_ctx)
            offset = 0
            if select.offset is not None:
                offset = self._evaluator.evaluate(select.offset, base_ctx)
            rows = rows[offset : offset + limit]
        return Relation(relation.columns, list(rows))

    # -- SELECT pipeline -------------------------------------------------

    def _execute_select_core(
        self,
        select: nodes.Select,
        outer: Optional[RowContext],
    ) -> Relation:
        plan = self._build_plan(select)
        if plan.source is None:
            source = Relation(columns=[], rows=[()])
        else:
            source = self._run_source_plan(plan.source, outer)
        ctx = RowContext(source.columns, [None] * len(source.columns), outer)

        if plan.residual is not None:
            kept = []
            for row in source.rows:
                if self._evaluator.evaluate_truth(
                    plan.residual, ctx.with_values(row)
                ):
                    kept.append(row)
            source = Relation(source.columns, kept)

        items = self._expand_stars(select.items, source.columns)
        is_grouped = bool(select.group_by) or _uses_aggregates(
            items, select.having, select.order_by
        )
        if is_grouped:
            relation = self._execute_grouped(select, items, source, ctx)
        else:
            relation = self._project(items, source, ctx, select.order_by)

        if select.distinct:
            relation = _distinct(relation)
        relation = self._order_and_slice(select, relation, outer)
        return relation

    def _project(
        self,
        items: list[nodes.SelectItem],
        source: Relation,
        ctx: RowContext,
        order_by: tuple[nodes.OrderItem, ...],
    ) -> Relation:
        out_columns: list[tuple[Optional[str], str]] = [
            (None, item.output_name) for item in items
        ]
        # ORDER BY may reference source columns not in the select list;
        # carry their values as hidden extras used only for sorting.
        extra_exprs = _order_extras(order_by, items)
        rows: list[tuple[Any, ...]] = []
        for row in source.rows:
            row_ctx = ctx.with_values(row)
            values = [
                self._evaluator.evaluate(item.expression, row_ctx)
                for item in items
            ]
            extras = [
                self._evaluator.evaluate(expr, row_ctx)
                for expr in extra_exprs
            ]
            rows.append(tuple(values) + tuple(extras))
        hidden = [(None, f"__order_{i}") for i in range(len(extra_exprs))]
        return Relation(out_columns + hidden, rows)

    def _execute_grouped(
        self,
        select: nodes.Select,
        items: list[nodes.SelectItem],
        source: Relation,
        ctx: RowContext,
    ) -> Relation:
        group_exprs = list(select.group_by)
        # Allow GROUP BY to reference select-list aliases or ordinals.
        group_exprs = [
            _resolve_output_reference(expr, items) for expr in group_exprs
        ]
        aggregate_calls = _collect_aggregates(items, select.having, select.order_by)

        groups: dict[tuple, dict] = {}
        group_order: list[tuple] = []
        for row in source.rows:
            row_ctx = ctx.with_values(row)
            key = tuple(
                _hashable(self._evaluator.evaluate(expr, row_ctx))
                for expr in group_exprs
            )
            state = groups.get(key)
            if state is None:
                state = {
                    "first_row": row,
                    "aggregates": [
                        make_aggregate(
                            call.name,
                            star=bool(call.args)
                            and isinstance(call.args[0], nodes.Star),
                            distinct=call.distinct,
                        )
                        for call in aggregate_calls
                    ],
                }
                groups[key] = state
                group_order.append(key)
            for call, accumulator in zip(aggregate_calls, state["aggregates"]):
                if call.args and not isinstance(call.args[0], nodes.Star):
                    value = self._evaluator.evaluate(call.args[0], row_ctx)
                else:
                    value = True  # COUNT(*): presence only
                accumulator.add(value)

        if not groups and not select.group_by:
            # Aggregate query over an empty input yields one row.
            empty_state = {
                "first_row": tuple([None] * len(source.columns)),
                "aggregates": [
                    make_aggregate(
                        call.name,
                        star=bool(call.args)
                        and isinstance(call.args[0], nodes.Star),
                        distinct=call.distinct,
                    )
                    for call in aggregate_calls
                ],
            }
            groups[()] = empty_state
            group_order.append(())

        out_columns: list[tuple[Optional[str], str]] = [
            (None, item.output_name) for item in items
        ]
        extra_exprs = _order_extras(select.order_by, items)
        rows: list[tuple[Any, ...]] = []
        for key in group_order:
            state = groups[key]
            row_ctx = ctx.with_values(state["first_row"])
            aggregate_values = {
                _agg_key(call): acc.result()
                for call, acc in zip(aggregate_calls, state["aggregates"])
            }
            evaluator = _GroupEvaluator(
                self._evaluator, aggregate_values
            )
            if select.having is not None:
                value = evaluator.evaluate(select.having, row_ctx)
                if value is None or not value:
                    continue
            values = [
                evaluator.evaluate(item.expression, row_ctx) for item in items
            ]
            extras = [
                evaluator.evaluate(expr, row_ctx) for expr in extra_exprs
            ]
            rows.append(tuple(values) + tuple(extras))
        hidden = [(None, f"__order_{i}") for i in range(len(extra_exprs))]
        return Relation(out_columns + hidden, rows)

    def _order_and_slice(
        self,
        select: nodes.Select,
        relation: Relation,
        outer: Optional[RowContext],
    ) -> Relation:
        visible = len(select.items)
        if any(isinstance(i.expression, nodes.Star) for i in select.items):
            visible = len(relation.columns) - sum(
                1 for _b, name in relation.columns if name.startswith("__order_")
            )
        if select.order_by:
            out_ctx = RowContext(
                relation.columns, [None] * len(relation.columns)
            )
            keys: list[tuple[int, Any]] = []

            def order_value(row: tuple, item: nodes.OrderItem, position: int):
                expr = item.expression
                if isinstance(expr, nodes.Literal) and isinstance(
                    expr.value, int
                ):
                    ordinal = expr.value - 1
                    if 0 <= ordinal < visible:
                        return row[ordinal]
                    raise ExecutionError(
                        f"ORDER BY position {expr.value} out of range"
                    )
                hidden_name = f"__order_{position}"
                hidden_index = _find_column(relation.columns, hidden_name)
                if hidden_index is not None:
                    return row[hidden_index]
                return self._evaluator.evaluate(
                    expr, out_ctx.with_values(row)
                )

            extra_positions = _order_extra_positions(
                select.order_by, list(select.items)
            )
            decorated = []
            for row in relation.rows:
                key_parts = []
                for item in select.order_by:
                    position = extra_positions.get(id(item), -1)
                    value = order_value(row, item, position)
                    part = sort_key(value)
                    key_parts.append((part, item.descending))
                decorated.append((key_parts, row))

            def compare_key(entry):
                parts = []
                for part, descending in entry[0]:
                    parts.append(_invert(part) if descending else part)
                return parts

            decorated.sort(key=compare_key)
            relation = Relation(relation.columns, [r for _k, r in decorated])

        rows = relation.rows
        if select.limit is not None:
            base_ctx = RowContext([], [])
            limit = self._evaluator.evaluate(select.limit, base_ctx)
            offset = 0
            if select.offset is not None:
                offset = self._evaluator.evaluate(select.offset, base_ctx)
            if not isinstance(limit, int) or (
                offset is not None and not isinstance(offset, int)
            ):
                raise ExecutionError("LIMIT/OFFSET must be integers")
            rows = rows[offset : offset + limit]

        # Strip hidden ORDER BY helper columns.
        keep = [
            index
            for index, (_binding, name) in enumerate(relation.columns)
            if not name.startswith("__order_")
        ]
        if len(keep) != len(relation.columns):
            columns = [relation.columns[i] for i in keep]
            rows = [tuple(row[i] for i in keep) for row in rows]
            return Relation(columns, rows)
        return Relation(relation.columns, list(rows))

    # -- plan construction and runtime -------------------------------------

    def _build_plan(self, select: nodes.Select) -> SelectPlan:
        return build_plan(
            select,
            _PlannerContext(self),
            optimize=self.optimize,
            enable_hash_join=self.enable_hash_join,
        )

    def _resolve_name(self, name: str) -> tuple[Optional[str], Any]:
        """Resolve a FROM-clause name: CTE scopes (innermost first),
        then views, then base tables."""
        key = name.lower()
        for frame in reversed(self._cte_stack):
            slot = frame.get(key)
            if slot is not None:
                return "cte", slot.columns
        view = self._views.get(key)
        if view is not None:
            return "view", view
        if self._catalog.has_table(name):
            return "table", self._catalog.table(name)
        return None, None

    def _run_source_plan(
        self, plan: SourcePlan, outer: Optional[RowContext]
    ) -> Relation:
        if isinstance(plan, ScanPlan):
            return self._run_scan(plan, outer)
        if isinstance(plan, (ViewScanPlan, SubqueryScanPlan)):
            assert plan.query is not None
            inner = self.execute_select(plan.query, outer)
            return self._rebind_and_filter(plan, inner, outer)
        if isinstance(plan, CteScanPlan):
            return self._rebind_and_filter(
                plan, self._cte_relation(plan.name), outer
            )
        if isinstance(plan, JoinPlan):
            return self._run_join_plan(plan, outer)
        raise ExecutionError(f"unsupported plan node: {plan!r}")

    def _cte_relation(self, name: str) -> Relation:
        key = name.lower()
        for frame in reversed(self._cte_stack):
            slot = frame.get(key)
            if slot is not None and slot.relation is not None:
                return slot.relation
        raise ExecutionError(f"CTE {name!r} is not materialized")

    def _rebind_and_filter(
        self,
        plan: SourcePlan,
        inner: Relation,
        outer: Optional[RowContext],
    ) -> Relation:
        relation = Relation(
            [(plan.binding, name) for _b, name in inner.columns],
            inner.rows,
        )
        return self._apply_plan_filter(plan, relation, outer)

    def _apply_plan_filter(
        self,
        plan: SourcePlan,
        relation: Relation,
        outer: Optional[RowContext],
    ) -> Relation:
        """Run a scan's pushed-down conjuncts over its rows."""
        if plan.filter is None:
            return relation
        ctx = RowContext(
            relation.columns, [None] * len(relation.columns), outer
        )
        kept = [
            row
            for row in relation.rows
            if self._evaluator.evaluate_truth(
                plan.filter, ctx.with_values(row)
            )
        ]
        return Relation(relation.columns, kept)

    def _run_scan(
        self, plan: ScanPlan, outer: Optional[RowContext]
    ) -> Relation:
        table = self._storage(plan.table)
        rows = self._access_rows(table, plan.access, outer)
        columns = [
            (plan.binding, column.name) for column in table.schema.columns
        ]
        relation = self._apply_plan_filter(
            plan, Relation(columns, rows), outer
        )
        if plan.columns is not None:
            keep = [
                table.schema.column_index(name) for name in plan.columns
            ]
            relation = Relation(
                [columns[i] for i in keep],
                [tuple(row[i] for i in keep) for row in relation.rows],
            )
        return relation

    def _access_rows(
        self,
        plan_table: Table,
        access: Any,
        outer: Optional[RowContext],
    ) -> list[tuple[Any, ...]]:
        """Fetch candidate rows through the plan's access path.

        Index paths only *pre-filter*: the scan filter re-checks every
        row, so falling back to a full snapshot is always safe.
        """
        base_ctx = RowContext([], [], outer)
        if isinstance(access, IndexEqAccess):
            values = []
            for column_name, expr in zip(
                access.index.columns, access.values
            ):
                value = self._evaluator.evaluate(expr, base_ctx)
                if value is None:
                    return []  # col = NULL matches nothing
                column = plan_table.schema.column(column_name)
                try:
                    values.append(coerce(value, column.data_type))
                except Exception:
                    return plan_table.snapshot()  # type mismatch
            index = plan_table.get_index(access.index.name)
            return plan_table.rows_at(index.lookup(tuple(values)))
        if isinstance(access, IndexRangeAccess):
            index = plan_table.get_index(access.index.name)
            if not isinstance(index, SortedIndex):
                return plan_table.snapshot()
            column = plan_table.schema.column(access.column)
            bounds: dict[str, Any] = {"low": None, "high": None}
            for side, expr in (("low", access.low), ("high", access.high)):
                if expr is None:
                    continue
                value = self._evaluator.evaluate(expr, base_ctx)
                if value is None:
                    return []  # range against NULL matches nothing
                try:
                    bounds[side] = coerce(value, column.data_type)
                except Exception:
                    return plan_table.snapshot()
            positions = index.range_lookup(
                bounds["low"],
                bounds["high"],
                low_inclusive=access.low_inclusive,
                high_inclusive=access.high_inclusive,
            )
            return plan_table.rows_at(positions)
        return plan_table.snapshot()

    def _run_join_plan(
        self, plan: JoinPlan, outer: Optional[RowContext]
    ) -> Relation:
        assert plan.left is not None and plan.right is not None
        left = self._run_source_plan(plan.left, outer)
        right = self._run_source_plan(plan.right, outer)
        columns = left.columns + right.columns
        ctx = RowContext(columns, [None] * len(columns), outer)
        rows: list[tuple[Any, ...]] = []
        if plan.join_type == "CROSS":
            for lrow in left.rows:
                for rrow in right.rows:
                    rows.append(lrow + rrow)
            return Relation(columns, rows)

        condition = plan.condition
        matched_right: set[int] = set()
        null_right = tuple([None] * len(right.columns))
        null_left = tuple([None] * len(left.columns))

        equi: Optional[tuple[int, int]] = None
        if plan.strategy == "hash" and plan.equi is not None:
            # Re-resolve the planner's equi-conjunct refs against the
            # runtime layouts; fall back to a nested loop when either
            # side fails to resolve uniquely.
            left_ref, right_ref = plan.equi
            left_pos = _resolve_position(left_ref, left.columns)
            right_pos = _resolve_position(right_ref, right.columns)
            if left_pos is not None and right_pos is not None:
                equi = (left_pos, right_pos)
        if equi is not None:
            # Hash join: build on the right input, probe with the left.
            # The full ON condition is still evaluated per candidate
            # pair, so extra conjuncts remain correct.
            left_pos, right_pos = equi
            buckets: dict[Any, list[int]] = {}
            for rindex, rrow in enumerate(right.rows):
                key = rrow[right_pos]
                if key is not None:
                    buckets.setdefault(key, []).append(rindex)
            for lrow in left.rows:
                matched = False
                key = lrow[left_pos]
                for rindex in buckets.get(key, ()) if key is not None else ():
                    rrow = right.rows[rindex]
                    combined = lrow + rrow
                    if self._evaluator.evaluate_truth(
                        condition, ctx.with_values(combined)
                    ):
                        matched = True
                        matched_right.add(rindex)
                        rows.append(combined)
                if not matched and plan.join_type in ("LEFT", "FULL"):
                    rows.append(lrow + null_right)
        else:
            for lrow in left.rows:
                matched = False
                for rindex, rrow in enumerate(right.rows):
                    combined = lrow + rrow
                    ok = (
                        condition is None
                        or self._evaluator.evaluate_truth(
                            condition, ctx.with_values(combined)
                        )
                    )
                    if ok:
                        matched = True
                        matched_right.add(rindex)
                        rows.append(combined)
                if not matched and plan.join_type in ("LEFT", "FULL"):
                    rows.append(lrow + null_right)
        if plan.join_type in ("RIGHT", "FULL"):
            for rindex, rrow in enumerate(right.rows):
                if rindex not in matched_right:
                    rows.append(null_left + rrow)
        return Relation(columns, rows)

    # -- DML / DDL -----------------------------------------------------------

    def _execute_insert(self, statement: nodes.Insert) -> Relation:
        table = self._storage(statement.table)
        schema = table.schema
        if statement.columns:
            indices = [
                schema.column_index(name) for name in statement.columns
            ]
        else:
            indices = list(range(len(schema.columns)))

        def build_row(values: Sequence[Any]) -> list[Any]:
            if len(values) != len(indices):
                raise ExecutionError(
                    f"INSERT expects {len(indices)} values, got {len(values)}"
                )
            full: list[Any] = []
            provided = dict(zip(indices, values))
            for position, column in enumerate(schema.columns):
                if position in provided:
                    full.append(provided[position])
                else:
                    full.append(column.default)
            return full

        count = 0
        empty_ctx = RowContext([], [])
        if statement.query is not None:
            result = self.execute_select(statement.query)
            for row in result.rows:
                table.insert(build_row(row))
                count += 1
        else:
            for value_exprs in statement.rows:
                values = [
                    self._evaluator.evaluate(expr, empty_ctx)
                    for expr in value_exprs
                ]
                table.insert(build_row(values))
                count += 1
        return _rowcount_relation(count)

    def _execute_update(self, statement: nodes.Update) -> Relation:
        table = self._storage(statement.table)
        schema = table.schema
        assignments = [
            (schema.column_index(name), expr)
            for name, expr in statement.assignments
        ]
        columns = [
            (statement.table, column.name) for column in schema.columns
        ]
        ctx = RowContext(columns, [None] * len(columns))
        new_rows: list[tuple[Any, ...]] = []
        count = 0
        for row in table.rows():
            row_ctx = ctx.with_values(row)
            matches = statement.where is None or self._evaluator.evaluate_truth(
                statement.where, row_ctx
            )
            if matches:
                updated = list(row)
                for index, expr in assignments:
                    updated[index] = self._evaluator.evaluate(expr, row_ctx)
                new_rows.append(tuple(updated))
                count += 1
            else:
                new_rows.append(row)
        table.replace_rows(new_rows)
        return _rowcount_relation(count)

    def _execute_delete(self, statement: nodes.Delete) -> Relation:
        table = self._storage(statement.table)
        columns = [
            (statement.table, column.name)
            for column in table.schema.columns
        ]
        ctx = RowContext(columns, [None] * len(columns))
        kept: list[tuple[Any, ...]] = []
        count = 0
        for row in table.rows():
            matches = statement.where is None or self._evaluator.evaluate_truth(
                statement.where, ctx.with_values(row)
            )
            if matches:
                count += 1
            else:
                kept.append(row)
        table.replace_rows(kept)
        return _rowcount_relation(count)

    def _execute_create(self, statement: nodes.CreateTable) -> Relation:
        if self._catalog.has_table(statement.name):
            if statement.if_not_exists:
                return _rowcount_relation(0)
            raise CatalogError(f"table {statement.name!r} already exists")
        empty_ctx = RowContext([], [])
        columns = []
        for definition in statement.columns:
            default = None
            if definition.default is not None:
                default = self._evaluator.evaluate(
                    definition.default, empty_ctx
                )
            columns.append(
                ColumnSchema(
                    name=definition.name,
                    data_type=DataType.from_name(definition.type_name),
                    not_null=definition.not_null,
                    primary_key=definition.primary_key,
                    unique=definition.unique,
                    default=default,
                )
            )
        schema = TableSchema(statement.name, columns)
        self._catalog.create_table(schema)
        self._tables[statement.name.lower()] = Table(schema)
        return _rowcount_relation(0)

    def _execute_drop(self, statement: nodes.DropTable) -> Relation:
        if not self._catalog.has_table(statement.name):
            if statement.if_exists:
                return _rowcount_relation(0)
            raise CatalogError(f"no table named {statement.name!r}")
        self._catalog.drop_table(statement.name)
        del self._tables[statement.name.lower()]
        return _rowcount_relation(0)

    def _execute_create_index(self, statement: nodes.CreateIndex) -> Relation:
        if self._catalog.index(statement.name) is not None:
            raise ExecutionError(
                f"index {statement.name!r} already exists"
            )
        table = self._storage(statement.table)
        table.create_secondary_index(
            statement.name, statement.columns, statement.kind
        )
        self._catalog.register_index(
            IndexInfo(
                name=statement.name,
                table=statement.table,
                columns=tuple(statement.columns),
                kind=statement.kind,
            )
        )
        return _rowcount_relation(0)

    def _execute_drop_index(self, statement: nodes.DropIndex) -> Relation:
        info = self._catalog.index(statement.name)
        if info is not None:
            self._catalog.drop_index(statement.name)
            self._storage(info.table).drop_secondary_index(info.name)
            return _rowcount_relation(0)
        # Indexes created through the storage API may lack catalog
        # metadata; fall back to a table-level search.
        for table in self._tables.values():
            if statement.name in table.index_names():
                table.drop_secondary_index(statement.name)
                return _rowcount_relation(0)
        raise ExecutionError(f"no index named {statement.name!r}")

    # -- EXPLAIN -----------------------------------------------------------

    def explain(self, select: nodes.Select) -> Relation:
        """Describe the plan the executor would use (no execution)."""
        lines = self._explain_lines(select, 0)
        return Relation([(None, "plan")], [(line,) for line in lines])

    def _explain_lines(self, select: nodes.Select, depth: int) -> list[str]:
        """Render one select (and its WITH clause) as plan lines.

        CTE bodies are *planned* but never run: phantom scope frames
        carry only the output column names, so the main query's plan
        resolves CTE references exactly as execution would.
        """
        if not select.ctes:
            return self._explain_query_lines(select, depth)
        pad = "  " * depth
        frame: dict[str, _CteSlot] = {}
        self._cte_stack.append(frame)
        try:
            lines: list[str] = []
            for cte in select.ctes:
                key = cte.name.lower()
                if key in frame:
                    raise ExecutionError(
                        f"duplicate CTE name {cte.name!r} in WITH clause"
                    )
                lines.append(f"{pad}Cte {cte.name}:")
                lines.extend(self._explain_lines(cte.query, depth + 1))
                columns = (
                    [name.lower() for name in cte.columns]
                    if cte.columns
                    else output_columns(cte.query)
                )
                frame[key] = _CteSlot(cte.name, None, columns)
            lines.extend(self._explain_query_lines(select, depth))
            return lines
        finally:
            self._cte_stack.pop()

    def _explain_query_lines(
        self, select: nodes.Select, depth: int
    ) -> list[str]:
        plan = self._build_plan(select)
        return render_plan(plan, depth, render_subselect=self._explain_lines)

    # -- helpers -----------------------------------------------------------

    def _storage(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError(f"no table named {name!r}")
        return table

    def _run_subquery(
        self, select: nodes.Select, outer: Optional[RowContext]
    ) -> Relation:
        return self.execute_select(select, outer)

    def _expand_stars(
        self,
        items: tuple[nodes.SelectItem, ...],
        columns: list[tuple[Optional[str], str]],
    ) -> list[nodes.SelectItem]:
        expanded: list[nodes.SelectItem] = []
        for item in items:
            expr = item.expression
            if isinstance(expr, nodes.Star):
                for binding, name in columns:
                    if expr.table is not None and (
                        binding is None
                        or binding.lower() != expr.table.lower()
                    ):
                        continue
                    expanded.append(
                        nodes.SelectItem(nodes.ColumnRef(name, binding))
                    )
                continue
            expanded.append(item)
        return expanded


class _GroupEvaluator:
    """Evaluator view that substitutes aggregate results by call shape."""

    def __init__(
        self, base: Evaluator, aggregate_values: dict[str, Any]
    ) -> None:
        self._base = base
        self._values = aggregate_values

    def evaluate(self, expr: nodes.Expression, ctx: RowContext) -> Any:
        if isinstance(expr, nodes.FunctionCall) and is_aggregate_function(
            expr.name
        ):
            key = _agg_key(expr)
            if key in self._values:
                return self._values[key]
            raise ExecutionError(
                f"aggregate {expr.to_sql()} was not accumulated"
            )
        if isinstance(expr, nodes.BinaryOp):
            left = self.evaluate(expr.left, ctx)
            right = self.evaluate(expr.right, ctx)
            return self._base._binary(  # reuse scalar operator logic
                nodes.BinaryOp(expr.op, nodes.Literal(left), nodes.Literal(right)),
                ctx,
            )
        if isinstance(expr, nodes.UnaryOp):
            inner = self.evaluate(expr.operand, ctx)
            return self._base._unary(
                nodes.UnaryOp(expr.op, nodes.Literal(inner)), ctx
            )
        if isinstance(expr, nodes.Case):
            for condition, result in expr.branches:
                value = self.evaluate(condition, ctx)
                if value is not None and value:
                    return self.evaluate(result, ctx)
            if expr.default is not None:
                return self.evaluate(expr.default, ctx)
            return None
        if isinstance(expr, nodes.FunctionCall):
            from repro.sqlengine.functions import call_scalar

            args = [self.evaluate(arg, ctx) for arg in expr.args]
            return call_scalar(expr.name, args)
        if isinstance(expr, nodes.Cast):
            from repro.sqlengine.types import coerce as _coerce

            value = self.evaluate(expr.operand, ctx)
            return _coerce(value, DataType.from_name(expr.type_name))
        return self._base.evaluate(expr, ctx)


def _agg_key(call: nodes.FunctionCall) -> str:
    return call.to_sql().upper()


def _rowcount_relation(count: int) -> Relation:
    """DML statements report their affected-row count as a relation."""
    return Relation(columns=[(None, "rowcount")], rows=[(count,)])


def _apply_cte_columns(
    cte: nodes.CommonTableExpr, relation: Relation
) -> Relation:
    """Apply a CTE's declared column list, checking arity."""
    if not cte.columns:
        return relation
    if len(cte.columns) != len(relation.columns):
        raise ExecutionError(
            f"CTE {cte.name!r} declares {len(cte.columns)} columns but "
            f"its query returns {len(relation.columns)}"
        )
    return Relation([(None, name) for name in cte.columns], relation.rows)


def _resolve_position(
    ref: nodes.ColumnRef,
    columns: list[tuple[Optional[str], str]],
) -> Optional[int]:
    matches = [
        index
        for index, (binding, name) in enumerate(columns)
        if name.lower() == ref.name.lower()
        and (
            ref.table is None
            or (binding is not None and binding.lower() == ref.table.lower())
        )
    ]
    if len(matches) == 1:
        return matches[0]
    return None


def _uses_aggregates(
    items: list[nodes.SelectItem],
    having: Optional[nodes.Expression],
    order_by: tuple[nodes.OrderItem, ...],
) -> bool:
    for expr in _all_expressions(items, having, order_by):
        for sub in nodes.walk_expressions(expr):
            if isinstance(sub, nodes.FunctionCall) and is_aggregate_function(
                sub.name
            ):
                return True
    return False


def _collect_aggregates(
    items: list[nodes.SelectItem],
    having: Optional[nodes.Expression],
    order_by: tuple[nodes.OrderItem, ...],
) -> list[nodes.FunctionCall]:
    calls: dict[str, nodes.FunctionCall] = {}
    for expr in _all_expressions(items, having, order_by):
        for sub in nodes.walk_expressions(expr):
            if isinstance(sub, nodes.FunctionCall) and is_aggregate_function(
                sub.name
            ):
                calls.setdefault(_agg_key(sub), sub)
    return list(calls.values())


def _all_expressions(
    items: list[nodes.SelectItem],
    having: Optional[nodes.Expression],
    order_by: tuple[nodes.OrderItem, ...],
):
    for item in items:
        yield item.expression
    if having is not None:
        yield having
    for order in order_by:
        yield order.expression


def _resolve_output_reference(
    expr: nodes.Expression, items: list[nodes.SelectItem]
) -> nodes.Expression:
    """Map GROUP BY aliases/ordinals back to their select expressions."""
    if isinstance(expr, nodes.Literal) and isinstance(expr.value, int):
        ordinal = expr.value - 1
        if 0 <= ordinal < len(items):
            return items[ordinal].expression
    if isinstance(expr, nodes.ColumnRef) and expr.table is None:
        for item in items:
            if item.alias and item.alias.lower() == expr.name.lower():
                return item.expression
    return expr


def _order_extras(
    order_by: tuple[nodes.OrderItem, ...],
    items: list[nodes.SelectItem],
) -> list[nodes.Expression]:
    """ORDER BY expressions that are not plain output references."""
    extras = []
    for item in order_by:
        if _order_extra_needed(item, items):
            extras.append(item.expression)
    return extras


def _order_extra_positions(
    order_by: tuple[nodes.OrderItem, ...],
    items: list[nodes.SelectItem],
) -> dict[int, int]:
    positions: dict[int, int] = {}
    counter = 0
    for item in order_by:
        if _order_extra_needed(item, items):
            positions[id(item)] = counter
            counter += 1
    return positions


def _order_extra_needed(
    item: nodes.OrderItem, items: list[nodes.SelectItem]
) -> bool:
    expr = item.expression
    if isinstance(expr, nodes.Literal) and isinstance(expr.value, int):
        return False
    if isinstance(expr, nodes.ColumnRef) and expr.table is None:
        for select_item in items:
            if select_item.output_name.lower() == expr.name.lower():
                return False
    # Star select lists keep all source columns, so a plain column ref
    # resolves against the output either way; still carry an extra to be
    # safe for computed expressions.
    return True


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _distinct(relation: Relation) -> Relation:
    seen: set = set()
    rows: list[tuple[Any, ...]] = []
    for row in relation.rows:
        key = tuple(_hashable(v) for v in row)
        if key in seen:
            continue
        seen.add(key)
        rows.append(row)
    return Relation(relation.columns, rows)


def _apply_set_operator(op: str, left: Relation, right: Relation) -> Relation:
    if op == "UNION ALL":
        return Relation(left.columns, left.rows + right.rows)
    left_keys = [tuple(_hashable(v) for v in row) for row in left.rows]
    right_keys = {tuple(_hashable(v) for v in row) for row in right.rows}
    if op == "UNION":
        merged = _distinct(Relation(left.columns, left.rows + right.rows))
        return merged
    if op == "INTERSECT":
        rows = []
        seen: set = set()
        for key, row in zip(left_keys, left.rows):
            if key in right_keys and key not in seen:
                seen.add(key)
                rows.append(row)
        return Relation(left.columns, rows)
    if op == "EXCEPT":
        rows = []
        seen = set()
        for key, row in zip(left_keys, left.rows):
            if key not in right_keys and key not in seen:
                seen.add(key)
                rows.append(row)
        return Relation(left.columns, rows)
    raise ExecutionError(f"unknown set operator: {op}")


def _find_column(
    columns: list[tuple[Optional[str], str]], name: str
) -> Optional[int]:
    for index, (_binding, column_name) in enumerate(columns):
        if column_name == name:
            return index
    return None


def _invert(part: tuple) -> tuple:
    """Invert a sort_key part for descending order.

    NULLs are the smallest value (group 0), so inverting the group makes
    them sort last under DESC — matching SQLite semantics.
    """
    group, type_rank, value = part
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (-group, -type_rank, -value)
    if isinstance(value, str):
        return (-group, -type_rank, _InvertedString(value))
    return (-group, -type_rank, value)


class _InvertedString(str):
    """A string that sorts in reverse order."""

    def __lt__(self, other: str) -> bool:  # type: ignore[override]
        return str.__gt__(self, other)

    def __gt__(self, other: str) -> bool:  # type: ignore[override]
        return str.__lt__(self, other)

    def __le__(self, other: str) -> bool:  # type: ignore[override]
        return str.__ge__(self, other)

    def __ge__(self, other: str) -> bool:  # type: ignore[override]
        return str.__le__(self, other)
