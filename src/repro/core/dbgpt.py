"""The DBGPT facade."""

from __future__ import annotations

from typing import Optional

from repro.agents.memory import AgentMemory
from repro.cache.manager import configure_cache
from repro.apps.base import Application
from repro.apps.chat2data import Chat2DataApp
from repro.apps.chat2db import Chat2DbApp
from repro.apps.chat2excel import Chat2ExcelApp
from repro.apps.chat2viz import Chat2VizApp
from repro.apps.data_analysis import GenerativeAnalysisApp
from repro.apps.knowledge_qa import KnowledgeQAApp
from repro.apps.sql2text import Sql2TextApp
from repro.apps.text2sql import Text2SqlApp
from repro.core.config import DbGptConfig, ModelConfig
from repro.core.session import ChatSession
from repro.datasources.base import DataSource
from repro.datasources.excel_source import Workbook
from repro.datasources.registry import DataSourceRegistry
from repro.llm.chat_model import ChatModel
from repro.llm.embedding_model import EmbeddingModel
from repro.llm.planner_model import PlannerModel
from repro.llm.sql_coder import SqlCoderModel
from repro.rag.knowledge_base import KnowledgeBase
from repro.rag.loaders import Loader
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.server.middleware import (
    AuthMiddleware,
    LoggingMiddleware,
    Middleware,
    PrivacyMiddleware,
    TracingMiddleware,
)
from repro.server.service import DbGptServer
from repro.smmf.deploy import deploy
from repro.smmf.spec import ModelSpec


def _model_factory(config: ModelConfig):
    builders = {
        "sql-coder": lambda: SqlCoderModel(config.name),
        "chat": lambda: ChatModel(config.name),
        "planner": lambda: PlannerModel(config.name),
        "embedding": lambda: EmbeddingModel(config.name),
    }
    return builders[config.kind]


def build_source_apps(
    client,
    source: DataSource,
    memory: Optional[AgentMemory] = None,
    sql_model: str = "sql-coder",
) -> dict[str, Application]:
    """The standard application set over one datasource.

    Shared by the facade (its default source) and the tenant fabric
    (per-tenant sources, honoring the tenant's ``model_preference``
    via ``sql_model``). ``data_analysis`` needs an agent memory, so it
    only exists when one is supplied.
    """
    apps: dict[str, Application] = {
        "text2sql": Text2SqlApp(client, source, model=sql_model),
        "sql2text": Sql2TextApp(client),
        "chat2db": Chat2DbApp(client, source),
        "chat2data": Chat2DataApp(client, source),
        "chat2viz": Chat2VizApp(client, source),
    }
    if memory is not None:
        apps["data_analysis"] = GenerativeAnalysisApp(
            client, source, memory=memory
        )
    return apps


class DBGPT:
    """Boot and operate a complete DB-GPT instance.

    >>> # dbgpt = DBGPT.boot()
    >>> # dbgpt.register_source(EngineSource(db))
    >>> # dbgpt.chat("chat2db", "how many orders are there?")
    """

    def __init__(self, config: Optional[DbGptConfig] = None) -> None:
        self.config = config or DbGptConfig()
        #: Booting installs the instance's cache configuration as the
        #: process-wide manager all wired layers consult.
        self.cache = configure_cache(self.config.cache)
        self.controller, self.client = deploy(
            [
                ModelSpec(
                    model.name,
                    _model_factory(model),
                    replicas=model.replicas,
                    latency_ms=model.latency_ms,
                )
                for model in self.config.models
            ],
            serving=self.config.serving,
            resilience=self.config.resilience,
        )
        self.sources = DataSourceRegistry()
        self.knowledge = KnowledgeBase(name="dbgpt-knowledge")
        self.memory = AgentMemory(self.config.memory_path)
        self._apps: dict[str, Application] = {}
        self._sessions: dict[str, ChatSession] = {}
        self._default_source: Optional[DataSource] = None
        #: The multi-tenant session fabric; None unless
        #: ``config.tenancy.enabled`` (the disabled path never imports
        #: the subsystem, let alone runs it).
        self.fabric = None
        if self.config.tenancy.enabled:
            from repro.tenancy.fabric import TenantFabric

            self.fabric = TenantFabric(self, self.config.tenancy)

    @classmethod
    def boot(cls, config: Optional[DbGptConfig] = None) -> "DBGPT":
        return cls(config)

    # -- data registration ---------------------------------------------------

    def register_source(
        self, source: DataSource, default: bool = False
    ) -> None:
        """Register a data source and build its applications."""
        self.sources.register(source)
        if default or self._default_source is None:
            self._default_source = source
            self._build_source_apps(source)

    def register_workbook(self, workbook: Workbook) -> None:
        self._apps["chat2excel"] = Chat2ExcelApp(self.client, workbook)

    def load_knowledge(self, loader: Loader) -> int:
        """Index documents and (re)build the knowledge QA app."""
        count = self.knowledge.load(loader)
        self._apps["knowledge_qa"] = KnowledgeQAApp(
            self.client,
            self.knowledge,
            strategy=self.config.retrieval_strategy,
        )
        return count

    def add_documents(self, documents) -> int:
        count = self.knowledge.add_documents(documents)
        self._apps["knowledge_qa"] = KnowledgeQAApp(
            self.client,
            self.knowledge,
            strategy=self.config.retrieval_strategy,
        )
        return count

    def _build_source_apps(self, source: DataSource) -> None:
        self._apps.update(
            build_source_apps(self.client, source, memory=self.memory)
        )

    def default_source(self) -> Optional[DataSource]:
        """The source the per-source applications were built against."""
        return self._default_source

    # -- interaction -----------------------------------------------------------

    def app(self, name: str) -> Application:
        application = self._apps.get(name.lower())
        if application is None:
            raise KeyError(
                f"no app named {name!r}; available: {self.app_names()}"
            )
        return application

    def app_names(self) -> list[str]:
        return sorted(self._apps)

    def chat(self, app_name: str, text: str):
        """One-shot interaction with an application."""
        return self.app(app_name).chat(text)

    def stream_chat(self, app_name: str, text: str):
        """Streaming interaction: ``(chunk_iterator, response_getter)``.

        Chunks arrive as the turn is produced; once the iterator is
        exhausted ``response_getter()`` returns the full
        :class:`AppResponse` (``ok``, ``payload``, ``metadata``).
        """
        return self.app(app_name).stream_chat(text)

    def session(self, app_name: str) -> ChatSession:
        """Start (or resume) a chat session with an application."""
        key = app_name.lower()
        if key not in self._sessions:
            self._sessions[key] = ChatSession(self.app(key))
        return self._sessions[key]

    # -- tenancy -------------------------------------------------------------

    def _require_fabric(self):
        if self.fabric is None:
            raise RuntimeError(
                "tenancy is disabled; boot with "
                "DbGptConfig(tenancy=TenancyConfig(enabled=True))"
            )
        return self.fabric

    def register_tenant(self, tenant_id: str, **kwargs):
        """Register a tenant on the fabric (tenancy must be enabled).

        See :meth:`repro.tenancy.fabric.TenantFabric.register_tenant`
        for the resource-binding keywords (``source``, ``documents``,
        ``model_preference``, ``quota``).
        """
        return self._require_fabric().register_tenant(tenant_id, **kwargs)

    def tenant_chat(
        self,
        tenant_id: str,
        text: str,
        session_id: Optional[str] = None,
        app_name: Optional[str] = None,
    ):
        """One tenant turn through the fabric; returns
        ``(session_record, response)``."""
        return self._require_fabric().chat(
            tenant_id, text, session_id=session_id, app_name=app_name
        )

    def tenants(self) -> list[dict]:
        """Control-plane rows for every registered tenant."""
        return self._require_fabric().describe()

    # -- server layer -----------------------------------------------------------

    def server(
        self, middlewares: Optional[list[Middleware]] = None
    ) -> DbGptServer:
        """Mount all applications behind the HTTP-shaped server.

        With tenancy enabled the ``/v1`` multi-tenant surface mounts
        too, and per-tenant bearer tokens (``auth_principals``)
        authenticate callers as their tenant.
        """
        if middlewares is None:
            # Tracing sits outermost so auth rejections and privacy
            # scrubbing are visible inside the request span.
            middlewares = [TracingMiddleware(), LoggingMiddleware()]
            if self.config.auth_token or self.config.auth_principals:
                middlewares.append(
                    AuthMiddleware(
                        self.config.auth_token or "",
                        principals=self.config.auth_principals,
                    )
                )
            if self.config.privacy:
                middlewares.append(PrivacyMiddleware())
        server = DbGptServer(middlewares, fabric=self.fabric)
        for application in self._apps.values():
            server.register_app(application)
        return server

    # -- observability -------------------------------------------------------

    def model_metrics(self) -> dict:
        return self.controller.metrics.snapshot()

    @property
    def tracer(self):
        """The process-wide tracer all layers report into."""
        return get_tracer()

    def last_trace(self):
        """Spans of the most recently completed request trace."""
        return get_tracer().last_trace()

    def metrics_snapshot(self) -> dict:
        """Every unified metric (see ``docs/observability.md``)."""
        return get_registry().snapshot()

    def health_snapshot(self) -> list:
        """Per-worker health rows (alive/healthy/breaker state)."""
        return self.controller.health_snapshot()

    # -- serving -------------------------------------------------------------

    def serving_stats(self) -> dict:
        """Scheduler statistics (``{"enabled": False}`` without one)."""
        return self.client.serving_stats()

    def shutdown(self) -> None:
        """Stop background serving threads (no-op when none run)."""
        if self.controller.scheduler is not None:
            self.controller.scheduler.close()

    # -- caching -------------------------------------------------------------

    def cache_stats(self) -> dict:
        """Per-tier cache statistics (see ``docs/caching.md``)."""
        return self.cache.stats()

    def clear_caches(self) -> int:
        """Drop every cached entry; returns how many were dropped."""
        return self.cache.clear()
