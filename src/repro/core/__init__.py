"""The DB-GPT core facade: one object wiring all four layers.

:class:`DBGPT` boots the module layer (SMMF model serving, RAG
knowledge base, agents), registers data sources, instantiates the
application layer, and optionally mounts everything behind the server
layer — the "complete solution" packaging the paper demonstrates.
"""

from repro.core.config import DbGptConfig, ModelConfig
from repro.core.dbgpt import DBGPT
from repro.core.session import ChatSession, ChatTurn

__all__ = [
    "ChatSession",
    "ChatTurn",
    "DBGPT",
    "DbGptConfig",
    "ModelConfig",
]
