"""Configuration for booting a DB-GPT instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.config import CacheConfig
from repro.resilience.config import ResilienceConfig
from repro.serving.config import ServingConfig
from repro.tenancy.config import TenancyConfig


@dataclass
class ModelConfig:
    """One model deployment entry.

    ``kind`` selects the simulated architecture: ``sql-coder``,
    ``chat``, ``planner`` or ``embedding``.
    """

    name: str
    kind: str
    replicas: int = 1
    latency_ms: float = 10.0

    _KINDS = ("sql-coder", "chat", "planner", "embedding")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown model kind {self.kind!r}; known: {self._KINDS}"
            )


@dataclass
class DbGptConfig:
    """Boot configuration.

    Defaults deploy the standard private-model trio the applications
    expect (sql-coder, chat, planner).
    """

    models: list[ModelConfig] = field(
        default_factory=lambda: [
            ModelConfig("sql-coder", "sql-coder", replicas=2),
            ModelConfig("chat", "chat"),
            ModelConfig("planner", "planner"),
        ]
    )
    #: Scrub PII from user messages at the server boundary.
    privacy: bool = True
    #: Bearer token for the server layer (None disables auth).
    auth_token: Optional[str] = None
    #: Per-tenant bearer tokens: token -> principal (tenant id). Each
    #: authenticated request is stamped with its principal, which the
    #: ``/v1`` tenant surface uses for ownership checks.
    auth_principals: Optional[dict[str, str]] = None
    #: File path for the agent communication archive (None = memory only).
    memory_path: Optional[str] = None
    #: Default retrieval strategy for knowledge QA.
    retrieval_strategy: str = "hybrid"
    #: Multi-tier cache configuration (see ``docs/caching.md``).
    #: ``CacheConfig.disabled()`` turns the subsystem off entirely.
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Concurrent-serving scheduler (see ``docs/serving.md``). Off by
    #: default: single-threaded callers gain nothing from a batching
    #: window; enable it (``ServingConfig(enabled=True)``) when many
    #: sessions hit one instance concurrently.
    serving: ServingConfig = field(default_factory=ServingConfig)
    #: Resilience layer — retry/backoff, per-worker circuit breakers,
    #: health recovery and degraded routing (``docs/resilience.md``).
    #: Off by default: the disabled path is behaviorally identical to
    #: a build without the subsystem.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Multi-tenant session fabric — registry + shard router, session
    #: store, admission quotas, partitioned caches (``docs/tenancy.md``).
    #: Off by default; the disabled path is behaviorally identical to a
    #: build without the subsystem.
    tenancy: TenancyConfig = field(default_factory=TenancyConfig)

    def model_names(self) -> list[str]:
        return [model.name for model in self.models]
