"""Chat sessions: multi-turn interaction state per application."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import Application, AppResponse

_session_ids = itertools.count(1)


@dataclass
class ChatTurn:
    """One user/assistant exchange."""

    user: str
    assistant: str
    ok: bool
    metadata: dict = field(default_factory=dict)


class ChatSession:
    """A conversation with one application (Figure 3, areas 1 and 7).

    Keeps the turn history so the front-end can re-render the thread
    and users can continue engaging with their data.
    """

    def __init__(self, app: Application, session_id: Optional[str] = None) -> None:
        self.app = app
        self.session_id = session_id or f"session-{next(_session_ids)}"
        self.turns: list[ChatTurn] = []

    def send(self, text: str) -> AppResponse:
        response = self.app.chat(text)
        self.turns.append(
            ChatTurn(
                user=text,
                assistant=response.text,
                ok=response.ok,
                metadata=dict(response.metadata),
            )
        )
        return response

    def transcript(self) -> str:
        lines = []
        for turn in self.turns:
            lines.append(f"user> {turn.user}")
            lines.append(f"{self.app.name}> {turn.assistant}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.turns)
