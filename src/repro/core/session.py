"""Chat sessions: multi-turn interaction state per application.

Since the tenancy PR the conversation state lives in a
:class:`SessionRecord` — the unit the server-side session store
(:mod:`repro.tenancy.sessions`) persists, evicts and expires — and
:class:`ChatSession` is a thin handle binding a record to one
application. A standalone ``ChatSession`` (no store) simply owns a
detached record, so the embedded API is unchanged.

Session ids derive from the injectable :mod:`repro.runtime` rng, never
from module-global counters: the old ``itertools.count`` was shared
across every ``DBGPT`` instance in the process, which made ids
test-order-dependent and collision-prone across stores. Turn appends
are serialized by a per-record lock, so two threads sending into the
same session cannot interleave their history entries.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import Application, AppResponse
from repro.cache.keys import instance_token
from repro.runtime import default_rng

#: Tenant id recorded on sessions created outside any tenant fabric.
DEFAULT_TENANT = "-"


def new_session_id(rng: Optional[random.Random] = None) -> str:
    """A fresh session id from an injectable rng.

    Callers that care about reproducible ids (stores, tests) pass
    their own generator; without one, a generator seeded with a
    process-unique instance token keeps ids distinct across every
    store and facade in the process.
    """
    if rng is None:
        rng = default_rng(instance_token())
    return f"session-{rng.getrandbits(48):012x}"


@dataclass
class ChatTurn:
    """One user/assistant exchange."""

    user: str
    assistant: str
    ok: bool
    metadata: dict = field(default_factory=dict)


class SessionRecord:
    """Server-side state of one conversation.

    ``turns`` is guarded by ``lock`` (held across the whole turn, so
    concurrent senders serialize); ``last_active`` / ``inflight`` are
    bookkeeping owned by the session store, which guards them with its
    own lock.
    """

    def __init__(
        self,
        session_id: str,
        app_name: str = "",
        tenant_id: str = DEFAULT_TENANT,
        created_at: float = 0.0,
    ) -> None:
        self.session_id = session_id
        self.app_name = app_name
        self.tenant_id = tenant_id
        self.created_at = created_at
        self.last_active = created_at
        self.inflight = 0
        self.turns: list[ChatTurn] = []
        self.lock = threading.Lock()

    def append_turn(self, turn: ChatTurn) -> None:
        """Record one completed exchange (caller holds ``lock``)."""
        self.turns.append(turn)

    def __len__(self) -> int:
        return len(self.turns)


class ChatSession:
    """A conversation with one application (Figure 3, areas 1 and 7).

    Keeps the turn history so the front-end can re-render the thread
    and users can continue engaging with their data. The history lives
    in a :class:`SessionRecord`; store-backed sessions share theirs
    with the server-side session store.
    """

    def __init__(
        self,
        app: Application,
        session_id: Optional[str] = None,
        record: Optional[SessionRecord] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.app = app
        if record is None:
            record = SessionRecord(
                session_id or new_session_id(rng), app_name=app.name
            )
        self.record = record

    @property
    def session_id(self) -> str:
        return self.record.session_id

    @property
    def turns(self) -> list[ChatTurn]:
        return self.record.turns

    def send(self, text: str) -> AppResponse:
        """One turn; concurrent senders serialize on the record lock,
        so turn ordering in the history matches execution order."""
        with self.record.lock:
            response = self.app.chat(text)
            self.record.append_turn(
                ChatTurn(
                    user=text,
                    assistant=response.text,
                    ok=response.ok,
                    metadata=dict(response.metadata),
                )
            )
        return response

    def transcript(self) -> str:
        lines = []
        for turn in list(self.record.turns):
            lines.append(f"user> {turn.user}")
            lines.append(f"{self.app.name}> {turn.assistant}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.record.turns)
