"""The local communication archive.

The paper: "DB-GPT's Multi-Agent framework archives the entire
communication history among its agents within a local storage system,
thereby significantly enhancing the reliability of the generated
content." Every message passes through here; the archive persists to a
JSON file and is queryable by conversation, agent and keyword — the
consistency benchmark (P6) replays answers from it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from repro.agents.messages import AgentMessage


class AgentMemory:
    """Append-only message archive with optional file persistence."""

    def __init__(self, path: Optional[pathlib.Path | str] = None) -> None:
        self._messages: list[AgentMessage] = []
        self._path = pathlib.Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._messages)

    def append(self, message: AgentMessage) -> None:
        self._messages.append(message)
        if self._path is not None:
            self._persist()

    def conversation(self, conversation_id: str) -> list[AgentMessage]:
        return [
            m for m in self._messages
            if m.conversation_id == conversation_id
        ]

    def by_agent(self, name: str) -> list[AgentMessage]:
        return [
            m for m in self._messages
            if m.sender == name or m.recipient == name
        ]

    def search(self, keyword: str) -> list[AgentMessage]:
        lowered = keyword.lower()
        return [
            m for m in self._messages if lowered in m.content.lower()
        ]

    def last_answer(
        self, conversation_id: str, sender: Optional[str] = None
    ) -> Optional[AgentMessage]:
        """Most recent message in a conversation (optionally by sender)."""
        for message in reversed(self.conversation(conversation_id)):
            if sender is None or message.sender == sender:
                return message
        return None

    def recall_similar(
        self, content: str, sender: Optional[str] = None
    ) -> Optional[AgentMessage]:
        """Find an archived answer to an (almost) identical request.

        This is the reliability mechanism: before re-deriving an
        answer, agents check whether the same question was already
        answered this session and reuse the archived result.
        """
        normalized = _normalize(content)
        for message in reversed(self._messages):
            if sender is not None and message.sender != sender:
                continue
            if _normalize(message.metadata.get("request", "")) == normalized:
                return message
        return None

    def conversation_ids(self) -> list[str]:
        seen: list[str] = []
        for message in self._messages:
            if message.conversation_id not in seen:
                seen.append(message.conversation_id)
        return seen

    def clear(self) -> None:
        self._messages.clear()
        if self._path is not None:
            self._persist()

    # -- persistence -------------------------------------------------------

    def _persist(self) -> None:
        payload = [m.to_dict() for m in self._messages]
        self._path.write_text(json.dumps(payload, ensure_ascii=False))

    def _load(self) -> None:
        payload = json.loads(self._path.read_text())
        self._messages = [AgentMessage.from_dict(item) for item in payload]


def _normalize(text: str) -> str:
    return " ".join(str(text).lower().split())
