"""The local communication archive.

The paper: "DB-GPT's Multi-Agent framework archives the entire
communication history among its agents within a local storage system,
thereby significantly enhancing the reliability of the generated
content." Every message passes through here; the archive persists to a
JSON file and is queryable by conversation, agent and keyword — the
consistency benchmark (P6) replays answers from it.

The archive is **thread-safe**: concurrent agent teams share one
memory, so every mutation and every read runs under one lock. Reads
return snapshots (fresh lists) so callers can iterate while other
teams keep appending, and ``_persist_locked`` serializes the message
list to disk while still holding the lock — a stale payload can never
overwrite a newer one (the lost-update race the unlocked version had
under concurrent appends).
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Optional

from repro.agents.messages import AgentMessage


class AgentMemory:
    """Append-only message archive with optional file persistence."""

    def __init__(self, path: Optional[pathlib.Path | str] = None) -> None:
        self._lock = threading.RLock()
        self._messages: list[AgentMessage] = []
        self._path = pathlib.Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            with self._lock:
                self._load_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._messages)

    def append(self, message: AgentMessage) -> None:
        with self._lock:
            self._messages.append(message)
            if self._path is not None:
                self._persist_locked()

    def snapshot(self) -> list[AgentMessage]:
        """A point-in-time copy of the full archive."""
        with self._lock:
            return list(self._messages)

    def conversation(self, conversation_id: str) -> list[AgentMessage]:
        with self._lock:
            return [
                m for m in self._messages
                if m.conversation_id == conversation_id
            ]

    def by_agent(self, name: str) -> list[AgentMessage]:
        with self._lock:
            return [
                m for m in self._messages
                if m.sender == name or m.recipient == name
            ]

    def search(self, keyword: str) -> list[AgentMessage]:
        lowered = keyword.lower()
        with self._lock:
            return [
                m for m in self._messages if lowered in m.content.lower()
            ]

    def last_answer(
        self, conversation_id: str, sender: Optional[str] = None
    ) -> Optional[AgentMessage]:
        """Most recent message in a conversation (optionally by sender)."""
        for message in reversed(self.conversation(conversation_id)):
            if sender is None or message.sender == sender:
                return message
        return None

    def recall_similar(
        self, content: str, sender: Optional[str] = None
    ) -> Optional[AgentMessage]:
        """Find an archived answer to an (almost) identical request.

        This is the reliability mechanism: before re-deriving an
        answer, agents check whether the same question was already
        answered this session and reuse the archived result.
        """
        normalized = _normalize(content)
        for message in reversed(self.snapshot()):
            if sender is not None and message.sender != sender:
                continue
            if _normalize(message.metadata.get("request", "")) == normalized:
                return message
        return None

    def conversation_ids(self) -> list[str]:
        seen: list[str] = []
        for message in self.snapshot():
            if message.conversation_id not in seen:
                seen.append(message.conversation_id)
        return seen

    def clear(self) -> None:
        with self._lock:
            self._messages.clear()
            if self._path is not None:
                self._persist_locked()

    # -- persistence -------------------------------------------------------

    def _persist_locked(self) -> None:
        payload = [m.to_dict() for m in self._messages]
        self._path.write_text(json.dumps(payload, ensure_ascii=False))

    def _load_locked(self) -> None:
        payload = json.loads(self._path.read_text())
        self._messages = [AgentMessage.from_dict(item) for item in payload]


def _normalize(text: str) -> str:
    return " ".join(str(text).lower().split())
