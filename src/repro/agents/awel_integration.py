"""AWEL <-> agents: each agent as a workflow operator.

The paper's protocol layer: "DB-GPT's AWEL models each agent as a
distinct operator, thus enabling users to intricately design their
agent-based workflows ... by interconnecting multiple agents to
construct a DAG."

:class:`AgentOperator` wraps any :class:`ConversableAgent`;
:func:`build_analysis_dag` expresses the Figure 3 analysis flow as an
explicit DAG — the declarative alternative to the imperative
:class:`~repro.agents.team.DataAnalysisTeam` — and
:func:`run_analysis_workflow` executes it. Chart agents run as
independent DAG branches, so they execute concurrently under the async
runner.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.agents.base import AgentError, ConversableAgent
from repro.agents.data_agents import AggregatorAgent, ChartAgent
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.agents.planner import PlannerAgent
from repro.awel.dag import DAG, DAGContext
from repro.awel.operators import (
    InputOperator,
    JoinOperator,
    MapOperator,
    Operator,
)
from repro.awel.runner import WorkflowRunner
from repro.datasources.base import DataSource
from repro.viz.dashboard import Dashboard
from repro.viz.spec import ChartSpec


class AgentOperator(Operator):
    """An AWEL operator that delivers its input to one agent.

    The upstream value becomes the message content (strings) or the
    message metadata (dicts with a ``content`` key); the operator's
    output is the agent's reply message.
    """

    def __init__(
        self,
        agent: ConversableAgent,
        conversation_id: str = "awel",
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.agent = agent
        self.conversation_id = conversation_id

    async def execute(self, ctx: DAGContext, inputs: list[Any]) -> Any:
        if len(inputs) != 1:
            raise AgentError(
                f"agent operator {self.node_id!r} expects one input"
            )
        value = inputs[0]
        if isinstance(value, AgentMessage):
            content = value.content
            metadata = dict(value.metadata)
        elif isinstance(value, dict):
            content = str(value.get("content", ""))
            metadata = {k: v for k, v in value.items() if k != "content"}
        else:
            content = str(value)
            metadata = {}
        ctx.tick(self.cost)
        message = AgentMessage(
            sender="workflow",
            recipient=self.agent.name,
            content=content,
            conversation_id=self.conversation_id,
            metadata=metadata,
        )
        self.agent.memory.append(message)
        reply = self.agent.receive(message)
        self.agent.memory.append(reply)
        return reply


def build_analysis_dag(
    source: DataSource,
    llm_client,
    memory: Optional[AgentMemory] = None,
    dimensions: Optional[list[dict[str, str]]] = None,
    measure: str = "amount",
) -> tuple[DAG, AgentMemory]:
    """Declare the Figure 3 analysis flow as an AWEL DAG.

    ``dimensions`` defaults to the paper's three (category/donut,
    user/bar, month/area). Layout::

        goal -> planner -+-> chart-agent-1 -+
                         +-> chart-agent-2 -+-> aggregate -> dashboard
                         +-> chart-agent-3 -+
    """
    memory = memory if memory is not None else AgentMemory()
    if dimensions is None:
        dimensions = [
            {"dimension": "category", "chart_type": "donut"},
            {"dimension": "user", "chart_type": "bar"},
            {"dimension": "month", "chart_type": "area"},
        ]
    planner = PlannerAgent(
        memory, llm_client, schema=source.describe_schema()
    )
    aggregator = AggregatorAgent(memory, llm_client)

    with DAG("generative-analysis") as dag:
        goal_input = InputOperator(name="goal")
        plan_node = AgentOperator(planner, name="planner")
        goal_input >> plan_node

        chart_nodes = []
        for index, params in enumerate(dimensions, start=1):
            agent = ChartAgent(
                memory,
                llm_client,
                source,
                name=f"chart-agent-{index}",
                measure=measure,
            )
            prepare = MapOperator(
                _make_step_builder(dict(params)),
                name=f"step-{index}",
            )
            chart_node = AgentOperator(agent, name=f"chart-{index}")
            plan_node >> prepare >> chart_node
            chart_nodes.append(chart_node)

        collect = JoinOperator(
            lambda *replies: {
                "content": "aggregate the charts",
                "charts": [
                    reply.metadata["chart"]
                    for reply in replies
                    if reply.metadata.get("ok")
                ],
                "title": "Workflow analysis report",
            },
            name="collect",
        )
        for chart_node in chart_nodes:
            chart_node >> collect
        aggregate_node = AgentOperator(aggregator, name="aggregate")
        to_dashboard = MapOperator(_reply_to_dashboard, name="dashboard")
        collect >> aggregate_node >> to_dashboard
    return dag, memory


def _make_step_builder(params: dict[str, str]):
    def build(plan_reply: AgentMessage) -> dict[str, str]:
        # The plan reply certifies planning happened; each branch then
        # carries its own dimension parameters.
        if not plan_reply.metadata.get("plan"):
            raise AgentError("planner produced no plan")
        return {
            "content": f"produce the {params['dimension']} chart",
            **params,
        }

    return build


def _reply_to_dashboard(reply: AgentMessage) -> Dashboard:
    charts_json = reply.metadata.get("charts", [])
    if not charts_json:
        raise AgentError("aggregation produced no charts")
    return Dashboard(
        title=reply.metadata.get("title", "Workflow analysis report"),
        charts=[ChartSpec.from_json(text) for text in charts_json],
        narrative=reply.metadata.get("narrative", ""),
    )


def run_analysis_workflow(
    source: DataSource,
    llm_client,
    goal: str,
    memory: Optional[AgentMemory] = None,
    dimensions: Optional[list[dict[str, str]]] = None,
) -> Dashboard:
    """Build and run the declarative analysis workflow for ``goal``."""
    dag, _memory = build_analysis_dag(
        source, llm_client, memory=memory, dimensions=dimensions
    )
    ctx = WorkflowRunner(dag).run(goal)
    return ctx.results["dashboard"]
