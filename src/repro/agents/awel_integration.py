"""AWEL <-> agents: each agent as a workflow operator.

The paper's protocol layer: "DB-GPT's AWEL models each agent as a
distinct operator, thus enabling users to intricately design their
agent-based workflows ... by interconnecting multiple agents to
construct a DAG."

:class:`AgentOperator` wraps any :class:`ConversableAgent`;
:func:`build_analysis_dag` expresses the Figure 3 analysis flow as an
explicit DAG — the declarative alternative to the imperative
:class:`~repro.agents.team.DataAnalysisTeam` — and
:func:`run_analysis_workflow` executes it. Chart agents run as
independent DAG branches, so they execute concurrently under the async
runner.

:func:`compile_plan_dag` goes further (ROADMAP item 3): it compiles the
*planner's output* — a concrete :class:`~repro.agents.planner.Plan` —
into an executable DAG whose chart steps are operator chains
``schema-link → sqlgen → execute → viz`` feeding a shared
``collect → aggregate → narrative → report`` tail. The LLM-bound stages
(``sqlgen``, ``narrative``) await :meth:`ConversableAgent.aask_llm`, so
concurrent step chains (and concurrent teams) submit to the serving
scheduler together and share continuous batches instead of queueing
behind one another.
"""

from __future__ import annotations

import asyncio
import contextvars
import copy
import functools
import itertools
import json
from typing import Any, Optional, Sequence

from repro.agents.base import AgentError, ConversableAgent
from repro.agents.data_agents import AggregatorAgent, ChartAgent
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.agents.planner import Plan, PlannerAgent, PlanStep
from repro.awel.dag import DAG, DAGContext
from repro.awel.operators import (
    InputOperator,
    JoinOperator,
    MapOperator,
    Operator,
)
from repro.awel.runner import WorkflowRunner
from repro.datasources.base import DataSource
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.smmf.client import ClientError
from repro.viz.dashboard import Dashboard
from repro.viz.spec import ChartSpec


class AgentOperator(Operator):
    """An AWEL operator that delivers its input to one agent.

    The upstream value becomes the message content (strings) or the
    message metadata (dicts with a ``content`` key); the operator's
    output is the agent's reply message.
    """

    def __init__(
        self,
        agent: ConversableAgent,
        conversation_id: str = "awel",
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.agent = agent
        self.conversation_id = conversation_id

    async def execute(self, ctx: DAGContext, inputs: list[Any]) -> Any:
        if len(inputs) != 1:
            raise AgentError(
                f"agent operator {self.node_id!r} expects one input"
            )
        value = inputs[0]
        if isinstance(value, AgentMessage):
            content = value.content
            metadata = dict(value.metadata)
        elif isinstance(value, dict):
            content = str(value.get("content", ""))
            metadata = {k: v for k, v in value.items() if k != "content"}
        else:
            content = str(value)
            metadata = {}
        ctx.tick(self.cost)
        message = AgentMessage(
            sender="workflow",
            recipient=self.agent.name,
            content=content,
            conversation_id=self.conversation_id,
            metadata=metadata,
        )
        self.agent.memory.append(message)
        reply = await self.agent.areceive(message)
        self.agent.memory.append(reply)
        return reply


def build_analysis_dag(
    source: DataSource,
    llm_client,
    memory: Optional[AgentMemory] = None,
    dimensions: Optional[list[dict[str, str]]] = None,
    measure: str = "amount",
) -> tuple[DAG, AgentMemory]:
    """Declare the Figure 3 analysis flow as an AWEL DAG.

    ``dimensions`` defaults to the paper's three (category/donut,
    user/bar, month/area). Layout::

        goal -> planner -+-> chart-agent-1 -+
                         +-> chart-agent-2 -+-> aggregate -> dashboard
                         +-> chart-agent-3 -+
    """
    memory = memory if memory is not None else AgentMemory()
    if dimensions is None:
        dimensions = [
            {"dimension": "category", "chart_type": "donut"},
            {"dimension": "user", "chart_type": "bar"},
            {"dimension": "month", "chart_type": "area"},
        ]
    planner = PlannerAgent(
        memory, llm_client, schema=source.describe_schema()
    )
    aggregator = AggregatorAgent(memory, llm_client)

    with DAG("generative-analysis") as dag:
        goal_input = InputOperator(name="goal")
        plan_node = AgentOperator(planner, name="planner")
        goal_input >> plan_node

        chart_nodes = []
        for index, params in enumerate(dimensions, start=1):
            agent = ChartAgent(
                memory,
                llm_client,
                source,
                name=f"chart-agent-{index}",
                measure=measure,
            )
            prepare = MapOperator(
                _make_step_builder(dict(params)),
                name=f"step-{index}",
            )
            chart_node = AgentOperator(agent, name=f"chart-{index}")
            plan_node >> prepare >> chart_node
            chart_nodes.append(chart_node)

        collect = JoinOperator(
            lambda *replies: {
                "content": "aggregate the charts",
                "charts": [
                    reply.metadata["chart"]
                    for reply in replies
                    if reply.metadata.get("ok")
                ],
                "title": "Workflow analysis report",
            },
            name="collect",
        )
        for chart_node in chart_nodes:
            chart_node >> collect
        aggregate_node = AgentOperator(aggregator, name="aggregate")
        to_dashboard = MapOperator(_reply_to_dashboard, name="dashboard")
        collect >> aggregate_node >> to_dashboard
    return dag, memory


def _make_step_builder(params: dict[str, str]):
    def build(plan_reply: AgentMessage) -> dict[str, str]:
        # The plan reply certifies planning happened; each branch then
        # carries its own dimension parameters.
        if not plan_reply.metadata.get("plan"):
            raise AgentError("planner produced no plan")
        return {
            "content": f"produce the {params['dimension']} chart",
            **params,
        }

    return build


def _reply_to_dashboard(reply: AgentMessage) -> Dashboard:
    charts_json = reply.metadata.get("charts", [])
    if not charts_json:
        raise AgentError("aggregation produced no charts")
    return Dashboard(
        title=reply.metadata.get("title", "Workflow analysis report"),
        charts=[ChartSpec.from_json(text) for text in charts_json],
        narrative=reply.metadata.get("narrative", ""),
    )


def run_analysis_workflow(
    source: DataSource,
    llm_client,
    goal: str,
    memory: Optional[AgentMemory] = None,
    dimensions: Optional[list[dict[str, str]]] = None,
) -> Dashboard:
    """Build and run the declarative analysis workflow for ``goal``."""
    dag, _memory = build_analysis_dag(
        source, llm_client, memory=memory, dimensions=dimensions
    )
    ctx = WorkflowRunner(dag).run(goal)
    return ctx.results["dashboard"]


# ---------------------------------------------------------------------------
# Plan compilation (ROADMAP item 3): planner output -> executable DAG.
# ---------------------------------------------------------------------------


class PlanStageOperator(Operator):
    """Base for compiled-plan stages.

    Each stage execution runs inside an ``agent.step`` span (child of
    the team's ``agent.plan`` root) carrying the plan step number, the
    stage name and the executing agent, and is counted in
    ``agent_stage_runs_total``.
    """

    stage = "stage"

    def __init__(
        self,
        agent: ConversableAgent,
        step_no: int,
        conversation_id: str,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.agent = agent
        self.step_no = step_no
        self.conversation_id = conversation_id

    async def execute(self, ctx: DAGContext, inputs: list[Any]) -> Any:
        ctx.tick(self.cost)
        with get_tracer().span(
            "agent.step",
            step=self.step_no,
            stage=self.stage,
            agent=self.agent.name,
        ):
            result = await self.run_stage(ctx, inputs)
        get_registry().counter(
            "agent_stage_runs_total",
            "compiled-plan stage executions by stage and agent",
        ).inc(stage=self.stage, agent=self.agent.name)
        return result

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> Any:
        raise NotImplementedError

    def _archive_reply(self, state: dict, reply: AgentMessage) -> dict:
        self.agent.memory.append(reply)
        state["reply"] = reply
        return state

    async def _offload(self, fn, *args):
        """Run blocking work on the executor with the span context."""
        loop = asyncio.get_running_loop()
        call = functools.partial(fn, *args)
        return await loop.run_in_executor(
            None, contextvars.copy_context().run, call
        )


class SchemaLinkOperator(PlanStageOperator):
    """Stage 1 of a chart step: archive the request, link the schema.

    Replicates :meth:`ConversableAgent.receive` semantics: the archive
    is consulted first, and a recalled answer short-circuits the whole
    chain (the remaining stages pass the reply through untouched).
    """

    stage = "schema-link"

    def __init__(
        self,
        agent: ChartAgent,
        step: PlanStep,
        conversation_id: str,
        round_index: int,
        **kwargs: Any,
    ) -> None:
        super().__init__(agent, step.step, conversation_id, **kwargs)
        self.step = step
        self.round_index = round_index

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        step = self.step
        request = AgentMessage(
            sender="user",
            recipient=self.agent.name,
            content=(
                f"produce the chart for step {step.step}: "
                f"{step.description}"
            ),
            conversation_id=self.conversation_id,
            round=self.round_index,
            metadata=copy.deepcopy(step.params),
        )
        self.agent.memory.append(request)
        state: dict = {"step": step.step, "request": request, "reply": None}
        if self.agent.use_recall:
            recalled = self.agent.memory.recall_similar(
                request.content, sender=self.agent.name
            )
            if recalled is not None:
                reply = AgentMessage(
                    sender=self.agent.name,
                    recipient=request.sender,
                    content=recalled.content,
                    conversation_id=request.conversation_id,
                    round=request.round,
                    metadata={
                        **recalled.metadata,
                        "recalled_from": recalled.message_id,
                        "request": request.content,
                    },
                )
                return self._archive_reply(state, reply)
        link = self.agent.link_schema(request)
        if not link["ok"]:
            return self._archive_reply(
                state, self.agent.unknown_dimension_reply(request, link)
            )
        state["link"] = link
        return state


class SqlGenOperator(PlanStageOperator):
    """Stage 2: text2sql through the async serving path.

    ``aask_llm`` submits to the continuous-batching scheduler when the
    client exposes one, so sibling chart steps (and other teams) share
    batches. A transport failure that survives the client's own retry
    and failover budget becomes a recorded step failure, not a dead
    plan.
    """

    stage = "sqlgen"

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        state = inputs[0]
        if state["reply"] is not None:
            return state
        try:
            state["sql"] = await self.agent.aask_llm(
                state["link"]["prompt"], task="text2sql"
            )
        except ClientError as exc:
            return self._archive_reply(
                state,
                self.agent.reply_to(
                    state["request"],
                    f"chart query generation failed: {exc}",
                    metadata={"ok": False, "error": str(exc)},
                ),
            )
        return state


class ExecuteOperator(PlanStageOperator):
    """Stage 3: run the SQL against the source (off the event loop)."""

    stage = "execute"

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        state = inputs[0]
        if state["reply"] is not None:
            return state
        state["result"] = await self._offload(
            self.agent.execute_chart, state["link"], state["sql"]
        )
        return state


class VizOperator(PlanStageOperator):
    """Stage 4: shape the result into the chart reply and archive it."""

    stage = "viz"

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        state = inputs[0]
        if state["reply"] is not None:
            return state
        reply = self.agent.chart_reply(
            state["request"], state["link"], state["sql"], state["result"]
        )
        return self._archive_reply(state, reply)


class ForecastStepOperator(PlanStageOperator):
    """A forecast plan step as a single (async) agent exchange."""

    stage = "forecast"

    def __init__(
        self,
        agent: ConversableAgent,
        step: PlanStep,
        conversation_id: str,
        round_index: int,
        **kwargs: Any,
    ) -> None:
        super().__init__(agent, step.step, conversation_id, **kwargs)
        self.step = step
        self.round_index = round_index

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        step = self.step
        request = AgentMessage(
            sender="user",
            recipient=self.agent.name,
            content=(
                f"produce the forecast for step {step.step}: "
                f"{step.description}"
            ),
            conversation_id=self.conversation_id,
            round=self.round_index,
            metadata=copy.deepcopy(step.params),
        )
        self.agent.memory.append(request)
        reply = await self.agent.areceive(request)
        state: dict = {"step": step.step, "request": request, "reply": None}
        return self._archive_reply(state, reply)


class AggregateOperator(PlanStageOperator):
    """Archive the aggregation request and assemble the dashboard."""

    stage = "aggregate"

    def __init__(
        self,
        agent: AggregatorAgent,
        plan: Plan,
        conversation_id: str,
        **kwargs: Any,
    ) -> None:
        super().__init__(agent, len(plan.steps), conversation_id, **kwargs)
        self.plan = plan

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        collected = inputs[0]
        request = AgentMessage(
            sender="user",
            recipient=self.agent.name,
            content=f"aggregate the report for: {self.plan.goal}",
            conversation_id=self.conversation_id,
            round=len(self.plan.steps),
            metadata={
                "charts": collected["charts"],
                "title": f"Report: {self.plan.goal}",
            },
        )
        self.agent.memory.append(request)
        dashboard, lines = self.agent.assemble(request)
        return {
            "request": request,
            "dashboard": dashboard,
            "lines": lines,
            "failures": collected["failures"],
        }


class NarrativeOperator(PlanStageOperator):
    """Refine the narrative via the async LLM path, archive the reply.

    A transport failure degrades to the plain-line narrative — the
    same fallback :class:`AggregatorAgent` applies synchronously.
    """

    stage = "narrative"

    async def run_stage(self, ctx: DAGContext, inputs: list[Any]) -> dict:
        state = inputs[0]
        lines = state["lines"]
        narrative = " ".join(lines)
        if self.agent.llm_client is not None:
            try:
                narrative = await self.agent.aask_llm(
                    self.agent.narrative_prompt(lines), task="summary"
                )
            except ClientError:
                pass
        reply = self.agent.finalize(
            state["request"], state["dashboard"], narrative
        )
        self.agent.memory.append(reply)
        return {
            "reply": reply,
            "dashboard": state["dashboard"],
            "failures": state["failures"],
        }


def _collect_step_states(*states: dict) -> dict:
    """Join the per-step chains: split chart specs from failures.

    States are re-ordered by plan step number — join input order is
    connection order, but the report contract (e.g. the forecast chart
    rendering last) is defined by the plan.
    """
    charts: list[str] = []
    failures: list[str] = []
    for state in sorted(states, key=lambda s: s["step"]):
        reply = state["reply"]
        if reply.metadata.get("ok") and "chart" in reply.metadata:
            charts.append(reply.metadata["chart"])
        else:
            failures.append(
                f"step {state['step']}: "
                f"{reply.metadata.get('error', 'failed')}"
            )
    if not charts:
        raise AgentError(f"no charts were produced; failures: {failures}")
    return {"charts": charts, "failures": failures}


def _to_report(state: dict) -> dict:
    return {"dashboard": state["dashboard"], "failures": state["failures"]}


def compile_plan_dag(
    plan: Plan,
    *,
    conversation_id: str,
    chart_agents: Sequence[ChartAgent],
    aggregator: AggregatorAgent,
    forecaster: Optional[ConversableAgent] = None,
    name: str = "compiled-plan",
) -> DAG:
    """Compile planner output into an executable AWEL DAG.

    Each executable plan step becomes its own operator chain —
    ``schema-link → sqlgen → execute → viz`` for chart steps (agents
    assigned round-robin, as the imperative team does), one
    :class:`ForecastStepOperator` for forecast steps — all feeding
    ``collect → aggregate → narrative → report``. Step chains are
    independent subgraphs, so the async runner executes them
    concurrently and their LLM calls coalesce in the serving scheduler.

    A failing step short-circuits its own chain into a failure reply
    that ``collect`` records; only a plan where *every* step failed
    raises (``no charts were produced``), matching the imperative
    team's contract. The final ``report`` node yields
    ``{"dashboard": Dashboard, "failures": [str, ...]}``.
    """
    executable = [
        step for step in plan.steps if step.action in ("chart", "forecast")
    ]
    if not executable:
        raise AgentError(
            "no charts were produced; the plan has no executable steps"
        )
    chart_cycle = itertools.cycle(chart_agents)
    with DAG(name) as dag:
        plan_input = InputOperator(name="plan")
        tails: list[Operator] = []
        for round_index, step in enumerate(executable, start=1):
            if step.action == "forecast":
                if forecaster is None:
                    raise AgentError(
                        f"plan step {step.step} needs a forecaster"
                    )
                node = ForecastStepOperator(
                    forecaster,
                    step,
                    conversation_id,
                    round_index,
                    name=f"forecast-{step.step}",
                )
                plan_input >> node
                tails.append(node)
                continue
            agent = next(chart_cycle)
            link = SchemaLinkOperator(
                agent,
                step,
                conversation_id,
                round_index,
                name=f"schema-link-{step.step}",
            )
            sqlgen = SqlGenOperator(
                agent, step.step, conversation_id,
                name=f"sqlgen-{step.step}",
            )
            execute = ExecuteOperator(
                agent, step.step, conversation_id,
                name=f"execute-{step.step}",
            )
            viz = VizOperator(
                agent, step.step, conversation_id,
                name=f"viz-{step.step}",
            )
            plan_input >> link >> sqlgen >> execute >> viz
            tails.append(viz)
        collect = JoinOperator(_collect_step_states, name="collect")
        for tail in tails:
            tail >> collect
        aggregate = AggregateOperator(
            aggregator, plan, conversation_id, name="aggregate"
        )
        narrative = NarrativeOperator(
            aggregator, len(plan.steps), conversation_id, name="narrative"
        )
        report = MapOperator(_to_report, name="report")
        collect >> aggregate >> narrative >> report
    return dag
