"""Time-series forecasting agent (paper §4 future work, item 1).

"Introducing powerful agents providing more powerful abilities, such as
time series predictions based on historical data."

:class:`SeasonalForecaster` fits trend + seasonal components with plain
least squares; :class:`ForecastAgent` pulls a monthly measure series
from the data source (through the same Text-to-SQL path every other
agent uses), fits the forecaster, and replies with the projection as an
area chart plus a backtest quality note.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.agents.base import AgentError, ConversableAgent
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.datasources.base import DataSource, DataSourceError
from repro.llm.prompts import build_text2sql_prompt
from repro.smmf.client import ClientError
from repro.viz.spec import ChartSpec, ChartType, DataPoint


@dataclass
class ForecastResult:
    history: list[float]
    predictions: list[float]
    backtest_mae: float
    naive_mae: float

    @property
    def beats_naive(self) -> bool:
        return self.backtest_mae <= self.naive_mae


class SeasonalForecaster:
    """Linear trend + additive seasonal components.

    Fit ``y_t = a + b*t + s[t mod period]`` jointly by ordinary least
    squares (intercept, trend, and phase dummies in one design matrix)
    — a two-stage fit would let correlated seasonality bias the trend.
    """

    def __init__(self, period: int = 12) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self._beta: Optional[np.ndarray] = None
        self._length = 0

    def _design(self, steps: np.ndarray) -> np.ndarray:
        columns = [np.ones_like(steps), steps]
        # Phase dummies with phase 0 as the reference level.
        for phase in range(1, self.period):
            columns.append(
                (steps.astype(int) % self.period == phase).astype(float)
            )
        return np.column_stack(columns)

    def fit(self, series: list[float]) -> "SeasonalForecaster":
        if len(series) < 2:
            raise ValueError("need at least two observations")
        y = np.asarray(series, dtype=np.float64)
        steps = np.arange(len(y), dtype=np.float64)
        design = self._design(steps)
        self._beta, *_rest = np.linalg.lstsq(design, y, rcond=None)
        self._length = len(y)
        return self

    def predict(self, horizon: int) -> list[float]:
        if self._beta is None:
            raise ValueError("fit() before predict()")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        steps = np.arange(
            self._length, self._length + horizon, dtype=np.float64
        )
        predictions = self._design(steps) @ self._beta
        return [float(v) for v in predictions]

    def backtest(self, series: list[float], holdout: int = 3) -> float:
        """Mean absolute error forecasting the last ``holdout`` points."""
        if len(series) <= holdout + 1:
            raise ValueError("series too short for the holdout")
        train, test = series[:-holdout], series[-holdout:]
        predictions = SeasonalForecaster(self.period).fit(train).predict(
            holdout
        )
        return float(
            np.mean(np.abs(np.asarray(predictions) - np.asarray(test)))
        )


def naive_backtest(series: list[float], holdout: int = 3) -> float:
    """MAE of the last-value-carried-forward baseline."""
    train, test = series[:-holdout], series[-holdout:]
    last = train[-1]
    return float(np.mean(np.abs(np.asarray(test) - last)))


class ForecastAgent(ConversableAgent):
    """Project a monthly measure forward (the future-work agent)."""

    def __init__(
        self,
        memory: AgentMemory,
        llm_client,
        source: DataSource,
        model: str = "sql-coder",
        name: str = "forecaster",
        measure: str = "amount",
        period: int = 12,
    ) -> None:
        super().__init__(
            name=name,
            profile="Predicts future values of a measure from history.",
            memory=memory,
            llm_client=llm_client,
            model=model,
        )
        self.source = source
        self.measure = measure
        self.period = period

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        horizon = int(message.metadata.get("horizon", 3))
        try:
            labels, series = self._history()
            result = self.forecast(horizon)
        except (AgentError, ClientError, DataSourceError, ValueError) as exc:
            return self.reply_to(
                message,
                f"I could not produce a forecast: {exc}",
                metadata={"ok": False, "error": str(exc)},
            )
        points = [
            DataPoint(label, value) for label, value in zip(labels, series)
        ]
        points += [
            DataPoint(f"+{step}", value)
            for step, value in enumerate(result.predictions, start=1)
        ]
        chart = ChartSpec(
            chart_type=ChartType.AREA,
            title=f"{self.measure} forecast (+{horizon})",
            points=points,
            metadata={"forecast_from": len(series)},
        )
        quality = (
            "beats the naive baseline"
            if result.beats_naive
            else "does not beat the naive baseline"
        )
        text = (
            f"Projected {self.measure} for the next {horizon} period(s): "
            + ", ".join(f"{v:,.0f}" for v in result.predictions)
            + f". Backtest MAE {result.backtest_mae:,.0f} ({quality})."
        )
        return self.reply_to(
            message,
            text,
            metadata={
                "ok": True,
                "chart": chart.to_json(),
                "predictions": result.predictions,
                "backtest_mae": result.backtest_mae,
                "naive_mae": result.naive_mae,
            },
        )

    def forecast(self, horizon: int = 3) -> ForecastResult:
        _labels, series = self._history()
        forecaster = SeasonalForecaster(self.period).fit(series)
        holdout = min(3, max(1, len(series) - 2))
        return ForecastResult(
            history=series,
            predictions=forecaster.predict(horizon),
            backtest_mae=forecaster.backtest(series, holdout=holdout),
            naive_mae=naive_backtest(series, holdout=holdout),
        )

    def _history(self) -> tuple[list[str], list[float]]:
        question = f"What is the total {self.measure} per month?"
        sql = self.ask_llm(
            build_text2sql_prompt(self.source, question), task="text2sql"
        )
        result = self.source.query(sql)
        if len(result.rows) < 4:
            raise AgentError(
                f"only {len(result.rows)} monthly points; need >= 4"
            )
        labels = [str(row[0]) for row in result.rows]
        series = [float(row[1]) for row in result.rows]
        return labels, series
