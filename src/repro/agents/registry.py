"""Custom agent registration.

The paper contrasts DB-GPT with LlamaIndex's "constrained behaviours":
users can custom-define agents for their own data interaction tasks.
The registry maps role names to agent factories so teams are assembled
by configuration.
"""

from __future__ import annotations

from typing import Callable

from repro.agents.base import Agent, AgentError


class AgentRegistry:
    """Role name -> agent factory registry."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Agent]] = {}

    def register(
        self, role: str, factory: Callable[..., Agent]
    ) -> None:
        key = role.lower()
        if key in self._factories:
            raise AgentError(f"role {role!r} is already registered")
        self._factories[key] = factory

    def create(self, role: str, **kwargs) -> Agent:
        factory = self._factories.get(role.lower())
        if factory is None:
            raise AgentError(
                f"no agent registered for role {role!r}; "
                f"known roles: {self.roles()}"
            )
        return factory(**kwargs)

    def roles(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, role: str) -> bool:
        return role.lower() in self._factories
