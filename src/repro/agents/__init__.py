"""Multi-Agents framework.

The paper's module-layer component for complex data interaction tasks
(generative data analysis): a planner agent decomposes the goal, chart
agents execute each analysis dimension, and an aggregator assembles the
report — with the *entire communication history archived in local
storage* (:class:`AgentMemory`), the reliability mechanism the paper
highlights against MetaGPT/AutoGen. Users can also custom-define agents
(:class:`AgentRegistry`), the flexibility claim against LlamaIndex.
"""

from repro.agents.actions import Action, ActionResult, ChartAction, SqlAction
from repro.agents.awel_integration import (
    AgentOperator,
    build_analysis_dag,
    compile_plan_dag,
    run_analysis_workflow,
)
from repro.agents.base import Agent, AgentError, ConversableAgent
from repro.agents.forecast import ForecastAgent, SeasonalForecaster
from repro.agents.data_agents import (
    AggregatorAgent,
    AnalystAgent,
    ChartAgent,
    SqlAgent,
)
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.agents.planner import Plan, PlannerAgent, PlanStep
from repro.agents.registry import AgentRegistry
from repro.agents.team import (
    AnalysisReport,
    DataAnalysisTeam,
    new_conversation_id,
)

__all__ = [
    "Action",
    "ActionResult",
    "Agent",
    "AgentError",
    "AgentMemory",
    "AgentMessage",
    "AgentOperator",
    "AgentRegistry",
    "ForecastAgent",
    "SeasonalForecaster",
    "build_analysis_dag",
    "compile_plan_dag",
    "new_conversation_id",
    "run_analysis_workflow",
    "AggregatorAgent",
    "AnalysisReport",
    "AnalystAgent",
    "ChartAction",
    "ChartAgent",
    "ConversableAgent",
    "DataAnalysisTeam",
    "Plan",
    "PlanStep",
    "PlannerAgent",
    "SqlAction",
    "SqlAgent",
]
