"""Team orchestration: the generative data analysis flow of Figure 3.

A user goal enters; the planner devises a strategy; the plan is
compiled into an AWEL DAG (``schema-link → sqlgen → execute → viz``
per chart step, joined into ``collect → aggregate → narrative``) and
executed by the async workflow runner, so independent steps run
concurrently and their LLM calls share serving batches. Every message
is archived in the shared :class:`AgentMemory`, and the whole run is
traced under one ``agent.plan`` span with per-stage ``agent.step``
children.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
import copy
import os
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.agents.awel_integration import compile_plan_dag
from repro.agents.base import AgentError, ConversableAgent
from repro.agents.data_agents import AggregatorAgent, ChartAgent
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.agents.planner import Plan, PlannerAgent
from repro.awel.runner import WorkflowRunner
from repro.cache.keys import instance_token
from repro.datasources.base import DataSource
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.runtime import perf_clock
from repro.smmf.client import ClientError
from repro.viz.dashboard import Dashboard

#: Mixed into every conversation id: per-process OS entropy, drawn once
#: at import. ``instance_token()`` alone restarts from 1 in every new
#: process, so ids derived only from it collide across restarts that
#: share a persisted archive.
_process_seed = int.from_bytes(os.urandom(8), "big")

#: Client error statuses worth re-sending a whole planner request for
#: (the client has already exhausted its own per-call retry budget).
_RESENDABLE_STATUSES = frozenset({408, 429, 500, 502, 503, 504})


def new_conversation_id(rng: Optional[random.Random] = None) -> str:
    """Process-unique conversation id for one analysis run.

    The old module-level ``itertools.count(1)`` produced ``analysis-1``,
    ``analysis-2``, ... — two teams in one process stayed distinct only
    by accident of sharing the counter, and a restarted process reusing
    a persisted archive re-issued the very same ids, interleaving
    unrelated conversations. Ids now mix per-process OS entropy with a
    process-local counter, so they are unique across teams, threads and
    restarts; pass ``rng`` to pin the sequence in tests.
    """
    if rng is None:
        rng = random.Random((_process_seed << 16) + instance_token())
    return f"analysis-{rng.getrandbits(48):012x}"


@dataclass
class AnalysisReport:
    """The team's final deliverable."""

    goal: str
    plan: Plan
    dashboard: Dashboard
    conversation_id: str
    message_count: int
    failures: list[str] = field(default_factory=list)


class _UserProxy(ConversableAgent):
    """Stands in for the human user inside the conversation."""

    def __init__(self, memory: AgentMemory) -> None:
        super().__init__(
            name="user",
            profile="The human requesting the analysis.",
            memory=memory,
            use_recall=False,
        )

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        return self.reply_to(message, "(received)")


class DataAnalysisTeam:
    """Planner + chart agents + aggregator over one data source.

    ``run`` compiles each plan into an AWEL DAG and executes it; the
    team survives serving-layer flap because each LLM-bound stage rides
    the client's retry/failover/fallback machinery and a step that
    still fails is recorded in ``AnalysisReport.failures`` instead of
    killing the plan. Responses served by a degraded fallback model are
    surfaced there too.
    """

    def __init__(
        self,
        source: DataSource,
        llm_client,
        memory: Optional[AgentMemory] = None,
        measure: str = "amount",
        use_recall: bool = True,
        rng: Optional[random.Random] = None,
        planner_retries: int = 1,
    ) -> None:
        self.memory = memory if memory is not None else AgentMemory()
        self.source = source
        self.llm_client = llm_client
        self.planner_retries = planner_retries
        self._rng = rng
        self.user = _UserProxy(self.memory)
        self.planner = PlannerAgent(
            self.memory, llm_client, schema=source.describe_schema()
        )
        self.chart_agents = [
            ChartAgent(
                self.memory,
                llm_client,
                source,
                name=f"chart-agent-{index}",
                measure=measure,
            )
            for index in range(1, 4)
        ]
        from repro.agents.forecast import ForecastAgent

        self.forecaster = ForecastAgent(
            self.memory, llm_client, source, measure=measure
        )
        for agent in [self.planner, *self.chart_agents, self.forecaster]:
            agent.use_recall = use_recall
        self.aggregator = AggregatorAgent(self.memory, llm_client)

    def run(self, goal: str) -> AnalysisReport:
        """Execute the full Figure 3 flow for ``goal``.

        Synchronous wrapper over :meth:`arun`; safe to call from inside
        a running event loop (the run then executes on a private loop
        in a worker thread, carrying the caller's trace context).
        """
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self.arun(goal))
        context = contextvars.copy_context()
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            return pool.submit(
                context.run, asyncio.run, self.arun(goal)
            ).result()

    async def arun(self, goal: str) -> AnalysisReport:
        """Async analysis run — concurrent teams share serving batches."""
        conversation_id = new_conversation_id(self._rng)
        registry = get_registry()
        started = perf_clock()
        degraded_before = getattr(self.llm_client, "degraded_serves", 0)
        status = "error"
        try:
            with get_tracer().span(
                "agent.plan", conversation=conversation_id, goal=goal
            ):
                report = await self._arun(goal, conversation_id)
            degraded = (
                getattr(self.llm_client, "degraded_serves", 0)
                - degraded_before
            )
            if degraded:
                report.failures.append(
                    f"degraded: {degraded} response(s) served by the "
                    "fallback model"
                )
            status = "degraded" if report.failures else "ok"
            return report
        finally:
            registry.counter(
                "agent_plans_total", "analysis plan runs by outcome"
            ).inc(status=status)
            registry.histogram(
                "agent_plan_latency_ms",
                "wall time of one full analysis plan",
            ).observe((perf_clock() - started) * 1000.0)

    async def _arun(self, goal: str, conversation_id: str) -> AnalysisReport:
        plan_reply = await self._request_plan(goal, conversation_id)
        steps = plan_reply.metadata.get("plan")
        if not steps:
            raise AgentError("planner returned no plan")
        plan = Plan(
            goal=goal,
            steps=[_step_from_dict(item) for item in steps],
        )
        dag = compile_plan_dag(
            plan,
            conversation_id=conversation_id,
            chart_agents=self.chart_agents,
            aggregator=self.aggregator,
            forecaster=self.forecaster,
        )
        ctx = await WorkflowRunner(dag).run_async(plan)
        outcome = ctx.results["report"]
        return AnalysisReport(
            goal=goal,
            plan=plan,
            dashboard=outcome["dashboard"],
            conversation_id=conversation_id,
            message_count=len(self.memory.conversation(conversation_id)),
            failures=list(outcome["failures"]),
        )

    async def _request_plan(
        self, goal: str, conversation_id: str
    ) -> AgentMessage:
        """The planner exchange, re-sent on transient serving failures.

        The SMMF client retries and fails over *within* one call; this
        outer loop re-sends the whole planner request after the client
        gives up, so a plan started mid-outage still begins once a
        replacement worker registers.
        """
        attempt = 0
        while True:
            attempt += 1
            request = AgentMessage(
                sender=self.user.name,
                recipient=self.planner.name,
                content=goal,
                conversation_id=conversation_id,
                round=0,
            )
            self.memory.append(request)
            try:
                reply = await self.planner.areceive(request)
            except ClientError as exc:
                resendable = (
                    getattr(exc, "status", None) in _RESENDABLE_STATUSES
                )
                if not resendable or attempt > self.planner_retries:
                    raise
                get_registry().counter(
                    "agent_plan_retries_total",
                    "planner requests re-sent after transient failures",
                ).inc()
                continue
            self.memory.append(reply)
            return reply


def _step_from_dict(item: dict) -> "PlanStep":
    from repro.agents.planner import PlanStep

    return PlanStep(
        step=item["step"],
        action=item["action"],
        description=item.get("description", ""),
        # Deep-copied so the live plan never aliases the archived plan
        # metadata (mutating one must not rewrite the other).
        params=copy.deepcopy(item.get("params", {})),
    )
