"""Team orchestration: the generative data analysis flow of Figure 3.

A user goal enters; the planner devises a strategy; chart agents
execute each step; the aggregator assembles the dashboard. Every
message is archived in the shared :class:`AgentMemory`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.agents.base import AgentError, ConversableAgent
from repro.agents.data_agents import AggregatorAgent, ChartAgent
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.agents.planner import Plan, PlannerAgent
from repro.datasources.base import DataSource
from repro.viz.dashboard import Dashboard
from repro.viz.spec import ChartSpec

_conversation_ids = itertools.count(1)


@dataclass
class AnalysisReport:
    """The team's final deliverable."""

    goal: str
    plan: Plan
    dashboard: Dashboard
    conversation_id: str
    message_count: int
    failures: list[str] = field(default_factory=list)


class _UserProxy(ConversableAgent):
    """Stands in for the human user inside the conversation."""

    def __init__(self, memory: AgentMemory) -> None:
        super().__init__(
            name="user",
            profile="The human requesting the analysis.",
            memory=memory,
            use_recall=False,
        )

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        return self.reply_to(message, "(received)")


class DataAnalysisTeam:
    """Planner + chart agents + aggregator over one data source."""

    def __init__(
        self,
        source: DataSource,
        llm_client,
        memory: Optional[AgentMemory] = None,
        measure: str = "amount",
        use_recall: bool = True,
    ) -> None:
        self.memory = memory if memory is not None else AgentMemory()
        self.source = source
        self.user = _UserProxy(self.memory)
        self.planner = PlannerAgent(
            self.memory, llm_client, schema=source.describe_schema()
        )
        self.chart_agents = [
            ChartAgent(
                self.memory,
                llm_client,
                source,
                name=f"chart-agent-{index}",
                measure=measure,
            )
            for index in range(1, 4)
        ]
        from repro.agents.forecast import ForecastAgent

        self.forecaster = ForecastAgent(
            self.memory, llm_client, source, measure=measure
        )
        for agent in [self.planner, *self.chart_agents, self.forecaster]:
            agent.use_recall = use_recall
        self.aggregator = AggregatorAgent(self.memory, llm_client)

    def run(self, goal: str) -> AnalysisReport:
        """Execute the full Figure 3 flow for ``goal``."""
        conversation_id = f"analysis-{next(_conversation_ids)}"
        before = len(self.memory)

        plan_reply = self.user.send(
            self.planner, goal, conversation_id=conversation_id, round=0
        )
        steps = plan_reply.metadata.get("plan")
        if not steps:
            raise AgentError("planner returned no plan")
        plan = Plan(
            goal=goal,
            steps=[_step_from_dict(item) for item in steps],
        )

        charts: list[str] = []
        failures: list[str] = []
        chart_cycle = itertools.cycle(self.chart_agents)
        executable = [
            step for step in plan.steps
            if step.action in ("chart", "forecast")
        ]
        for round_index, step in enumerate(executable, start=1):
            if step.action == "forecast":
                agent = self.forecaster
                content = (
                    f"produce the forecast for step {step.step}: "
                    f"{step.description}"
                )
            else:
                agent = next(chart_cycle)
                content = (
                    f"produce the chart for step {step.step}: "
                    f"{step.description}"
                )
            reply = self.user.send(
                agent,
                content,
                conversation_id=conversation_id,
                round=round_index,
                metadata=step.params,
            )
            if reply.metadata.get("ok") and "chart" in reply.metadata:
                charts.append(reply.metadata["chart"])
            else:
                failures.append(
                    f"step {step.step}: {reply.metadata.get('error', 'failed')}"
                )
        if not charts:
            raise AgentError(
                f"no charts were produced; failures: {failures}"
            )

        final = self.user.send(
            self.aggregator,
            f"aggregate the report for: {goal}",
            conversation_id=conversation_id,
            round=len(plan.steps),
            metadata={"charts": charts, "title": f"Report: {goal}"},
        )
        dashboard = Dashboard(
            title=f"Report: {goal}",
            charts=[
                ChartSpec.from_json(text)
                for text in final.metadata["charts"]
            ],
            narrative=final.metadata.get("narrative", ""),
        )
        return AnalysisReport(
            goal=goal,
            plan=plan,
            dashboard=dashboard,
            conversation_id=conversation_id,
            message_count=len(self.memory) - before,
            failures=failures,
        )


def _step_from_dict(item: dict) -> "PlanStep":
    from repro.agents.planner import PlanStep

    return PlanStep(
        step=item["step"],
        action=item["action"],
        description=item.get("description", ""),
        params=item.get("params", {}),
    )
