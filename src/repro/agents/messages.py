"""Agent messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_ids = itertools.count(1)


@dataclass
class AgentMessage:
    """One utterance in the multi-agent conversation.

    ``round`` is the logical turn index within a conversation;
    ``metadata`` carries structured payloads (plans, chart specs) next
    to the human-readable ``content``.
    """

    sender: str
    recipient: str
    content: str
    conversation_id: str = "default"
    role: str = "assistant"  # 'user' | 'assistant' | 'system'
    round: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def to_dict(self) -> dict[str, Any]:
        return {
            "message_id": self.message_id,
            "sender": self.sender,
            "recipient": self.recipient,
            "content": self.content,
            "conversation_id": self.conversation_id,
            "role": self.role,
            "round": self.round,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AgentMessage":
        message = cls(
            sender=data["sender"],
            recipient=data["recipient"],
            content=data["content"],
            conversation_id=data.get("conversation_id", "default"),
            role=data.get("role", "assistant"),
            round=data.get("round", 0),
            metadata=data.get("metadata", {}),
        )
        message.message_id = data.get("message_id", message.message_id)
        return message
