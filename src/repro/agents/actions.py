"""Actions: the tools agents execute against the environment."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.datasources.base import DataSource, DataSourceError
from repro.sqlengine import ResultSet
from repro.viz.spec import ChartSpec, ChartType


@dataclass
class ActionResult:
    """Outcome of one action execution."""

    ok: bool
    content: str
    payload: Any = None
    error: Optional[str] = None


class Action(abc.ABC):
    """A named, executable capability bound to a data source."""

    name = "action"

    @abc.abstractmethod
    def run(self, **kwargs: Any) -> ActionResult:
        """Execute the action."""


class SqlAction(Action):
    """Execute SQL against a data source.

    With ``validate=True`` (the default) the statement passes the
    semantic analyzer first; error-severity findings block execution so
    an agent never runs SQL that cannot succeed against the schema.
    """

    name = "sql"

    def __init__(self, source: DataSource, validate: bool = True) -> None:
        self._source = source
        self._validate = validate

    def run(self, sql: str = "", **kwargs: Any) -> ActionResult:
        if not sql:
            return ActionResult(False, "no SQL given", error="empty sql")
        if self._validate:
            from repro.analysis.gate import review_sql
            from repro.analysis.diagnostics import has_errors

            diagnostics = review_sql(sql, source=self._source)
            if has_errors(diagnostics):
                rendered = "; ".join(d.render() for d in diagnostics)
                return ActionResult(
                    False,
                    f"SQL rejected by the analyzer: {rendered}",
                    payload=[d.to_dict() for d in diagnostics],
                    error=rendered,
                )
        try:
            result = self._source.query(sql)
        except DataSourceError as exc:
            return ActionResult(False, f"SQL failed: {exc}", error=str(exc))
        return ActionResult(
            True, result.format_table(max_rows=10), payload=result
        )


class ChartAction(Action):
    """Execute SQL and shape the rows into a chart spec."""

    name = "chart"

    def __init__(self, source: DataSource) -> None:
        self._source = source

    def run(
        self,
        sql: str = "",
        chart_type: str = "bar",
        title: str = "chart",
        **kwargs: Any,
    ) -> ActionResult:
        try:
            result: ResultSet = self._source.query(sql)
        except DataSourceError as exc:
            return ActionResult(False, f"SQL failed: {exc}", error=str(exc))
        if not result.rows:
            return ActionResult(
                False, "query returned no rows", error="empty result"
            )
        try:
            spec = ChartSpec.from_rows(
                ChartType.from_name(chart_type),
                title,
                result.rows,
                x_label=result.columns[0] if result.columns else "",
                y_label=result.columns[1] if len(result.columns) > 1 else "",
                metadata={"sql": sql},
            )
        except Exception as exc:  # VizError or value issues
            return ActionResult(False, f"chart failed: {exc}", error=str(exc))
        return ActionResult(
            True,
            f"built {chart_type} chart {title!r} with {len(spec.points)} points",
            payload=spec,
        )
