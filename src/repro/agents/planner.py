"""The planner agent: goal -> structured plan via the planner model."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from repro.agents.base import AgentError, ConversableAgent
from repro.agents.messages import AgentMessage
from repro.llm.prompts import build_plan_prompt


@dataclass
class PlanStep:
    step: int
    action: str  # 'chart' | 'aggregate' | custom
    description: str = ""
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class Plan:
    goal: str
    steps: list[PlanStep]

    @property
    def chart_steps(self) -> list[PlanStep]:
        return [s for s in self.steps if s.action == "chart"]

    def describe(self) -> str:
        lines = [f"Plan for: {self.goal}"]
        for step in self.steps:
            lines.append(f"  {step.step}. [{step.action}] {step.description}")
        return "\n".join(lines)


class PlannerAgent(ConversableAgent):
    """Devises the multi-step strategy (Figure 3, area 3)."""

    def __init__(self, memory, llm_client, model: str = "planner",
                 schema: Optional[str] = None) -> None:
        super().__init__(
            name="planner",
            profile=(
                "Decomposes a data-analysis goal into chart-generation "
                "steps plus a final aggregation step."
            ),
            memory=memory,
            llm_client=llm_client,
            model=model,
        )
        self.schema = schema

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        plan = self.make_plan(message.content)
        # asdict deep-copies the nested params dict: the archived
        # message must not alias the live PlanStep objects, or post-hoc
        # step mutation would silently rewrite the communication history.
        return self.reply_to(
            message,
            plan.describe(),
            metadata={"plan": [asdict(step) for step in plan.steps]},
        )

    def make_plan(self, goal: str) -> Plan:
        prompt = build_plan_prompt(goal, schema=self.schema)
        raw = self.ask_llm(prompt, task="plan")
        try:
            items = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise AgentError(
                f"planner model returned invalid JSON: {raw[:80]!r}"
            ) from exc
        steps = []
        for item in items:
            params = {
                key: value
                for key, value in item.items()
                if key not in ("step", "action", "description")
            }
            steps.append(
                PlanStep(
                    step=int(item["step"]),
                    action=str(item["action"]),
                    description=str(item.get("description", "")),
                    params=params,
                )
            )
        if not steps:
            raise AgentError(f"planner produced an empty plan for {goal!r}")
        return Plan(goal=goal, steps=steps)
