"""The specialized data agents: SQL, chart, analyst, aggregator."""

from __future__ import annotations

from typing import Optional

from repro.agents.actions import ChartAction, SqlAction
from repro.agents.base import AgentError, ConversableAgent
from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage
from repro.datasources.base import DataSource
from repro.llm.prompts import build_text2sql_prompt
from repro.smmf.client import ClientError
from repro.viz.dashboard import Dashboard
from repro.viz.spec import ChartSpec

#: dimension -> (question template, default measure phrase)
_DIMENSION_QUESTIONS = {
    "category": "What is the total {measure} per category?",
    "user": "What is the total {measure} per user name?",
    "month": "What is the total {measure} per month?",
    "region": "What is the total {measure} per region?",
    "segment": "What is the total {measure} per segment?",
}


class SqlAgent(ConversableAgent):
    """Answers natural-language questions with SQL over one source.

    Includes the repair loop real Text-to-SQL deployments need: when
    the generated SQL fails to execute, the error is reported and one
    simplified retry is attempted.
    """

    def __init__(
        self,
        memory: AgentMemory,
        llm_client,
        source: DataSource,
        model: str = "sql-coder",
        name: str = "sql-agent",
    ) -> None:
        super().__init__(
            name=name,
            profile="Translates questions to SQL and executes them.",
            memory=memory,
            llm_client=llm_client,
            model=model,
        )
        self.source = source
        self._action = SqlAction(source)

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        question = message.content
        prompt = build_text2sql_prompt(self.source, question)
        try:
            sql = self.ask_llm(prompt, task="text2sql")
        except ClientError as exc:
            return self.reply_to(
                message,
                f"I could not translate that question: {exc}",
                metadata={"ok": False, "error": str(exc)},
            )
        result = self._action.run(sql=sql)
        attempts = 1
        if not result.ok:
            # Repair loop: strip qualifiers and retry once.
            simplified = question.rstrip("?.! ") + "?"
            try:
                sql = self.ask_llm(
                    build_text2sql_prompt(self.source, simplified),
                    task="text2sql",
                )
                result = self._action.run(sql=sql)
                attempts += 1
            except ClientError:
                pass
        if not result.ok:
            return self.reply_to(
                message,
                f"The generated SQL failed: {result.error}",
                metadata={"ok": False, "sql": sql, "error": result.error},
            )
        return self.reply_to(
            message,
            result.content,
            metadata={
                "ok": True,
                "sql": sql,
                "attempts": attempts,
                "rows": [list(r) for r in result.payload.rows[:50]],
                "columns": result.payload.columns,
            },
        )


class ChartAgent(ConversableAgent):
    """Produces one analysis chart for a plan step (Figure 3, area 4)."""

    def __init__(
        self,
        memory: AgentMemory,
        llm_client,
        source: DataSource,
        model: str = "sql-coder",
        name: str = "chart-agent",
        measure: str = "amount",
    ) -> None:
        super().__init__(
            name=name,
            profile="Generates a chart for one analysis dimension.",
            memory=memory,
            llm_client=llm_client,
            model=model,
        )
        self.source = source
        self.measure = measure
        self._action = ChartAction(source)

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        link = self.link_schema(message)
        if not link["ok"]:
            return self.unknown_dimension_reply(message, link)
        try:
            sql = self.ask_llm(link["prompt"], task="text2sql")
        except ClientError as exc:
            return self.reply_to(
                message,
                f"chart query generation failed: {exc}",
                metadata={"ok": False, "error": str(exc)},
            )
        result = self.execute_chart(link, sql)
        return self.chart_reply(message, link, sql, result)

    # -- pipeline stages ---------------------------------------------------
    # generate_reply above is the one-call form; the compiled AWEL plan
    # (repro.agents.awel_integration.compile_plan_dag) runs the same
    # stages as separate operators: link_schema -> (LLM text2sql) ->
    # execute_chart -> chart_reply.

    def link_schema(self, message: AgentMessage) -> dict:
        """Schema linking: ground the requested dimension in the source.

        Returns the stage context for the rest of the pipeline: the
        grounded question, the text2sql prompt and the chart framing —
        or ``ok=False`` when the dimension is unknown.
        """
        dimension = message.metadata.get("dimension")
        chart_type = message.metadata.get("chart_type", "bar")
        if dimension not in _DIMENSION_QUESTIONS:
            return {
                "ok": False,
                "dimension": dimension,
                "error": f"unknown dimension {dimension}",
            }
        question = _DIMENSION_QUESTIONS[dimension].format(measure=self.measure)
        return {
            "ok": True,
            "dimension": dimension,
            "chart_type": chart_type,
            "question": question,
            "prompt": build_text2sql_prompt(self.source, question),
            "title": f"Total {self.measure} by {dimension}",
        }

    def unknown_dimension_reply(
        self, message: AgentMessage, link: dict
    ) -> AgentMessage:
        return self.reply_to(
            message,
            f"I do not know how to chart dimension {link['dimension']!r}.",
            metadata={"ok": False, "error": link["error"]},
        )

    def execute_chart(self, link: dict, sql: str):
        """Execute the generated SQL and shape rows into a chart spec."""
        return self._action.run(
            sql=sql, chart_type=link["chart_type"], title=link["title"]
        )

    def chart_reply(
        self, message: AgentMessage, link: dict, sql: str, result
    ) -> AgentMessage:
        """Visualization stage: wrap the action result into the reply."""
        if not result.ok:
            return self.reply_to(
                message,
                f"chart generation failed: {result.error}",
                metadata={"ok": False, "sql": sql, "error": result.error},
            )
        spec: ChartSpec = result.payload
        return self.reply_to(
            message,
            result.content,
            metadata={
                "ok": True,
                "sql": sql,
                "chart": spec.to_json(),
                "dimension": link["dimension"],
                "chart_type": link["chart_type"],
            },
        )


class AnalystAgent(ConversableAgent):
    """Summarizes results in natural language via the chat model."""

    def __init__(
        self,
        memory: AgentMemory,
        llm_client,
        model: str = "chat",
        name: str = "analyst",
    ) -> None:
        super().__init__(
            name=name,
            profile="Writes narrative summaries of analysis results.",
            memory=memory,
            llm_client=llm_client,
            model=model,
        )

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        prompt = (
            "Summarize the following result for the user:\n"
            f"{message.content}\nSummary:"
        )
        summary = self.ask_llm(prompt, task="summary")
        return self.reply_to(message, summary, metadata={"ok": True})


class AggregatorAgent(ConversableAgent):
    """Collects chart specs into the final dashboard (Figure 3, area 5)."""

    def __init__(
        self,
        memory: AgentMemory,
        llm_client=None,
        name: str = "aggregator",
    ) -> None:
        super().__init__(
            name=name,
            profile="Assembles charts into one report for the front-end.",
            memory=memory,
            llm_client=llm_client,
            model="chat" if llm_client is not None else None,
            use_recall=False,
        )

    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        dashboard, lines = self.assemble(message)
        narrative = " ".join(lines)
        if self.llm_client is not None:
            try:
                narrative = self.ask_llm(
                    self.narrative_prompt(lines), task="summary"
                )
            except ClientError:
                pass  # fall back to the plain-line narrative
        return self.finalize(message, dashboard, narrative)

    # -- pipeline stages ---------------------------------------------------
    # The compiled AWEL plan runs assemble and finalize as separate
    # operators, with the narrative refinement awaited in between.

    def assemble(self, message: AgentMessage) -> tuple[Dashboard, list[str]]:
        """Collect the chart specs into a dashboard plus summary lines."""
        charts_json = message.metadata.get("charts", [])
        if not charts_json:
            raise AgentError("aggregator received no charts")
        charts = [ChartSpec.from_json(text) for text in charts_json]
        dashboard = Dashboard(
            title=message.metadata.get("title", "Analysis report"),
            charts=charts,
        )
        lines = [
            f"{spec.title}: {len(spec.points)} data points, "
            f"total {spec.total:g}"
            for spec in charts
        ]
        return dashboard, lines

    def narrative_prompt(self, lines: list[str]) -> str:
        return (
            "Summarize the following result for the user:\n"
            + "\n".join(lines)
            + "\nSummary:"
        )

    def finalize(
        self, message: AgentMessage, dashboard: Dashboard, narrative: str
    ) -> AgentMessage:
        dashboard.narrative = narrative
        return self.reply_to(
            message,
            dashboard.render_text(),
            metadata={
                "ok": True,
                "charts": [spec.to_json() for spec in dashboard.charts],
                "narrative": narrative,
            },
        )
