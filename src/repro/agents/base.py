"""Agent base classes."""

from __future__ import annotations

import abc
import asyncio
import contextvars
import functools
from typing import Any, Optional

from repro.agents.memory import AgentMemory
from repro.agents.messages import AgentMessage


class AgentError(Exception):
    """An agent could not complete its task."""


class Agent(abc.ABC):
    """An autonomous participant in the multi-agent conversation."""

    def __init__(self, name: str, profile: str) -> None:
        self.name = name
        self.profile = profile

    @abc.abstractmethod
    def generate_reply(self, message: AgentMessage) -> AgentMessage:
        """Produce a reply to ``message`` (already archived by send)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class ConversableAgent(Agent):
    """An agent wired into shared memory and (optionally) SMMF.

    ``send`` archives the outbound message, delivers it, archives the
    reply and returns it — the communication history is therefore
    complete by construction.
    """

    def __init__(
        self,
        name: str,
        profile: str,
        memory: AgentMemory,
        llm_client: Any = None,
        model: Optional[str] = None,
        use_recall: bool = True,
    ) -> None:
        super().__init__(name, profile)
        self.memory = memory
        self.llm_client = llm_client
        self.model = model
        self.use_recall = use_recall

    # -- messaging ---------------------------------------------------------

    def send(
        self,
        recipient: "ConversableAgent",
        content: str,
        conversation_id: str = "default",
        round: int = 0,
        metadata: Optional[dict[str, Any]] = None,
    ) -> AgentMessage:
        message = AgentMessage(
            sender=self.name,
            recipient=recipient.name,
            content=content,
            conversation_id=conversation_id,
            round=round,
            metadata=dict(metadata or {}),
        )
        self.memory.append(message)
        reply = recipient.receive(message)
        self.memory.append(reply)
        return reply

    def receive(self, message: AgentMessage) -> AgentMessage:
        """Handle an inbound message, consulting the archive first."""
        if self.use_recall:
            recalled = self.memory.recall_similar(
                message.content, sender=self.name
            )
            if recalled is not None:
                return AgentMessage(
                    sender=self.name,
                    recipient=message.sender,
                    content=recalled.content,
                    conversation_id=message.conversation_id,
                    round=message.round,
                    metadata={
                        **recalled.metadata,
                        "recalled_from": recalled.message_id,
                        "request": message.content,
                    },
                )
        return self.generate_reply(message)

    def reply_to(
        self,
        message: AgentMessage,
        content: str,
        metadata: Optional[dict[str, Any]] = None,
    ) -> AgentMessage:
        merged = dict(metadata or {})
        merged.setdefault("request", message.content)
        return AgentMessage(
            sender=self.name,
            recipient=message.sender,
            content=content,
            conversation_id=message.conversation_id,
            round=message.round,
            metadata=merged,
        )

    async def areceive(self, message: AgentMessage) -> AgentMessage:
        """Async :meth:`receive`: the recall check runs inline (fast,
        lock-guarded memory scan) and reply generation awaits, so
        concurrent agent branches never block the event loop — their
        LLM calls land in the serving scheduler together and coalesce
        into shared batches."""
        if self.use_recall:
            recalled = self.memory.recall_similar(
                message.content, sender=self.name
            )
            if recalled is not None:
                return AgentMessage(
                    sender=self.name,
                    recipient=message.sender,
                    content=recalled.content,
                    conversation_id=message.conversation_id,
                    round=message.round,
                    metadata={
                        **recalled.metadata,
                        "recalled_from": recalled.message_id,
                        "request": message.content,
                    },
                )
        return await self.agenerate_reply(message)

    async def agenerate_reply(self, message: AgentMessage) -> AgentMessage:
        """Async reply generation.

        The default offloads the synchronous :meth:`generate_reply` to
        the loop's executor (propagating the caller's context so spans
        stay parented), which keeps every agent awaitable; agents with
        natively-async work override this instead.
        """
        loop = asyncio.get_running_loop()
        call = functools.partial(self.generate_reply, message)
        return await loop.run_in_executor(
            None, contextvars.copy_context().run, call
        )

    # -- LLM access --------------------------------------------------------

    def ask_llm(self, prompt: str, task: Optional[str] = None) -> str:
        if self.llm_client is None or self.model is None:
            raise AgentError(
                f"agent {self.name!r} has no LLM binding for task {task!r}"
            )
        return self.llm_client.generate(self.model, prompt, task=task)

    async def aask_llm(self, prompt: str, task: Optional[str] = None) -> str:
        """Async :meth:`ask_llm`, routed through the serving engine.

        With the continuous-batching scheduler mounted the call goes
        through its ``aschedule`` path end-to-end (no thread parked per
        agent); otherwise the blocking round trip runs on the loop's
        executor. Either way concurrent agents submit together and
        share batches.
        """
        if self.llm_client is None or self.model is None:
            raise AgentError(
                f"agent {self.name!r} has no LLM binding for task {task!r}"
            )
        agenerate = getattr(self.llm_client, "agenerate", None)
        if agenerate is not None:
            return await agenerate(self.model, prompt, task=task)
        loop = asyncio.get_running_loop()
        call = functools.partial(
            self.llm_client.generate, self.model, prompt, task=task
        )
        return await loop.run_in_executor(
            None, contextvars.copy_context().run, call
        )
