"""Middleware chain for the server layer."""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rag.privacy import PrivacyScrubber
from repro.runtime import perf_clock
from repro.server.request import Request, Response, error

Handler = Callable[[Request], Response]


class Middleware(abc.ABC):
    """Wraps request handling; middlewares compose outside-in."""

    @abc.abstractmethod
    def __call__(self, request: Request, next_handler: Handler) -> Response:
        """Process ``request``, usually delegating to ``next_handler``."""


class TracingMiddleware(Middleware):
    """Open one ``server.request`` span per dispatched request.

    Installed outermost by default (see ``DBGPT.server``) so every
    other middleware and the application handler nest inside it; also
    records request-count and latency metrics per route.
    """

    def __call__(self, request: Request, next_handler: Handler) -> Response:
        registry = get_registry()
        started = perf_clock()
        with get_tracer().span(
            "server.request", method=request.method, path=request.path
        ) as span:
            response = next_handler(request)
            span.set_attribute("status_code", response.status)
        elapsed_ms = (perf_clock() - started) * 1000.0
        registry.counter(
            "server_requests_total", "requests through the server router"
        ).inc(
            method=request.method,
            path=request.path,
            status=str(response.status),
        )
        registry.histogram(
            "server_latency_ms", "request latency through the middleware chain"
        ).observe(elapsed_ms, path=request.path)
        return response


class LoggingMiddleware(Middleware):
    """Records (method, path, status) tuples for observability."""

    def __init__(self) -> None:
        self.entries: list[tuple[str, str, int]] = []

    def __call__(self, request: Request, next_handler: Handler) -> Response:
        response = next_handler(request)
        self.entries.append((request.method, request.path, response.status))
        return response


class AuthMiddleware(Middleware):
    """Bearer-token check (private deployments gate access).

    Single-token mode (``AuthMiddleware("secret")``) authenticates
    without identifying anyone. ``principals`` mode maps each token to
    a principal id — under the tenancy fabric, the tenant id — which
    is attached to ``request.principal`` for downstream ownership
    checks. Rejections carry the stable code ``"unauthorized"``.
    """

    def __init__(
        self,
        token: str = "",
        principals: Optional[dict[str, str]] = None,
    ) -> None:
        if not token and not principals:
            raise ValueError("auth token must be non-empty")
        self._token = token
        self._principals = dict(principals or {})

    def __call__(self, request: Request, next_handler: Handler) -> Response:
        supplied = request.header("authorization")
        if not supplied.startswith("Bearer "):
            return error(
                401, "missing or invalid bearer token", code="unauthorized"
            )
        token = supplied[len("Bearer ") :]
        if self._token and token == self._token:
            return next_handler(request)
        principal = self._principals.get(token)
        if principal is None:
            return error(
                401, "missing or invalid bearer token", code="unauthorized"
            )
        request.principal = principal
        return next_handler(request)


class PrivacyMiddleware(Middleware):
    """Scrub PII from inbound message text before apps (and models)
    ever see it, and restore it in the outbound answer."""

    def __init__(self, scrubber: Optional[PrivacyScrubber] = None) -> None:
        self._scrubber = scrubber or PrivacyScrubber()

    def __call__(self, request: Request, next_handler: Handler) -> Response:
        message = request.body.get("message")
        if not isinstance(message, str):
            return next_handler(request)
        result = self._scrubber.scrub(message)
        request.body["message"] = result.text
        response = next_handler(request)
        if result.found_pii and isinstance(response.body.get("text"), str):
            response.body["text"] = self._scrubber.restore(
                response.body["text"], result
            )
        return response
