"""DbGptServer: mounts applications behind the HTTP-shaped API."""

from __future__ import annotations

from typing import Any, Optional

from repro.apps.base import Application
from repro.server.middleware import Middleware
from repro.server.request import Request, Response, error, ok
from repro.server.router import Router


class DbGptServer:
    """Serve registered applications at ``POST /api/chat/{app}``.

    Also exposes ``GET /api/apps`` (discovery) and ``GET /api/health``.
    """

    def __init__(self, middlewares: Optional[list[Middleware]] = None) -> None:
        self.router = Router(middlewares)
        self._apps: dict[str, Application] = {}
        self.router.add_route("GET", "/api/apps", self._list_apps)
        self.router.add_route("GET", "/api/health", self._health)
        self.router.add_route("GET", "/api/openapi", self._openapi)
        self.router.add_route("POST", "/api/chat/{app}", self._chat)

    def register_app(self, app: Application) -> None:
        key = app.name.lower()
        if key in self._apps:
            raise ValueError(f"app {app.name!r} already registered")
        self._apps[key] = app

    def app_names(self) -> list[str]:
        return sorted(self._apps)

    def handle(self, request: Request) -> Response:
        return self.router.dispatch(request)

    # -- handlers -----------------------------------------------------------

    def _list_apps(self, request: Request) -> Response:
        return ok(
            {
                "apps": [
                    {"name": app.name, "description": app.description}
                    for app in self._apps.values()
                ]
            }
        )

    def _health(self, request: Request) -> Response:
        return ok({"status": "up", "apps": len(self._apps)})

    def _openapi(self, request: Request) -> Response:
        """A minimal OpenAPI-style description of the mounted routes."""
        paths: dict[str, Any] = {}
        for method, pattern in self.router.routes():
            paths.setdefault(pattern, []).append(method)
        return ok(
            {
                "openapi": "3.0-ish",
                "info": {"title": "DB-GPT repro server", "version": "0.1.0"},
                "paths": {
                    pattern: sorted(methods)
                    for pattern, methods in sorted(paths.items())
                },
                "apps": self.app_names(),
            }
        )

    def _chat(self, request: Request, app: str) -> Response:
        application = self._apps.get(app.lower())
        if application is None:
            return error(
                404, f"no app named {app!r}; known: {self.app_names()}"
            )
        message = request.body.get("message")
        if not isinstance(message, str) or not message.strip():
            return error(400, "body requires a non-empty 'message'")
        response = application.chat(message)
        payload: dict[str, Any] = {
            "text": response.text,
            "ok": response.ok,
            "metadata": response.metadata,
        }
        return Response(200 if response.ok else 422, payload)
