"""DbGptServer: mounts applications behind the HTTP-shaped API."""

from __future__ import annotations

from typing import Any, Optional

from repro.apps.base import Application
from repro.server.middleware import Middleware
from repro.server.request import (
    Request,
    Response,
    StreamingResponse,
    error,
    ok,
)
from repro.server.router import Router


class DbGptServer:
    """Serve registered applications at ``POST /api/chat/{app}``.

    Also exposes ``GET /api/apps`` (discovery) and ``GET /api/health``.
    With a tenant fabric attached the multi-tenant surface mounts too:
    ``POST /v1/sessions`` (create/resume by id), ``GET`` and ``DELETE``
    on ``/v1/sessions/{session_id}``, ``POST /v1/chat`` (takes
    ``tenant_id``/``session_id``) and ``GET /v1/tenants``. Without a
    fabric none of the ``/v1`` routes exist — the server is exactly
    the pre-tenancy one.
    """

    def __init__(
        self,
        middlewares: Optional[list[Middleware]] = None,
        fabric: Any = None,
    ) -> None:
        self.router = Router(middlewares)
        self.fabric = fabric
        self._apps: dict[str, Application] = {}
        self.router.add_route("GET", "/api/apps", self._list_apps)
        self.router.add_route("GET", "/api/health", self._health)
        self.router.add_route("GET", "/api/openapi", self._openapi)
        self.router.add_route("POST", "/api/chat/{app}", self._chat)
        if fabric is not None:
            self.router.add_route(
                "POST", "/v1/sessions", self._create_session
            )
            self.router.add_route(
                "GET", "/v1/sessions/{session_id}", self._get_session
            )
            self.router.add_route(
                "DELETE", "/v1/sessions/{session_id}", self._drop_session
            )
            self.router.add_route("POST", "/v1/chat", self._tenant_chat)
            self.router.add_route("GET", "/v1/tenants", self._list_tenants)

    def register_app(self, app: Application) -> None:
        key = app.name.lower()
        if key in self._apps:
            raise ValueError(f"app {app.name!r} already registered")
        self._apps[key] = app

    def app_names(self) -> list[str]:
        return sorted(self._apps)

    def handle(self, request: Request) -> Response:
        return self.router.dispatch(request)

    def handle_stream(self, request: Request) -> StreamingResponse:
        """``POST /api/chat/{app}/stream``: a chunked chat turn.

        Validation failures return the same structured error bodies as
        the unary route; a 200 carries the chunk iterator (closing it
        early abandons the turn).
        """
        parts = request.path.strip("/").split("/")
        if (
            request.method.upper() != "POST"
            or len(parts) != 4
            or parts[:2] != ["api", "chat"]
            or parts[3] != "stream"
        ):
            return StreamingResponse(
                404,
                {
                    "error": f"no stream route {request.method} "
                    f"{request.path}",
                    "code": "route_not_found",
                },
            )
        app = parts[2]
        application = self._apps.get(app.lower())
        if application is None:
            return StreamingResponse(
                404,
                {
                    "error": f"no app named {app!r}; "
                    f"known: {self.app_names()}",
                    "code": "unknown_app",
                },
            )
        message = request.body.get("message")
        if not isinstance(message, str) or not message.strip():
            return StreamingResponse(
                400,
                {
                    "error": "body requires a non-empty 'message'",
                    "code": "invalid_request",
                },
            )
        chunks, _response = application.stream_chat(message)
        return StreamingResponse(200, {}, chunks=chunks)

    # -- handlers -----------------------------------------------------------

    def _list_apps(self, request: Request) -> Response:
        return ok(
            {
                "apps": [
                    {"name": app.name, "description": app.description}
                    for app in self._apps.values()
                ]
            }
        )

    def _health(self, request: Request) -> Response:
        return ok({"status": "up", "apps": len(self._apps)})

    def _openapi(self, request: Request) -> Response:
        """A minimal OpenAPI-style description of the mounted routes."""
        paths: dict[str, Any] = {}
        for method, pattern in self.router.routes():
            paths.setdefault(pattern, []).append(method)
        return ok(
            {
                "openapi": "3.0-ish",
                "info": {"title": "DB-GPT repro server", "version": "0.1.0"},
                "paths": {
                    pattern: sorted(methods)
                    for pattern, methods in sorted(paths.items())
                },
                "apps": self.app_names(),
            }
        )

    def _chat(self, request: Request, app: str) -> Response:
        application = self._apps.get(app.lower())
        if application is None:
            return error(
                404,
                f"no app named {app!r}; known: {self.app_names()}",
                code="unknown_app",
            )
        message = request.body.get("message")
        if not isinstance(message, str) or not message.strip():
            return error(
                400,
                "body requires a non-empty 'message'",
                code="invalid_request",
            )
        response = application.chat(message)
        payload: dict[str, Any] = {
            "text": response.text,
            "ok": response.ok,
            "metadata": response.metadata,
        }
        return Response(200 if response.ok else 422, payload)

    # -- tenant surface (mounted only with a fabric) -------------------------

    def _resolve_tenant(self, request: Request) -> Any:
        """The effective tenant id, or an error Response.

        An authenticated principal *is* its tenant: a body naming a
        different tenant is a cross-tenant access attempt (403), and a
        request naming none inherits the principal's.
        """
        tenant_id = request.body.get("tenant_id")
        if tenant_id is not None and not isinstance(tenant_id, str):
            return error(
                400, "'tenant_id' must be a string", code="invalid_request"
            )
        if request.principal is not None:
            if tenant_id is not None and tenant_id != request.principal:
                return error(
                    403,
                    f"principal {request.principal!r} may not act as "
                    f"tenant {tenant_id!r}",
                    code="tenant_forbidden",
                )
            return request.principal
        if tenant_id is None:
            return error(
                400, "body requires a 'tenant_id'", code="invalid_request"
            )
        return tenant_id

    def _map_tenancy_error(self, exc: Exception) -> Optional[Response]:
        """Structured responses for tenancy control-plane failures."""
        from repro.tenancy.fabric import TenantForbidden
        from repro.tenancy.quotas import TenantThrottled
        from repro.tenancy.registry import UnknownTenant
        from repro.tenancy.sessions import UnknownSession

        if isinstance(exc, TenantThrottled):
            return error(
                429,
                str(exc),
                code=exc.code,
                retry_after=exc.retry_after,
            )
        if isinstance(exc, TenantForbidden):
            return error(403, str(exc), code="tenant_forbidden")
        if isinstance(exc, UnknownTenant):
            return error(404, str(exc), code="unknown_tenant")
        if isinstance(exc, UnknownSession):
            return error(404, str(exc), code="unknown_session")
        if isinstance(exc, KeyError):
            return error(404, str(exc.args[0]), code="unknown_app")
        return None

    def _create_session(self, request: Request) -> Response:
        tenant_id = self._resolve_tenant(request)
        if isinstance(tenant_id, Response):
            return tenant_id
        app_name = request.body.get("app")
        if not isinstance(app_name, str) or not app_name.strip():
            return error(
                400,
                "body requires a non-empty 'app'",
                code="invalid_request",
            )
        session_id = request.body.get("session_id")
        try:
            record = self.fabric.open_session(
                tenant_id, app_name, session_id=session_id
            )
        except Exception as exc:  # noqa: BLE001 - mapped to structured codes
            mapped = self._map_tenancy_error(exc)
            if mapped is None:
                raise
            return mapped
        return Response(
            201,
            {
                "session_id": record.session_id,
                "tenant_id": record.tenant_id,
                "app": record.app_name,
                "turns": len(record.turns),
            },
        )

    def _session_record(
        self, request: Request, session_id: str
    ) -> Any:
        tenant_id = self._resolve_tenant(request)
        if isinstance(tenant_id, Response):
            return tenant_id
        return self.fabric.session(tenant_id, session_id)

    def _get_session(self, request: Request, session_id: str) -> Response:
        try:
            record = self._session_record(request, session_id)
        except Exception as exc:  # noqa: BLE001 - mapped to structured codes
            mapped = self._map_tenancy_error(exc)
            if mapped is None:
                raise
            return mapped
        if isinstance(record, Response):
            return record
        with record.lock:
            turns = [
                {"user": turn.user, "assistant": turn.assistant, "ok": turn.ok}
                for turn in record.turns
            ]
        return ok(
            {
                "session_id": record.session_id,
                "tenant_id": record.tenant_id,
                "app": record.app_name,
                "turns": turns,
            }
        )

    def _drop_session(self, request: Request, session_id: str) -> Response:
        try:
            record = self._session_record(request, session_id)
            if isinstance(record, Response):
                return record
            self.fabric.store.drop(session_id)
        except Exception as exc:  # noqa: BLE001 - mapped to structured codes
            mapped = self._map_tenancy_error(exc)
            if mapped is not None:
                return mapped
            from repro.tenancy.registry import TenancyError

            if isinstance(exc, TenancyError):
                # An in-flight turn pins the session; deletion must wait.
                return error(409, str(exc), code="session_busy")
            raise
        return ok({"session_id": session_id, "deleted": True})

    def _tenant_chat(self, request: Request) -> Response:
        tenant_id = self._resolve_tenant(request)
        if isinstance(tenant_id, Response):
            return tenant_id
        message = request.body.get("message")
        if not isinstance(message, str) or not message.strip():
            return error(
                400,
                "body requires a non-empty 'message'",
                code="invalid_request",
            )
        session_id = request.body.get("session_id")
        app_name = request.body.get("app")
        try:
            record, response = self.fabric.chat(
                tenant_id,
                message,
                session_id=session_id,
                app_name=app_name,
            )
        except Exception as exc:  # noqa: BLE001 - mapped to structured codes
            mapped = self._map_tenancy_error(exc)
            if mapped is None:
                raise
            return mapped
        payload: dict[str, Any] = {
            "text": response.text,
            "ok": response.ok,
            "metadata": response.metadata,
            "session_id": record.session_id,
            "tenant_id": record.tenant_id,
        }
        return Response(200 if response.ok else 422, payload)

    def _list_tenants(self, request: Request) -> Response:
        return ok({"tenants": self.fabric.describe()})
