"""Route table with path parameters and a middleware chain."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.server.middleware import Handler, Middleware
from repro.server.request import Request, Response, error

_PARAM = re.compile(r"\{(\w+)\}")


class RouterError(Exception):
    """Invalid router configuration."""


@dataclass
class Route:
    method: str
    pattern: str
    handler: Callable[..., Response]
    regex: re.Pattern[str]
    param_names: list[str]


class Router:
    """Dispatch requests to handlers; ``{name}`` segments capture params.

    Handlers receive ``(request, **path_params)``.
    """

    def __init__(self, middlewares: Optional[list[Middleware]] = None) -> None:
        self._routes: list[Route] = []
        self._middlewares = list(middlewares or [])

    def add_middleware(self, middleware: Middleware) -> None:
        self._middlewares.append(middleware)

    def add_route(
        self,
        method: str,
        pattern: str,
        handler: Callable[..., Response],
    ) -> None:
        param_names = _PARAM.findall(pattern)
        regex_text = "^" + _PARAM.sub(r"(?P<\1>[^/]+)", re.escape(pattern).replace(r"\{", "{").replace(r"\}", "}")) + "$"
        try:
            regex = re.compile(regex_text)
        except re.error as exc:
            raise RouterError(f"bad route pattern {pattern!r}: {exc}") from exc
        for route in self._routes:
            if route.method == method.upper() and route.pattern == pattern:
                raise RouterError(
                    f"route {method} {pattern} already registered"
                )
        self._routes.append(
            Route(method.upper(), pattern, handler, regex, param_names)
        )

    def routes(self) -> list[tuple[str, str]]:
        return [(route.method, route.pattern) for route in self._routes]

    def dispatch(self, request: Request) -> Response:
        handler = self._resolve_handler
        for middleware in reversed(self._middlewares):
            handler = _wrap(middleware, handler)
        return handler(request)

    def _resolve_handler(self, request: Request) -> Response:
        saw_path = False
        for route in self._routes:
            match = route.regex.match(request.path)
            if match is None:
                continue
            saw_path = True
            if route.method != request.method.upper():
                continue
            params = {
                name: match.group(name) for name in route.param_names
            }
            return route.handler(request, **params)
        unrouted = get_registry().counter(
            "server_unrouted_total", "requests matching no route"
        )
        if saw_path:
            unrouted.inc(reason="method_not_allowed")
            return error(
                405,
                f"method {request.method} not allowed",
                code="method_not_allowed",
            )
        unrouted.inc(reason="not_found")
        return error(
            404, f"no route for {request.path}", code="route_not_found"
        )


def _wrap(middleware: Middleware, inner: Handler) -> Handler:
    def wrapped(request: Request) -> Response:
        return middleware(request, inner)

    return wrapped
