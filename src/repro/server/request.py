"""HTTP-shaped request/response objects."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Request:
    method: str
    path: str
    body: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    #: Identity attached by the auth middleware (a tenant id under the
    #: tenancy fabric); None until authenticated.
    principal: Optional[str] = None

    def header(self, name: str, default: str = "") -> str:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass
class Response:
    status: int
    body: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> str:
        return json.dumps(self.body, ensure_ascii=False)


@dataclass
class StreamingResponse:
    """A chunked response: ``chunks`` iterates token chunks on a 200.

    Non-200 statuses carry the same structured error body as
    :class:`Response` and no chunk iterator. Closing the iterator
    early cancels the underlying generation (the serving engine frees
    the request's batch slot mid-stream).
    """

    status: int
    body: dict[str, Any] = field(default_factory=dict)
    chunks: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def ok(body: dict[str, Any]) -> Response:
    return Response(200, body)


def error(
    status: int,
    message: str,
    code: Optional[str] = None,
    **extra: Any,
) -> Response:
    """A structured error body: human text plus a stable ``code``.

    Clients branch on ``code`` (machine-stable), never on the message
    text; ``extra`` carries structured hints such as ``retry_after``.
    """
    body: dict[str, Any] = {"error": message}
    if code is not None:
        body["code"] = code
    body.update(extra)
    return Response(status, body)
