"""HTTP-shaped request/response objects."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Request:
    method: str
    path: str
    body: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str = "") -> str:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass
class Response:
    status: int
    body: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> str:
        return json.dumps(self.body, ensure_ascii=False)


def ok(body: dict[str, Any]) -> Response:
    return Response(200, body)


def error(status: int, message: str) -> Response:
    return Response(status, {"error": message})
