"""The (optional) server layer.

Manages external inputs — HTTP-shaped requests — and routes them to
applications in the module layer, with a middleware chain (logging,
auth, privacy scrubbing). Applications remain directly callable when no
server is needed, matching the paper's "optional component" design.
"""

from repro.server.middleware import (
    AuthMiddleware,
    LoggingMiddleware,
    Middleware,
    PrivacyMiddleware,
    TracingMiddleware,
)
from repro.server.request import Request, Response
from repro.server.router import Route, Router, RouterError
from repro.server.service import DbGptServer

__all__ = [
    "AuthMiddleware",
    "DbGptServer",
    "LoggingMiddleware",
    "Middleware",
    "PrivacyMiddleware",
    "Request",
    "Response",
    "Route",
    "Router",
    "RouterError",
    "TracingMiddleware",
]
