"""Retry with exponential backoff, jitter and server hints.

One :class:`RetryPolicy` instance wraps one layer's transient-failure
handling. The clock-side effects are injectable: the SMMF client
sleeps real wall time between attempts, while the controller "sleeps"
by advancing its logical clock (which is also what drives health
probes and breaker reset timeouts), so every retry test is
deterministic without a real sleep anywhere.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable, Optional, TypeVar

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.resilience.config import RetryConfig
from repro.runtime import default_rng

T = TypeVar("T")

#: ``classify(exc) -> (retryable, retry_after_hint_or_None)``.
Classifier = Callable[[BaseException], tuple[bool, Optional[float]]]


def _retry_counter():
    return get_registry().counter(
        "resilience_retries_total", "retried attempts by layer and policy"
    )


class RetryPolicy:
    """Budget-capped exponential backoff around a callable.

    ``sleep`` receives each computed delay; pass ``time.sleep`` for
    wall-clock waiting or a logical-clock advance for simulated time.
    ``rng`` seeds the jitter — tests inject a seeded generator so the
    exact delay sequence is reproducible.
    """

    def __init__(
        self,
        config: Optional[RetryConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        layer: str = "client",
    ) -> None:
        self.config = config or RetryConfig()
        self._sleep = sleep
        self._rng = rng or default_rng()
        self.layer = layer

    def delay(self, attempt: int, hint: Optional[float] = None) -> float:
        """Backoff before retry ``attempt`` (1-based), >= the hint.

        A 429's ``retry_after`` is a server promise that nothing frees
        up sooner, so it floors (never replaces) the computed backoff.
        """
        base = self.config.base_delay_s * (
            self.config.multiplier ** (attempt - 1)
        )
        base = min(base, self.config.max_delay_s)
        delay = base + base * self.config.jitter * self._rng.random()
        if hint is not None:
            delay = max(delay, hint)
        return delay

    def run(
        self,
        fn: Callable[[], T],
        classify: Classifier,
        on_retry: Optional[Callable[[int, float], None]] = None,
    ) -> T:
        """Call ``fn``, retrying transient failures per the config.

        ``classify`` decides retryability and extracts the server's
        backoff hint; anything non-retryable (or any failure once
        attempts/budget run out) re-raises unchanged. Each retry is
        counted (``resilience_retries_total``) and wrapped in an
        ``smmf.retry`` span carrying the attempt number and delay.
        """
        attempt = 0
        waited = 0.0
        while True:
            attempt += 1
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 - reclassified
                retryable, hint = classify(exc)
                if not retryable or attempt >= self.config.max_attempts:
                    raise
                delay = self.delay(attempt, hint)
                budget = self.config.budget_s
                if budget is not None and waited + delay > budget:
                    raise
                waited += delay
                _retry_counter().inc(
                    layer=self.layer, error=type(exc).__name__
                )
                with get_tracer().span(
                    "smmf.retry",
                    layer=self.layer,
                    attempt=attempt,
                    delay_s=round(delay, 4),
                ):
                    if on_retry is not None:
                        on_retry(attempt, delay)
                    self._sleep(delay)

    async def arun(
        self,
        fn: Callable[[], Awaitable[T]],
        classify: Classifier,
        on_retry: Optional[Callable[[int, float], None]] = None,
    ) -> T:
        """Async twin of :meth:`run` — ``fn`` is awaited each attempt.

        The backoff sleep runs on the loop's default executor, so a
        retrying caller never blocks the event loop, and an injected
        logical-clock ``sleep`` keeps async retry tests deterministic
        exactly like the sync path.
        """
        attempt = 0
        waited = 0.0
        loop = asyncio.get_running_loop()
        while True:
            attempt += 1
            try:
                return await fn()
            except BaseException as exc:  # noqa: BLE001 - reclassified
                retryable, hint = classify(exc)
                if not retryable or attempt >= self.config.max_attempts:
                    raise
                delay = self.delay(attempt, hint)
                budget = self.config.budget_s
                if budget is not None and waited + delay > budget:
                    raise
                waited += delay
                _retry_counter().inc(
                    layer=self.layer, error=type(exc).__name__
                )
                with get_tracer().span(
                    "smmf.retry",
                    layer=self.layer,
                    attempt=attempt,
                    delay_s=round(delay, 4),
                ):
                    if on_retry is not None:
                        on_retry(attempt, delay)
                    await loop.run_in_executor(None, self._sleep, delay)
