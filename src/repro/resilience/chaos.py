"""Deterministic fault injection against the logical clock.

A :class:`ChaosSchedule` is a sorted script of worker faults —
kills, restarts, crash injections, latency changes — stamped with
logical-clock times. A :class:`ChaosInjector` binds the schedule to a
worker pool and applies every event that has come due each time the
driver advances time. Because the schedule is data and the clock is
the controller's injectable logical clock, a chaos run is exactly
reproducible: the chaos tests and ``benchmarks/bench_resilience.py``
replay identical fault timelines on every run, no randomness and no
real sleeps.

:func:`flap_schedule` builds the canonical workload: workers that
cycle down/up ("flap") with a configurable duty cycle and staggered
phases, the scenario the acceptance benchmark measures recovery under.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.smmf.worker import ModelWorker

#: Supported fault actions.
KILL = "kill"
RESTART = "restart"
FAIL_NEXT = "fail_next"
LATENCY = "latency"

_ACTIONS = (KILL, RESTART, FAIL_NEXT, LATENCY)


@dataclass(frozen=True, order=True)
class ChaosEvent:
    """One scripted fault: ``action`` on ``worker_index`` at ``at``.

    ``value`` parameterizes the action: injected crash count for
    ``fail_next``, milliseconds for ``latency``, unused otherwise.
    """

    at: float
    worker_index: int
    action: str = field(compare=False)
    value: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; known: {_ACTIONS}"
            )
        if self.at < 0:
            raise ValueError("event time must be non-negative")


class ChaosSchedule:
    """An ordered fault script with a consume-as-due cursor."""

    def __init__(self, events: Iterable[ChaosEvent]) -> None:
        self.events = sorted(events)
        self._cursor = 0

    def due(self, now: float) -> list[ChaosEvent]:
        """Pop (in order) every event scheduled at or before ``now``."""
        fired: list[ChaosEvent] = []
        while (
            self._cursor < len(self.events)
            and self.events[self._cursor].at <= now
        ):
            fired.append(self.events[self._cursor])
            self._cursor += 1
        return fired

    @property
    def remaining(self) -> int:
        return len(self.events) - self._cursor

    def reset(self) -> None:
        self._cursor = 0


def flap_schedule(
    worker_count: int,
    period_s: float,
    down_fraction: float,
    until_s: float,
    stagger: bool = True,
) -> ChaosSchedule:
    """Workers cycling down for ``down_fraction`` of each period.

    With ``stagger`` (the default) each worker's cycle is phase-shifted
    by ``period_s / worker_count`` so outages roll across the pool;
    without it every worker drops simultaneously — the total-outage
    storm that exercises timed retries and degraded routing.
    """
    if worker_count < 1:
        raise ValueError("worker_count must be >= 1")
    if not 0.0 < down_fraction < 1.0:
        raise ValueError("down_fraction must be in (0, 1)")
    if period_s <= 0 or until_s <= 0:
        raise ValueError("period_s and until_s must be positive")
    events: list[ChaosEvent] = []
    down_s = period_s * down_fraction
    for index in range(worker_count):
        offset = (period_s / worker_count) * index if stagger else 0.0
        start = offset
        while start < until_s:
            events.append(ChaosEvent(start, index, KILL))
            events.append(ChaosEvent(start + down_s, index, RESTART))
            start += period_s
    return ChaosSchedule(events)


class ChaosInjector:
    """Applies a schedule's due events to a worker pool.

    ``applied`` keeps the full fired-event log so tests and benchmarks
    can assert exactly which faults ran (and recovery latency against
    the restart timestamps).
    """

    def __init__(
        self, workers: Sequence[ModelWorker], schedule: ChaosSchedule
    ) -> None:
        self.workers = list(workers)
        self.schedule = schedule
        self.applied: list[ChaosEvent] = []

    def advance_to(self, now: float) -> list[ChaosEvent]:
        """Fire every event due at ``now``; returns what fired."""
        fired = self.schedule.due(now)
        for event in fired:
            self._apply(event)
            self.applied.append(event)
        return fired

    def _apply(self, event: ChaosEvent) -> None:
        worker = self.workers[event.worker_index % len(self.workers)]
        if event.action == KILL:
            worker.kill()
        elif event.action == RESTART:
            worker.restart()
        elif event.action == FAIL_NEXT:
            worker.inject_failures(int(event.value))
        elif event.action == LATENCY:
            worker.latency_ms = event.value
