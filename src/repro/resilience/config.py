"""Configuration for the resilience layer.

Every knob is plain data so :class:`repro.core.config.DbGptConfig` can
embed a :class:`ResilienceConfig` without importing the policies (the
same pattern as :class:`repro.cache.config.CacheConfig` and
:class:`repro.serving.config.ServingConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RetryConfig:
    """Exponential-backoff retry policy knobs.

    The computed delay for attempt *n* (1-based) is
    ``min(base_delay_s * multiplier**(n-1), max_delay_s)`` plus up to
    ``jitter`` of itself, floored at the server's ``retry_after`` hint
    when one was given. Total time spent waiting across one logical
    call never exceeds ``budget_s``.
    """

    #: Total tries, including the first. 1 disables retries.
    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    #: Fraction of the backoff added as random jitter (0 disables).
    jitter: float = 0.1
    #: Hard cap on cumulative backoff per call; ``None`` = unbounded.
    budget_s: Optional[float] = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget_s is not None and self.budget_s < 0:
            raise ValueError("budget_s must be non-negative (or None)")


@dataclass
class BreakerConfig:
    """Per-worker circuit-breaker knobs.

    ``failure_threshold`` consecutive :class:`WorkerCrashed` failures
    open the breaker; after ``reset_timeout_s`` it half-opens and lets
    ``half_open_probes`` trial requests through — one success closes
    it, one failure re-opens it.
    """

    failure_threshold: int = 3
    reset_timeout_s: float = 5.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass
class ResilienceConfig:
    """Master configuration for retry, breakers and recovery.

    ``enabled`` defaults to **off**: with it off, routing, failover and
    the client round trip are behaviorally identical to a build without
    the subsystem (certified by the disabled-parity tests, mirroring
    the cache and serving subsystems).
    """

    enabled: bool = False
    retry: RetryConfig = field(default_factory=RetryConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: How often the health monitor re-probes a non-serving worker.
    probe_interval_s: float = 1.0
    #: Degradation ladder, rung 1: when every replica of a model is
    #: unavailable, route to this model instead (response is marked
    #: ``degraded``). ``None`` disables fallback routing.
    fallback_model: Optional[str] = None
    #: Degradation ladder, rung 2: when the serving stack is down and
    #: the inference cache holds an answer for the exact request (even
    #: an expired one), serve it stale rather than failing the turn.
    serve_stale: bool = False

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")

    @classmethod
    def disabled(cls) -> "ResilienceConfig":
        """The default: no retries, no breakers, no recovery loop."""
        return cls(enabled=False)
