"""Resilience: what happens to the serving stack *after* a failure.

The SMMF layer exists so many model replicas can survive heavy
traffic; this package makes the pool survive faults (see
``docs/resilience.md``):

- :class:`RetryPolicy` — exponential backoff + jitter with an
  injectable clock/rng, honoring server ``retry_after`` hints and a
  hard per-call budget. Used by :class:`repro.smmf.LLMClient` (wall
  clock) and :class:`repro.smmf.ModelController` (logical clock).
- :class:`CircuitBreaker` / :class:`BreakerBoard` — per-worker
  closed → open → half-open machines the balancer consults instead of
  the old one-way ``record.healthy = False``.
- :class:`HealthMonitor` — clock-driven probes that re-admit crashed,
  killed-then-restarted or swept workers.
- :mod:`repro.resilience.chaos` — deterministic fault-injection
  harness (scripted kill/restart/flap timelines) driving the chaos
  test suite and ``benchmarks/bench_resilience.py``.

Everything defaults **off** (:class:`ResilienceConfig`): the disabled
path is behaviorally identical to a build without the subsystem.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    flap_schedule,
)
from repro.resilience.config import (
    BreakerConfig,
    ResilienceConfig,
    RetryConfig,
)
from repro.resilience.health import HealthMonitor
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CLOSED",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "CircuitBreaker",
    "HALF_OPEN",
    "HealthMonitor",
    "OPEN",
    "ResilienceConfig",
    "RetryConfig",
    "RetryPolicy",
    "flap_schedule",
]
