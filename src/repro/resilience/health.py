"""Health recovery: probe non-serving workers back into rotation.

The pre-resilience stack had a one-way door: a crash or a missed
heartbeat marked a worker unhealthy and only an explicit
``registry.heartbeat`` ever re-admitted it. The monitor closes the
loop — every time the controller's logical clock advances it probes
workers that are out of rotation (unhealthy record, dead process, or
open breaker), at most once per ``probe_interval_s`` each, and a
successful probe re-admits the worker:

- the registry record gets a fresh heartbeat (``healthy = True``),
- an open breaker is forced half-open, so the next balancer pick can
  send trial traffic without waiting out the reset timeout.

Probes are pure liveness checks (:meth:`ModelWorker.probe`), not
inference calls, so they never consume injected faults or occupy a
replica.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import get_registry
from repro.resilience.breaker import CLOSED, BreakerBoard
from repro.smmf.registry import ModelRegistry


def _probe_counter():
    return get_registry().counter(
        "resilience_probes_total", "health probes by outcome"
    )


class HealthMonitor:
    """Clock-driven recovery probes over a registry's workers."""

    def __init__(
        self,
        registry: ModelRegistry,
        probe_interval_s: float = 1.0,
        breakers: Optional[BreakerBoard] = None,
    ) -> None:
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        self.registry = registry
        self.probe_interval_s = probe_interval_s
        self.breakers = breakers
        self._last_probe: dict[str, float] = {}

    def _needs_probe(self, record) -> bool:
        if not record.healthy or not record.worker.alive:
            return True
        return (
            self.breakers is not None
            and self.breakers.state(record.worker.worker_id) != CLOSED
        )

    def probe(
        self, now: float, model_name: Optional[str] = None
    ) -> list[str]:
        """Probe due out-of-rotation workers; returns re-admitted ids."""
        readmitted: list[str] = []
        for record in self.registry.all_workers(model_name):
            if not self._needs_probe(record):
                continue
            worker_id = record.worker.worker_id
            last = self._last_probe.get(worker_id)
            if last is not None and now - last < self.probe_interval_s:
                continue
            self._last_probe[worker_id] = now
            if record.worker.probe():
                self.registry.heartbeat(worker_id, now)
                if self.breakers is not None:
                    self.breakers.probe_succeeded(worker_id)
                readmitted.append(worker_id)
                _probe_counter().inc(outcome="recovered")
            else:
                _probe_counter().inc(outcome="down")
        return readmitted
