"""Per-worker circuit breakers.

A breaker replaces the controller's one-way ``record.healthy = False``
with the classic three-state machine:

- **closed** — traffic flows; consecutive :class:`WorkerCrashed`
  failures are counted, any success resets the count.
- **open** — ``failure_threshold`` consecutive failures trip it; the
  balancer skips the worker entirely until ``reset_timeout_s`` has
  elapsed (or a health probe succeeds, which short-circuits the wait).
- **half-open** — up to ``half_open_probes`` trial requests are let
  through; the first success closes the breaker, a failure re-opens
  it and restarts the timeout.

Time comes from an injectable clock (the controller's logical clock),
so every transition is deterministic under test. State changes publish
the ``resilience_breaker_state`` gauge (0=closed, 1=half-open, 2=open).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.resilience.config import BreakerConfig

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


def _state_gauge():
    return get_registry().gauge(
        "resilience_breaker_state",
        "per-worker breaker state (0=closed, 1=half-open, 2=open)",
    )


class CircuitBreaker:
    """One worker's breaker; all transitions are lock-protected."""

    def __init__(
        self, config: BreakerConfig, clock: Callable[[], float]
    ) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: Lifetime transition count (observability / benchmarks).
        self.opens = 0

    def _tick_locked(self) -> None:
        """Open -> half-open once the reset timeout has elapsed."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at
            >= self.config.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._half_open_inflight = 0

    def state(self) -> str:
        with self._lock:
            self._tick_locked()
            return self._state

    def available(self) -> bool:
        """Non-mutating: could a request be admitted right now?"""
        with self._lock:
            self._tick_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                return (
                    self._half_open_inflight
                    < self.config.half_open_probes
                )
            return False

    def acquire(self) -> bool:
        """Admit one request; half-open admissions take a probe slot.

        The two-step ``available``/``acquire`` split exists so the
        balancer can *filter* candidates without burning probe slots
        on workers it does not pick.
        """
        with self._lock:
            self._tick_locked()
            if self._state == CLOSED:
                return True
            if (
                self._state == HALF_OPEN
                and self._half_open_inflight
                < self.config.half_open_probes
            ):
                self._half_open_inflight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._half_open_inflight = 0
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN
                or self._failures >= self.config.failure_threshold
            )
            if tripped and self._state != OPEN:
                self.opens += 1
            if tripped:
                self._state = OPEN
                self._opened_at = self._clock()
                self._half_open_inflight = 0

    def force_half_open(self) -> None:
        """A successful out-of-band health probe: skip the timeout and
        let trial traffic decide (an open breaker only)."""
        with self._lock:
            if self._state == OPEN:
                self._state = HALF_OPEN
                self._half_open_inflight = 0


class BreakerBoard:
    """The controller's breakers, one per worker id, created lazily."""

    def __init__(
        self, config: BreakerConfig, clock: Callable[[], float]
    ) -> None:
        self.config = config
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, worker_id: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(worker_id)
            if breaker is None:
                breaker = self._breakers[worker_id] = CircuitBreaker(
                    self.config, self._clock
                )
            return breaker

    def available(self, worker_id: str) -> bool:
        return self.breaker(worker_id).available()

    def acquire(self, worker_id: str) -> bool:
        return self.breaker(worker_id).acquire()

    def record_success(self, worker_id: str) -> None:
        self.breaker(worker_id).record_success()
        self._publish(worker_id)

    def record_failure(self, worker_id: str) -> None:
        self.breaker(worker_id).record_failure()
        self._publish(worker_id)

    def probe_succeeded(self, worker_id: str) -> None:
        self.breaker(worker_id).force_half_open()
        self._publish(worker_id)

    def state(self, worker_id: str) -> str:
        return self.breaker(worker_id).state()

    def states(self) -> dict[str, str]:
        with self._lock:
            ids = list(self._breakers)
        return {worker_id: self.state(worker_id) for worker_id in ids}

    def _publish(self, worker_id: str) -> None:
        _state_gauge().set(
            _STATE_VALUES[self.state(worker_id)], worker=worker_id
        )
