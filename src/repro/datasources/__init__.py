"""Data source connectors.

The paper's RAG module retrieves "from multiple data sources" and the
chat2db/chat2data/chat2excel applications each talk to a different kind
of backing store. This package provides one uniform interface
(:class:`DataSource`) with connectors for:

- :class:`EngineSource` — a :class:`repro.sqlengine.Database`
- :class:`CsvSource` — a directory of CSV files (one table each)
- :class:`ExcelSource` — a :class:`Workbook` of sheets (chat2excel)
- :class:`MemorySource` — plain Python records

plus a :class:`DataSourceRegistry` that resolves URI-style connection
strings (``engine://name``, ``csv:///path``, ...).
"""

from repro.datasources.base import DataSource, DataSourceError, TableInfo
from repro.datasources.csv_source import CsvSource, read_csv_records
from repro.datasources.engine_source import EngineSource
from repro.datasources.excel_source import ExcelSource, Sheet, Workbook
from repro.datasources.inspector import ColumnProfile, profile_source
from repro.datasources.memory_source import MemorySource
from repro.datasources.registry import DataSourceRegistry

__all__ = [
    "ColumnProfile",
    "CsvSource",
    "DataSource",
    "DataSourceError",
    "DataSourceRegistry",
    "EngineSource",
    "ExcelSource",
    "MemorySource",
    "Sheet",
    "TableInfo",
    "Workbook",
    "profile_source",
    "read_csv_records",
]
