"""Schema/profile inspection used to enrich LLM prompt context."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.datasources.base import DataSource


@dataclass
class ColumnProfile:
    """Summary statistics for one column."""

    table: str
    column: str
    distinct_count: int
    null_count: int
    min_value: Any = None
    max_value: Any = None
    sample_values: list[Any] = None  # type: ignore[assignment]

    def describe(self) -> str:
        parts = [
            f"{self.table}.{self.column}:",
            f"{self.distinct_count} distinct,",
            f"{self.null_count} null",
        ]
        if self.min_value is not None:
            parts.append(f"range [{self.min_value}, {self.max_value}]")
        if self.sample_values:
            rendered = ", ".join(str(v) for v in self.sample_values[:5])
            parts.append(f"e.g. {rendered}")
        return " ".join(parts)


def profile_source(
    source: DataSource,
    table: Optional[str] = None,
    sample_limit: int = 5,
) -> list[ColumnProfile]:
    """Profile every column of ``table`` (or all tables)."""
    profiles: list[ColumnProfile] = []
    for info in source.tables():
        if table is not None and info.name.lower() != table.lower():
            continue
        for column in info.columns:
            stats = source.query(
                f"SELECT COUNT(DISTINCT {column}), "
                f"COUNT(*) - COUNT({column}), "
                f"MIN({column}), MAX({column}) FROM {info.name}"
            ).rows[0]
            samples = source.query(
                f"SELECT DISTINCT {column} FROM {info.name} "
                f"WHERE {column} IS NOT NULL LIMIT {int(sample_limit)}"
            ).column(column)
            profiles.append(
                ColumnProfile(
                    table=info.name,
                    column=column,
                    distinct_count=stats[0],
                    null_count=stats[1],
                    min_value=stats[2],
                    max_value=stats[3],
                    sample_values=samples,
                )
            )
    return profiles
