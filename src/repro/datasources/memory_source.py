"""Connector for plain Python records (chat2data over in-memory frames)."""

from __future__ import annotations

from typing import Any, Sequence

from repro.datasources.base import DataSourceError
from repro.datasources.engine_source import EngineSource
from repro.sqlengine import Database


class MemorySource(EngineSource):
    """A data source built from lists of dict records.

    Records are loaded into a private SQL engine so the full query
    surface works over them.
    """

    def __init__(
        self,
        name: str,
        tables: dict[str, Sequence[dict[str, Any]]],
    ) -> None:
        database = Database(name)
        for table_name, records in tables.items():
            if not records:
                raise DataSourceError(
                    f"table {table_name!r} needs at least one record "
                    "to infer a schema"
                )
            database.load_table(table_name, list(records))
        super().__init__(database, name)

    def add_table(
        self, table_name: str, records: Sequence[dict[str, Any]]
    ) -> None:
        if not records:
            raise DataSourceError(
                f"table {table_name!r} needs at least one record"
            )
        self.database.load_table(table_name, list(records))
