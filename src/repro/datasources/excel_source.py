"""Workbook model and connector for chat2excel.

The paper's chat2excel lets users converse with spreadsheet data. We
model a workbook as named sheets of rows; sheets load into the SQL
engine so natural-language questions compile to SQL over them. A
minimal XLSX reader/writer (zip + SpreadsheetML, no third-party
dependencies) round-trips real ``.xlsx`` files.
"""

from __future__ import annotations

import pathlib
import re
import zipfile
from dataclasses import dataclass, field
from typing import Any, Sequence
from xml.etree import ElementTree

from repro.datasources.base import DataSourceError
from repro.datasources.engine_source import EngineSource
from repro.sqlengine import Database

_NS = "{http://schemas.openxmlformats.org/spreadsheetml/2006/main}"
_REL_NS = (
    "{http://schemas.openxmlformats.org/officeDocument/2006/relationships}"
)


@dataclass
class Sheet:
    """One worksheet: a header row plus data rows."""

    name: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def to_records(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    @classmethod
    def from_records(
        cls, name: str, records: Sequence[dict[str, Any]]
    ) -> "Sheet":
        if not records:
            raise DataSourceError(f"sheet {name!r} needs at least one record")
        columns = list(records[0].keys())
        rows = [[record.get(column) for column in columns] for record in records]
        return cls(name, columns, rows)


class Workbook:
    """An ordered collection of sheets with XLSX round-trip support."""

    def __init__(self, sheets: Sequence[Sheet] = ()) -> None:
        self.sheets: list[Sheet] = list(sheets)

    def sheet(self, name: str) -> Sheet:
        lowered = name.lower()
        for sheet in self.sheets:
            if sheet.name.lower() == lowered:
                return sheet
        raise DataSourceError(f"no sheet named {name!r}")

    def add_sheet(self, sheet: Sheet) -> None:
        if any(s.name.lower() == sheet.name.lower() for s in self.sheets):
            raise DataSourceError(f"sheet {sheet.name!r} already exists")
        self.sheets.append(sheet)

    def sheet_names(self) -> list[str]:
        return [sheet.name for sheet in self.sheets]

    # -- XLSX round trip ---------------------------------------------------

    def save_xlsx(self, path: pathlib.Path | str) -> None:
        """Write a minimal but valid ``.xlsx`` file."""
        if not self.sheets:
            raise DataSourceError("cannot save an empty workbook")
        path = pathlib.Path(path)
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("[Content_Types].xml", _content_types(self))
            archive.writestr("_rels/.rels", _ROOT_RELS)
            archive.writestr(
                "xl/workbook.xml", _workbook_xml(self.sheet_names())
            )
            archive.writestr(
                "xl/_rels/workbook.xml.rels",
                _workbook_rels(len(self.sheets)),
            )
            for index, sheet in enumerate(self.sheets, start=1):
                archive.writestr(
                    f"xl/worksheets/sheet{index}.xml", _sheet_xml(sheet)
                )

    @classmethod
    def load_xlsx(cls, path: pathlib.Path | str) -> "Workbook":
        """Read a ``.xlsx`` file (inline and shared strings supported)."""
        path = pathlib.Path(path)
        if not path.exists():
            raise DataSourceError(f"no such workbook: {path}")
        with zipfile.ZipFile(path) as archive:
            shared = _read_shared_strings(archive)
            names_and_targets = _read_sheet_index(archive)
            sheets = []
            for sheet_name, target in names_and_targets:
                xml = archive.read(f"xl/{target}")
                sheets.append(_parse_sheet(sheet_name, xml, shared))
        return cls(sheets)


class ExcelSource(EngineSource):
    """Query a :class:`Workbook` with SQL (one table per sheet)."""

    def __init__(self, workbook: Workbook, name: str = "workbook") -> None:
        if not workbook.sheets:
            raise DataSourceError("workbook has no sheets")
        database = Database(name)
        for sheet in workbook.sheets:
            table_name = _safe_table_name(sheet.name)
            database.load_table(table_name, sheet.to_records())
        super().__init__(database, name)
        self.workbook = workbook

    @classmethod
    def from_xlsx(
        cls, path: pathlib.Path | str, name: str | None = None
    ) -> "ExcelSource":
        workbook = Workbook.load_xlsx(path)
        return cls(workbook, name or pathlib.Path(path).stem)


def _safe_table_name(sheet_name: str) -> str:
    cleaned = re.sub(r"\W+", "_", sheet_name.strip()).strip("_")
    return cleaned.lower() or "sheet"


# ---------------------------------------------------------------------------
# XLSX writing helpers
# ---------------------------------------------------------------------------

_ROOT_RELS = (
    '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
    '<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/'
    'relationships"><Relationship Id="rId1" Type="http://schemas.openxml'
    'formats.org/officeDocument/2006/relationships/officeDocument" '
    'Target="xl/workbook.xml"/></Relationships>'
)


def _content_types(workbook: Workbook) -> str:
    overrides = "".join(
        f'<Override PartName="/xl/worksheets/sheet{i}.xml" ContentType='
        '"application/vnd.openxmlformats-officedocument.spreadsheetml.'
        'worksheet+xml"/>'
        for i in range(1, len(workbook.sheets) + 1)
    )
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        '<Types xmlns="http://schemas.openxmlformats.org/package/2006/'
        'content-types">'
        '<Default Extension="rels" ContentType="application/vnd.openxml'
        'formats-package.relationships+xml"/>'
        '<Default Extension="xml" ContentType="application/xml"/>'
        '<Override PartName="/xl/workbook.xml" ContentType="application/'
        'vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml"/>'
        f"{overrides}</Types>"
    )


def _workbook_xml(names: list[str]) -> str:
    sheets = "".join(
        f'<sheet name="{_xml_escape(name)}" sheetId="{i}" r:id="rId{i}"/>'
        for i, name in enumerate(names, start=1)
    )
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        '<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/'
        '2006/main" xmlns:r="http://schemas.openxmlformats.org/office'
        f'Document/2006/relationships"><sheets>{sheets}</sheets></workbook>'
    )


def _workbook_rels(count: int) -> str:
    rels = "".join(
        f'<Relationship Id="rId{i}" Type="http://schemas.openxmlformats.org/'
        'officeDocument/2006/relationships/worksheet" '
        f'Target="worksheets/sheet{i}.xml"/>'
        for i in range(1, count + 1)
    )
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        '<Relationships xmlns="http://schemas.openxmlformats.org/package/'
        f'2006/relationships">{rels}</Relationships>'
    )


def _sheet_xml(sheet: Sheet) -> str:
    lines = []
    all_rows = [sheet.columns] + sheet.rows
    for row_index, row in enumerate(all_rows, start=1):
        cells = []
        for col_index, value in enumerate(row):
            ref = f"{_column_letter(col_index)}{row_index}"
            cells.append(_cell_xml(ref, value))
        lines.append(f'<row r="{row_index}">{"".join(cells)}</row>')
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        '<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/'
        f'2006/main"><sheetData>{"".join(lines)}</sheetData></worksheet>'
    )


def _cell_xml(ref: str, value: Any) -> str:
    if value is None:
        return f'<c r="{ref}"/>'
    if isinstance(value, bool):
        return f'<c r="{ref}" t="b"><v>{int(value)}</v></c>'
    if isinstance(value, (int, float)):
        return f'<c r="{ref}"><v>{value}</v></c>'
    escaped = _xml_escape(str(value))
    return f'<c r="{ref}" t="inlineStr"><is><t>{escaped}</t></is></c>'


def _column_letter(index: int) -> str:
    letters = ""
    index += 1
    while index:
        index, remainder = divmod(index - 1, 26)
        letters = chr(ord("A") + remainder) + letters
    return letters


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


# ---------------------------------------------------------------------------
# XLSX reading helpers
# ---------------------------------------------------------------------------


def _read_shared_strings(archive: zipfile.ZipFile) -> list[str]:
    try:
        xml = archive.read("xl/sharedStrings.xml")
    except KeyError:
        return []
    root = ElementTree.fromstring(xml)
    strings = []
    for si in root.findall(f"{_NS}si"):
        strings.append("".join(t.text or "" for t in si.iter(f"{_NS}t")))
    return strings


def _read_sheet_index(archive: zipfile.ZipFile) -> list[tuple[str, str]]:
    workbook_root = ElementTree.fromstring(archive.read("xl/workbook.xml"))
    rels_root = ElementTree.fromstring(
        archive.read("xl/_rels/workbook.xml.rels")
    )
    rel_targets = {
        rel.get("Id"): rel.get("Target")
        for rel in rels_root
    }
    pairs = []
    for sheet in workbook_root.iter(f"{_NS}sheet"):
        rel_id = sheet.get(f"{_REL_NS}id")
        target = rel_targets.get(rel_id)
        if target is None:
            raise DataSourceError(
                f"sheet {sheet.get('name')!r} has no relationship target"
            )
        pairs.append((sheet.get("name"), target.lstrip("/")))
    return pairs


def _parse_sheet(name: str, xml: bytes, shared: list[str]) -> Sheet:
    root = ElementTree.fromstring(xml)
    grid: list[list[Any]] = []
    for row in root.iter(f"{_NS}row"):
        values: dict[int, Any] = {}
        for cell in row.findall(f"{_NS}c"):
            column_index = _parse_column_index(cell.get("r", "A1"))
            values[column_index] = _parse_cell_value(cell, shared)
        if not values:
            continue
        width = max(values) + 1
        grid.append([values.get(i) for i in range(width)])
    if not grid:
        raise DataSourceError(f"sheet {name!r} is empty")
    width = max(len(row) for row in grid)
    grid = [row + [None] * (width - len(row)) for row in grid]
    header = ["" if v is None else str(v) for v in grid[0]]
    return Sheet(name, header, grid[1:])


def _parse_column_index(ref: str) -> int:
    letters = "".join(ch for ch in ref if ch.isalpha())
    index = 0
    for ch in letters:
        index = index * 26 + (ord(ch.upper()) - ord("A") + 1)
    return index - 1


def _parse_cell_value(cell, shared: list[str]) -> Any:
    cell_type = cell.get("t", "n")
    if cell_type == "inlineStr":
        return "".join(t.text or "" for t in cell.iter(f"{_NS}t"))
    v = cell.find(f"{_NS}v")
    if v is None or v.text is None:
        return None
    text = v.text
    if cell_type == "s":
        return shared[int(text)]
    if cell_type == "b":
        return text == "1"
    if cell_type == "str":
        return text
    try:
        number = float(text)
    except ValueError:
        return text
    if number.is_integer():
        return int(number)
    return number
