"""The uniform data source interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.sqlengine import ResultSet


class DataSourceError(Exception):
    """Raised when a connector cannot satisfy a request."""


@dataclass
class TableInfo:
    """Lightweight table description shown to users and LLM prompts."""

    name: str
    columns: list[str]
    column_types: list[str]
    row_count: int
    comment: str = ""

    def describe(self) -> str:
        cols = ", ".join(
            f"{name} {ctype}"
            for name, ctype in zip(self.columns, self.column_types)
        )
        return f"{self.name}({cols}) [{self.row_count} rows]"


class DataSource(abc.ABC):
    """A queryable collection of tables.

    Every connector supports the same four operations so the application
    layer (and the agents) never special-case the backing store.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def tables(self) -> list[TableInfo]:
        """List the tables this source exposes."""

    @abc.abstractmethod
    def query(self, sql: str, parameters: Sequence[Any] = ()) -> ResultSet:
        """Run a SQL query against the source."""

    def describe_schema(self) -> str:
        """Schema text injected into Text-to-SQL prompts."""
        return "\n".join(info.describe() for info in self.tables())

    def table_names(self) -> list[str]:
        return [info.name for info in self.tables()]

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return any(info.name.lower() == lowered for info in self.tables())

    def sample_rows(self, table: str, limit: int = 5) -> ResultSet:
        """A few example rows, used for few-shot prompt context."""
        if not self.has_table(table):
            raise DataSourceError(
                f"source {self.name!r} has no table {table!r}"
            )
        return self.query(f"SELECT * FROM {table} LIMIT {int(limit)}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
