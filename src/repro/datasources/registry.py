"""Connection-string registry for data sources.

Mirrors the paper's "multiple data sources" design: applications name a
source by URI and the registry resolves the connector.
"""

from __future__ import annotations

from typing import Callable

from repro.datasources.base import DataSource, DataSourceError


class DataSourceRegistry:
    """Name -> source registry with URI-based construction.

    >>> registry = DataSourceRegistry()
    >>> from repro.sqlengine import Database
    >>> from repro.datasources import EngineSource
    >>> registry.register(EngineSource(Database("sales")))
    >>> registry.get("sales").name
    'sales'
    """

    def __init__(self) -> None:
        self._sources: dict[str, DataSource] = {}
        self._schemes: dict[str, Callable[[str], DataSource]] = {
            "csv": self._connect_csv,
            "xlsx": self._connect_xlsx,
        }

    def register(self, source: DataSource) -> None:
        key = source.name.lower()
        if key in self._sources:
            raise DataSourceError(
                f"a source named {source.name!r} is already registered"
            )
        self._sources[key] = source

    def unregister(self, name: str) -> None:
        if name.lower() not in self._sources:
            raise DataSourceError(f"no source named {name!r}")
        del self._sources[name.lower()]

    def get(self, name: str) -> DataSource:
        source = self._sources.get(name.lower())
        if source is None:
            raise DataSourceError(
                f"no source named {name!r}; known: {self.names()}"
            )
        return source

    def names(self) -> list[str]:
        return sorted(source.name for source in self._sources.values())

    def connect(self, uri: str) -> DataSource:
        """Create, register and return a source from a URI.

        Supported: ``csv:///path/to/dir`` and ``xlsx:///path/to/file``.
        """
        scheme, _, rest = uri.partition("://")
        factory = self._schemes.get(scheme.lower())
        if factory is None:
            raise DataSourceError(
                f"unknown scheme {scheme!r}; known: {sorted(self._schemes)}"
            )
        source = factory(rest)
        self.register(source)
        return source

    @staticmethod
    def _connect_csv(path: str) -> DataSource:
        from repro.datasources.csv_source import CsvSource

        return CsvSource(path)

    @staticmethod
    def _connect_xlsx(path: str) -> DataSource:
        from repro.datasources.excel_source import ExcelSource

        return ExcelSource.from_xlsx(path)
