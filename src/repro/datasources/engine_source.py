"""Connector for the in-memory SQL engine."""

from __future__ import annotations

from typing import Any, Sequence

from repro.datasources.base import DataSource, DataSourceError, TableInfo
from repro.sqlengine import Database, ResultSet, SqlEngineError


class EngineSource(DataSource):
    """Expose a :class:`repro.sqlengine.Database` as a data source."""

    def __init__(self, database: Database, name: str | None = None) -> None:
        super().__init__(name or database.name)
        self.database = database

    def tables(self) -> list[TableInfo]:
        infos = []
        for schema in self.database.catalog.tables():
            infos.append(
                TableInfo(
                    name=schema.name,
                    columns=[c.name for c in schema.columns],
                    column_types=[c.data_type.value for c in schema.columns],
                    row_count=self.database.table_rowcount(schema.name),
                    comment=schema.comment,
                )
            )
        return infos

    def query(self, sql: str, parameters: Sequence[Any] = ()) -> ResultSet:
        try:
            return self.database.execute(sql, parameters)
        except SqlEngineError as exc:
            raise DataSourceError(str(exc)) from exc
