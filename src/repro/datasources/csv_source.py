"""Connector for directories of CSV files."""

from __future__ import annotations

import csv
import pathlib
from typing import Any, Iterable

from repro.datasources.base import DataSourceError
from repro.datasources.engine_source import EngineSource
from repro.sqlengine import Database


def _parse_cell(text: str) -> Any:
    """Best-effort typed parse of one CSV cell."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def read_csv_records(path: pathlib.Path | str) -> list[dict[str, Any]]:
    """Read a CSV file into typed dict records."""
    path = pathlib.Path(path)
    if not path.exists():
        raise DataSourceError(f"no such CSV file: {path}")
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataSourceError(f"CSV file {path} has no header row")
        records = [
            {key: _parse_cell(value) for key, value in row.items()}
            for row in reader
        ]
    if not records:
        raise DataSourceError(f"CSV file {path} has no data rows")
    return records


def write_csv_records(
    path: pathlib.Path | str,
    records: Iterable[dict[str, Any]],
) -> None:
    """Write dict records to a CSV file (inverse of read_csv_records)."""
    records = list(records)
    if not records:
        raise DataSourceError("cannot write zero records")
    path = pathlib.Path(path)
    fieldnames = list(records[0].keys())
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(
                {
                    key: "" if value is None else value
                    for key, value in record.items()
                }
            )


class CsvSource(EngineSource):
    """A directory of ``*.csv`` files, one table per file.

    The file stem becomes the table name (``sales.csv`` -> ``sales``).
    """

    def __init__(
        self, directory: pathlib.Path | str, name: str | None = None
    ) -> None:
        directory = pathlib.Path(directory)
        if not directory.is_dir():
            raise DataSourceError(f"no such directory: {directory}")
        database = Database(name or directory.name)
        files = sorted(directory.glob("*.csv"))
        if not files:
            raise DataSourceError(f"no CSV files found in {directory}")
        for file_path in files:
            records = read_csv_records(file_path)
            database.load_table(file_path.stem, records)
        super().__init__(database, name or directory.name)
        self.directory = directory
