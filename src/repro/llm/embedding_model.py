"""The embedding model served by SMMF (text -> vector as JSON)."""

from __future__ import annotations

import json

from repro.llm.base import GenerationRequest, LanguageModel
from repro.rag.embedder import HashingEmbedder


class EmbeddingModel(LanguageModel):
    """Prompt text -> JSON-encoded embedding vector.

    SMMF serves embedding models exactly like chat models (the paper's
    multi-model management covers encoders too); the response body is a
    JSON list so it crosses the same text-only transport.
    """

    def __init__(self, name: str = "embedder", dim: int = 128) -> None:
        super().__init__(name, frozenset({"embed"}))
        self._embedder = HashingEmbedder(dim=dim)

    @property
    def dim(self) -> int:
        return self._embedder.dim

    def complete(self, request: GenerationRequest) -> str:
        vector = self._embedder.embed(request.prompt)
        return json.dumps([round(float(x), 6) for x in vector])

    def generate_batch(self, requests):
        """Vectorized batch: all prompts embed in one matrix pass.

        The matrix is computed up front (deduplicating repeated
        prompts); per-request bookkeeping then reuses the precomputed
        row, so responses are identical to sequential ``generate``.
        """
        from repro.llm.base import GenerationResponse, count_tokens, LLMError

        matrix = self._embedder.embed_batch(
            [request.prompt for request in requests]
        )
        responses = []
        for request, row in zip(requests, matrix):
            if request.task is not None and request.task not in self.capabilities:
                raise LLMError(
                    f"model {self.name!r} does not support task "
                    f"{request.task!r} (capabilities: "
                    f"{sorted(self.capabilities)})"
                )
            text = json.dumps([round(float(x), 6) for x in row])
            responses.append(
                GenerationResponse(
                    text=text,
                    model=self.name,
                    prompt_tokens=count_tokens(request.prompt),
                    completion_tokens=count_tokens(text),
                )
            )
        return responses

    def generate(self, request: GenerationRequest):
        # Vectors must never be truncated by max_tokens; bypass the
        # budget clamp while keeping usage accounting.
        response = super().generate(
            GenerationRequest(
                prompt=request.prompt,
                task=request.task,
                max_tokens=10**9,
                temperature=request.temperature,
                metadata=request.metadata,
            )
        )
        return response
