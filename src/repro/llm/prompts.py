"""The prompt contract shared by applications and simulated models.

Applications build prompts with the ``build_*`` helpers; simulated
models parse them back with :func:`parse_prompt_sections`. Keeping both
sides in one module prevents the two from drifting apart — the same
reason real systems centralize their prompt templates.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.datasources.base import DataSource

SCHEMA_HEADER = "Given the database schema:"
VALUES_HEADER = "Known column values:"
QUESTION_HEADER = "Write one SQL query answering:"
CONTEXT_HEADER = "Context:"
QA_QUESTION_HEADER = "Question:"
SQL_HEADER = "Explain in plain language what this SQL does:"
GOAL_HEADER = "Plan the steps to accomplish:"
REPAIR_HEADER = "A previous SQL draft was rejected by the analyzer."


def build_text2sql_prompt(
    source: DataSource,
    question: str,
    max_values_per_column: int = 20,
) -> str:
    """Schema + sample values + question, the standard Text-to-SQL
    prompt layout (sample values enable database-content linking)."""
    lines = [SCHEMA_HEADER, source.describe_schema()]
    value_lines = []
    for info in source.tables():
        for column, ctype in zip(info.columns, info.column_types):
            if ctype != "TEXT":
                continue
            values = source.query(
                f"SELECT DISTINCT {column} FROM {info.name} "
                f"WHERE {column} IS NOT NULL LIMIT {max_values_per_column}"
            ).column(column)
            if values:
                rendered = ", ".join(str(v) for v in values)
                value_lines.append(f"{info.name}.{column}: {rendered}")
    if value_lines:
        lines.append(VALUES_HEADER)
        lines.extend(value_lines)
    lines.append(f"{QUESTION_HEADER} {question}")
    lines.append("SQL:")
    return "\n".join(lines)


def build_sql_repair_prompt(
    source: DataSource,
    question: str,
    sql: str,
    findings: list[str],
    max_values_per_column: int = 20,
) -> str:
    """A text2sql prompt carrying analyzer feedback for one repair turn.

    The feedback block is inserted *before* the question header so
    :func:`parse_prompt_sections` keeps the question section clean
    (simulated models re-parse their own prompts; the feedback lines
    are shaped so the values parser skips them).
    """
    base = build_text2sql_prompt(
        source, question, max_values_per_column=max_values_per_column
    )
    # Pre-colon fragments carry no dot, so parse_values_text skips them.
    feedback_lines = [REPAIR_HEADER, f"Rejected draft: {sql}", "Findings:"]
    feedback_lines.extend(f"- {finding}" for finding in findings)
    feedback_lines.append("Write a corrected query fixing every finding.")
    feedback = "\n".join(feedback_lines)
    index = base.rfind(QUESTION_HEADER)
    if index == -1:
        return f"{base}\n{feedback}"
    return f"{base[:index]}{feedback}\n{base[index:]}"


def build_qa_prompt(context: str, question: str) -> str:
    return (
        "You are a helpful data assistant. Use only the context.\n"
        f"{CONTEXT_HEADER}\n{context}\n\n"
        f"{QA_QUESTION_HEADER} {question}\nAnswer:"
    )


def build_sql2text_prompt(sql: str) -> str:
    return f"{SQL_HEADER}\n{sql}\nExplanation:"


def build_plan_prompt(goal: str, schema: Optional[str] = None) -> str:
    lines = [f"{GOAL_HEADER} {goal}"]
    if schema:
        lines.append(SCHEMA_HEADER)
        lines.append(schema)
    lines.append("Respond with a JSON list of steps.")
    return "\n".join(lines)


def parse_prompt_sections(prompt: str) -> dict[str, str]:
    """Split a prompt built by the helpers above into named sections."""
    headers = {
        "schema": SCHEMA_HEADER,
        "values": VALUES_HEADER,
        "question": QUESTION_HEADER,
        "context": CONTEXT_HEADER,
        "qa_question": QA_QUESTION_HEADER,
        "sql": SQL_HEADER,
        "goal": GOAL_HEADER,
    }
    positions = []
    for name, header in headers.items():
        index = prompt.find(header)
        if index != -1:
            positions.append((index, len(header), name))
    positions.sort()
    sections: dict[str, str] = {}
    for rank, (start, header_len, name) in enumerate(positions):
        end = positions[rank + 1][0] if rank + 1 < len(positions) else len(prompt)
        body = prompt[start + header_len : end].strip()
        # Trailing cue lines ("SQL:", "Answer:", ...) belong to no section.
        body = re.sub(
            r"\n(?:SQL|Answer|Explanation|Respond with a JSON list of steps\.?):?\s*$",
            "",
            body,
        ).strip()
        sections[name] = body
    return sections


_SCHEMA_LINE = re.compile(r"^(\w+)\((.*)\)(?:\s*\[(\d+) rows\])?$")


def parse_schema_text(schema_text: str) -> dict[str, list[tuple[str, str]]]:
    """Parse ``table(col TYPE, ...)`` lines back into metadata."""
    tables: dict[str, list[tuple[str, str]]] = {}
    for line in schema_text.splitlines():
        line = line.strip()
        if not line:
            continue
        match = _SCHEMA_LINE.match(line)
        if not match:
            continue
        table = match.group(1)
        columns: list[tuple[str, str]] = []
        for part in match.group(2).split(","):
            pieces = part.strip().split()
            if not pieces:
                continue
            name = pieces[0]
            ctype = pieces[1] if len(pieces) > 1 else "TEXT"
            columns.append((name, ctype))
        tables[table] = columns
    return tables


def parse_values_text(
    values_text: str,
) -> tuple[dict[str, list[tuple[str, str]]], dict[str, str]]:
    """Parse ``table.column: v1, v2`` lines into a value index.

    Returns ``(value_index, value_originals)`` — lookups are done on
    lower-cased values, but SQL literals must keep database casing.
    """
    value_index: dict[str, list[tuple[str, str]]] = {}
    value_originals: dict[str, str] = {}
    for line in values_text.splitlines():
        line = line.strip()
        if ":" not in line or "." not in line.split(":", 1)[0]:
            continue
        location, _, rendered = line.partition(":")
        table, _, column = location.strip().partition(".")
        for value in rendered.split(","):
            original = value.strip()
            cleaned = original.lower()
            if cleaned:
                value_index.setdefault(cleaned, []).append((table, column))
                value_originals.setdefault(cleaned, original)
    return value_index, value_originals
