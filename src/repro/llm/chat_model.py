"""The simulated conversational model: extractive QA, SQL explanation
and result summarization."""

from __future__ import annotations

import re

from repro.llm.base import (
    GenerationRequest,
    LanguageModel,
    LLMError,
    deduplicated_batch,
)
from repro.llm.prompts import parse_prompt_sections
from repro.nlu.sql2text import sql_to_text
from repro.rag.embedder import tokenize_words
from repro.rag.inverted_index import STOPWORDS
from repro.sqlengine.errors import SqlEngineError


class ChatModel(LanguageModel):
    """Prompt -> fluent text. Capabilities: ``qa``, ``sql2text``,
    ``summary``, ``chat``."""

    def __init__(self, name: str = "chat") -> None:
        super().__init__(
            name, frozenset({"qa", "sql2text", "summary", "chat"})
        )

    def generate_batch(self, requests):
        """Vectorized batch: identical prompts run the model once."""
        return deduplicated_batch(self, requests)

    def complete(self, request: GenerationRequest) -> str:
        sections = parse_prompt_sections(request.prompt)
        if "sql" in sections:
            return self._explain_sql(sections["sql"])
        if "context" in sections and "qa_question" in sections:
            return self._answer(sections["context"], sections["qa_question"])
        if request.task == "summary" or "Summarize" in request.prompt:
            return self._summarize(request.prompt)
        # Generic chat: echo a polite acknowledgement of the request.
        head = request.prompt.strip().splitlines()[0][:160]
        return f"I understood your request: {head}"

    @staticmethod
    def _explain_sql(sql: str) -> str:
        try:
            return sql_to_text(sql)
        except SqlEngineError as exc:
            raise LLMError(f"cannot explain invalid SQL: {exc}") from exc

    @staticmethod
    def _answer(context: str, question: str) -> str:
        """Extractive QA: the context sentence(s) most like the question."""
        sentences = [
            s.strip()
            for s in re.split(r"(?<=[.!?。])\s+|\n", context)
            if s.strip()
        ]
        if not sentences:
            return "I could not find relevant information in the context."
        question_terms = {
            t for t in tokenize_words(question) if t not in STOPWORDS
        }
        scored = []
        for sentence in sentences:
            terms = set(tokenize_words(sentence))
            overlap = len(question_terms & terms)
            scored.append((overlap, sentence))
        scored.sort(key=lambda pair: -pair[0])
        best_score, best = scored[0]
        if best_score == 0:
            return "I could not find relevant information in the context."
        picked = [best]
        for score, sentence in scored[1:3]:
            if score >= max(1, best_score - 1) and sentence not in picked:
                picked.append(sentence)
        return " ".join(picked)

    @staticmethod
    def _summarize(prompt: str) -> str:
        """Extractive summary of the content after the instruction line."""
        _instruction, _, body = prompt.partition("\n")
        lines = [line.strip() for line in body.splitlines() if line.strip()]
        if not lines:
            return "There is nothing to summarize."
        if lines[-1].rstrip(":").lower() == "summary":
            lines = lines[:-1]
        shown = lines[:3]
        summary = "; ".join(shown)
        if len(lines) > 3:
            summary += f" (and {len(lines) - 3} more)"
        return summary
