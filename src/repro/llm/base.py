"""The language-model interface served by SMMF."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.rag.embedder import tokenize_words


class LLMError(Exception):
    """A model failed to produce a response."""


@dataclass
class GenerationRequest:
    """One inference call.

    ``task`` is an optional routing hint ("text2sql", "plan", "qa",
    "summary"); models that serve several tasks dispatch on it, and the
    SMMF balancer can route by capability.
    """

    prompt: str
    task: Optional[str] = None
    max_tokens: int = 512
    temperature: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class GenerationResponse:
    """The model's answer plus usage accounting."""

    text: str
    model: str
    prompt_tokens: int
    completion_tokens: int
    finish_reason: str = "stop"
    #: True when the answer came from the degradation ladder (fallback
    #: model or stale cache) rather than the requested model's pool.
    degraded: bool = False

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


def count_tokens(text: str) -> int:
    """Token accounting used by every simulated model."""
    return len(tokenize_words(text))


def chunk_text(text: str) -> list[str]:
    """Split a completion into the token-sized chunks streaming emits.

    One canonical chunking shared by :meth:`LanguageModel.stream` and
    the continuous-batching engine's per-member streams, so a response
    streams identically whichever path delivered it: the first word
    bare, every following word with its leading space.
    """
    words = text.split(" ")
    return [
        word if index == 0 else f" {word}"
        for index, word in enumerate(words)
    ]


class LanguageModel(abc.ABC):
    """A deployable model: name, capabilities, and generate()."""

    def __init__(self, name: str, capabilities: frozenset[str]) -> None:
        self.name = name
        self.capabilities = capabilities

    @abc.abstractmethod
    def complete(self, request: GenerationRequest) -> str:
        """Produce the completion text for ``request``."""

    def generate(self, request: GenerationRequest) -> GenerationResponse:
        """Run inference with usage accounting and budget enforcement."""
        if request.task is not None and request.task not in self.capabilities:
            raise LLMError(
                f"model {self.name!r} does not support task "
                f"{request.task!r} (capabilities: {sorted(self.capabilities)})"
            )
        text = self.complete(request)
        completion_tokens = count_tokens(text)
        finish_reason = "stop"
        if completion_tokens > request.max_tokens:
            words = text.split()
            text = " ".join(words[: request.max_tokens])
            completion_tokens = request.max_tokens
            finish_reason = "length"
        return GenerationResponse(
            text=text,
            model=self.name,
            prompt_tokens=count_tokens(request.prompt),
            completion_tokens=completion_tokens,
            finish_reason=finish_reason,
        )

    def generate_batch(
        self, requests: list[GenerationRequest]
    ) -> list[GenerationResponse]:
        """Run a batch of inference calls; responses align with inputs.

        The base implementation is a plain loop, so every model gains
        the API for free. Models whose execution can amortize work
        across a batch (shared forward pass, deduplicated prompts,
        one latency window on simulated hardware) override this with a
        genuinely vectorized implementation — that override is what the
        SMMF micro-batching scheduler exploits.
        """
        return [self.generate(request) for request in requests]

    def stream(self, request: GenerationRequest):
        """Yield the completion in token-sized chunks.

        The deterministic models produce the full completion and chunk
        it; the interface matches how serving stacks stream tokens, so
        client-side streaming code paths are real.
        """
        response = self.generate(request)
        yield from chunk_text(response.text)

    def start_batch(
        self, requests: list[GenerationRequest]
    ) -> "BatchExecution":
        """Open a resumable batched run (the continuous-batching hook).

        Where :meth:`generate_batch` is one closed-world call, a
        :class:`BatchExecution` is a *live* batch: the serving engine
        admits newly arrived compatible requests into it between
        forward passes and cancels members whose consumer walked away.
        The base execution drives :meth:`generate_batch` one fused
        pass at a time, so every model supports step-level scheduling
        without further code; models with their own batch economics
        (e.g. :class:`repro.serving.simulation.LatencySimModel`)
        inherit them automatically because each step *is* a
        ``generate_batch`` call.
        """
        return BatchExecution(self, requests)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class BatchExecution:
    """One in-flight batched inference run with admit/step/cancel.

    The vLLM-style decomposition of ``generate_batch``: instead of one
    call over a frozen request list, the batch is a set of *members*
    that changes between steps. :meth:`step` runs one fused forward
    pass over every admitted-but-uncomputed member; :meth:`admit` adds
    a member mid-run; :meth:`cancel` removes one whose consumer
    disconnected — before its pass, it never executes at all.

    Not thread-safe by itself: the serving engine serializes all calls
    per execution (one engine task owns one execution).
    """

    def __init__(
        self, model: LanguageModel, requests: list[GenerationRequest]
    ) -> None:
        self.model = model
        self._requests: dict[int, GenerationRequest] = {}
        self._responses: dict[int, GenerationResponse] = {}
        self._next_member = 0
        for request in requests:
            self.admit(request)

    def admit(self, request: GenerationRequest) -> int:
        """Add one member; returns its id (stable for this run)."""
        member = self._next_member
        self._next_member += 1
        self._requests[member] = request
        return member

    def cancel(self, member: int) -> None:
        """Drop a member; uncomputed members never run."""
        self._requests.pop(member, None)
        self._responses.pop(member, None)

    def pending(self) -> list[int]:
        """Members admitted but not yet computed, in admission order."""
        return [
            member
            for member in sorted(self._requests)
            if member not in self._responses
        ]

    def step(self) -> list[int]:
        """One fused forward pass over every pending member.

        Returns the member ids computed by this pass. Raises whatever
        ``generate_batch`` raises (:class:`LLMError` for a poison
        prompt — no member is marked computed, so the caller can
        isolate them individually).
        """
        todo = self.pending()
        if not todo:
            return []
        responses = self.model.generate_batch(
            [self._requests[member] for member in todo]
        )
        for member, response in zip(todo, responses):
            self._responses[member] = response
        return todo

    def response(self, member: int) -> GenerationResponse:
        return self._responses[member]


def batch_key(request: GenerationRequest) -> tuple:
    """Identity of a request for deduplicated batch execution.

    Two requests with equal keys are served by one model run; metadata
    is deliberately excluded because the deterministic models condition
    only on prompt/task/budget (metadata is routing context).
    """
    return (
        request.prompt,
        request.task,
        request.max_tokens,
        request.temperature,
    )


def deduplicated_batch(
    model: LanguageModel, requests: list[GenerationRequest]
) -> list[GenerationResponse]:
    """Vectorized batch execution for deterministic models.

    Identical requests in one batch — the common shape under concurrent
    sessions asking the same question — run the model exactly once and
    share the response object (responses are immutable dataclasses).
    Distinct requests still execute individually, so output is
    position-for-position identical to the base loop.
    """
    computed: dict[tuple, GenerationResponse] = {}
    responses: list[GenerationResponse] = []
    for request in requests:
        key = batch_key(request)
        response = computed.get(key)
        if response is None:
            response = computed[key] = model.generate(request)
        responses.append(response)
    return responses
