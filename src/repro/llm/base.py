"""The language-model interface served by SMMF."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.rag.embedder import tokenize_words


class LLMError(Exception):
    """A model failed to produce a response."""


@dataclass
class GenerationRequest:
    """One inference call.

    ``task`` is an optional routing hint ("text2sql", "plan", "qa",
    "summary"); models that serve several tasks dispatch on it, and the
    SMMF balancer can route by capability.
    """

    prompt: str
    task: Optional[str] = None
    max_tokens: int = 512
    temperature: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class GenerationResponse:
    """The model's answer plus usage accounting."""

    text: str
    model: str
    prompt_tokens: int
    completion_tokens: int
    finish_reason: str = "stop"

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


def count_tokens(text: str) -> int:
    """Token accounting used by every simulated model."""
    return len(tokenize_words(text))


class LanguageModel(abc.ABC):
    """A deployable model: name, capabilities, and generate()."""

    def __init__(self, name: str, capabilities: frozenset[str]) -> None:
        self.name = name
        self.capabilities = capabilities

    @abc.abstractmethod
    def complete(self, request: GenerationRequest) -> str:
        """Produce the completion text for ``request``."""

    def generate(self, request: GenerationRequest) -> GenerationResponse:
        """Run inference with usage accounting and budget enforcement."""
        if request.task is not None and request.task not in self.capabilities:
            raise LLMError(
                f"model {self.name!r} does not support task "
                f"{request.task!r} (capabilities: {sorted(self.capabilities)})"
            )
        text = self.complete(request)
        completion_tokens = count_tokens(text)
        finish_reason = "stop"
        if completion_tokens > request.max_tokens:
            words = text.split()
            text = " ".join(words[: request.max_tokens])
            completion_tokens = request.max_tokens
            finish_reason = "length"
        return GenerationResponse(
            text=text,
            model=self.name,
            prompt_tokens=count_tokens(request.prompt),
            completion_tokens=completion_tokens,
            finish_reason=finish_reason,
        )

    def stream(self, request: GenerationRequest):
        """Yield the completion in token-sized chunks.

        The deterministic models produce the full completion and chunk
        it; the interface matches how serving stacks stream tokens, so
        client-side streaming code paths are real.
        """
        response = self.generate(request)
        words = response.text.split(" ")
        for index, word in enumerate(words):
            yield word if index == 0 else f" {word}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
