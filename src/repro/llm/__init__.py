"""Simulated large language models.

Each model implements the :class:`LanguageModel` interface served by
SMMF. The substitution for real neural LLMs (documented in DESIGN.md):
generation is deterministic — a grammar-driven Text-to-SQL parser, a
rule-based planner, extractive QA/summarization — behind exactly the
prompt-in/text-out contract a real model would have, so every serving,
prompt-assembly and post-processing code path is identical.
"""

from repro.llm.base import (
    GenerationRequest,
    GenerationResponse,
    LanguageModel,
    LLMError,
    batch_key,
    deduplicated_batch,
)
from repro.llm.chat_model import ChatModel
from repro.llm.embedding_model import EmbeddingModel
from repro.llm.planner_model import PlannerModel
from repro.llm.prompts import (
    build_qa_prompt,
    build_sql2text_prompt,
    build_text2sql_prompt,
    parse_prompt_sections,
)
from repro.llm.sql_coder import SqlCoderModel

__all__ = [
    "ChatModel",
    "EmbeddingModel",
    "GenerationRequest",
    "GenerationResponse",
    "LLMError",
    "LanguageModel",
    "PlannerModel",
    "SqlCoderModel",
    "batch_key",
    "build_qa_prompt",
    "deduplicated_batch",
    "build_sql2text_prompt",
    "build_text2sql_prompt",
    "parse_prompt_sections",
]
