"""The simulated planning model.

Given a data-analysis goal, emits a JSON plan the multi-agent framework
executes: one step per analysis dimension plus a final aggregation
step. The dimension -> chart-type mapping follows the paper's Figure 3
walkthrough (donut for categorical share, bar for per-user comparison,
area for monthly trends).
"""

from __future__ import annotations

import json
import re

from repro.llm.base import GenerationRequest, LanguageModel, LLMError
from repro.llm.prompts import parse_prompt_sections, parse_schema_text

#: goal keyword -> (dimension name, chart type, short description)
_DIMENSION_RULES: list[tuple[tuple[str, ...], str, str, str]] = [
    (
        ("category", "categories", "product", "类别", "产品"),
        "category",
        "donut",
        "total sales by product category",
    ),
    (
        ("user", "customer", "demographic", "用户", "客户"),
        "user",
        "bar",
        "sales by user",
    ),
    (
        ("month", "monthly", "trend", "time", "月", "趋势"),
        "month",
        "area",
        "monthly sales trend",
    ),
    (
        ("region", "geography", "地区"),
        "region",
        "bar",
        "sales by region",
    ),
    (
        ("segment", "tier"),
        "segment",
        "donut",
        "sales by customer segment",
    ),
]

_DEFAULT_DIMENSIONS = ("category", "user", "month")

_NUMBER_WORDS = {
    "one": 1, "two": 2, "three": 3, "four": 4, "five": 5, "三": 3,
}


class PlannerModel(LanguageModel):
    """Goal prompt -> JSON plan. Capabilities: ``plan``."""

    def __init__(self, name: str = "planner") -> None:
        super().__init__(name, frozenset({"plan"}))

    def complete(self, request: GenerationRequest) -> str:
        sections = parse_prompt_sections(request.prompt)
        goal = sections.get("goal")
        if not goal:
            raise LLMError(f"{self.name}: prompt lacks a goal section")
        dimensions = self._choose_dimensions(goal.lower())
        available = self._available_dimensions(sections.get("schema"))
        if available is not None:
            dimensions = [d for d in dimensions if d[0] in available] or dimensions
        steps = []
        for number, (dimension, chart, description) in enumerate(
            dimensions, start=1
        ):
            steps.append(
                {
                    "step": number,
                    "action": "chart",
                    "dimension": dimension,
                    "chart_type": chart,
                    "description": description,
                }
            )
        if self._wants_forecast(goal.lower()):
            steps.append(
                {
                    "step": len(steps) + 1,
                    "action": "forecast",
                    "horizon": self._forecast_horizon(goal.lower()),
                    "description": "project the measure forward",
                }
            )
        steps.append(
            {
                "step": len(steps) + 1,
                "action": "aggregate",
                "description": "collect the charts into one report",
            }
        )
        return json.dumps(steps)

    @staticmethod
    def _wants_forecast(goal: str) -> bool:
        return any(
            keyword in goal
            for keyword in ("forecast", "predict", "projection", "预测")
        )

    @staticmethod
    def _forecast_horizon(goal: str) -> int:
        match = re.search(r"next\s+(\d+)|未来\s*(\d+)", goal)
        if match:
            return int(match.group(1) or match.group(2))
        return 3

    def _choose_dimensions(self, goal: str) -> list[tuple[str, str, str]]:
        chosen: list[tuple[str, str, str]] = []
        for keywords, dimension, chart, description in _DIMENSION_RULES:
            if any(keyword in goal for keyword in keywords):
                chosen.append((dimension, chart, description))
        wanted = self._requested_dimension_count(goal)
        if len(chosen) < wanted:
            for keywords, dimension, chart, description in _DIMENSION_RULES:
                if dimension in _DEFAULT_DIMENSIONS and all(
                    dimension != c[0] for c in chosen
                ):
                    chosen.append((dimension, chart, description))
                if len(chosen) >= wanted:
                    break
        return chosen[: max(wanted, len(chosen))]

    @staticmethod
    def _requested_dimension_count(goal: str) -> int:
        match = re.search(
            r"(?:at least\s+)?(\d+|one|two|three|four|five|三)\s*"
            r"(?:distinct\s+)?(?:dimension|个维度|维度)",
            goal,
        )
        if match:
            token = match.group(1)
            return _NUMBER_WORDS.get(token, None) or int(token)
        return 3

    @staticmethod
    def _available_dimensions(schema_text: str | None) -> set[str] | None:
        if not schema_text:
            return None
        tables = parse_schema_text(schema_text)
        if not tables:
            return None
        columns = {
            name.lower()
            for table_columns in tables.values()
            for name, _ctype in table_columns
        }
        available = set()
        if "category" in columns:
            available.add("category")
        if any(c in columns for c in ("user_id", "user_name")):
            available.add("user")
        if any(c.endswith("date") for c in columns):
            available.add("month")
        if "region" in columns:
            available.add("region")
        if "segment" in columns:
            available.add("segment")
        return available or None
