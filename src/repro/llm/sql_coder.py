"""The simulated Text-to-SQL model ("sql-coder").

Reconstructs a :class:`SchemaIndex` from the schema and value sections
of the prompt, then runs the grammar-driven parser. The model's
*lexicon* plays the role of its weights: the zero-shot model ships with
schema identifiers only; :mod:`repro.hub` fine-tuning produces a model
whose lexicon carries learned domain synonyms.
"""

from __future__ import annotations

from typing import Optional

from repro.llm.base import (
    GenerationRequest,
    LanguageModel,
    LLMError,
    deduplicated_batch,
)
from repro.llm.prompts import (
    parse_prompt_sections,
    parse_schema_text,
    parse_values_text,
)
from repro.nlu.lexicon import Lexicon
from repro.nlu.schema_linking import SchemaIndex, guess_label_column
from repro.nlu.text2sql import Text2SqlError, Text2SqlParser


class SqlCoderModel(LanguageModel):
    """Prompt -> SQL text. Capabilities: ``text2sql``."""

    def __init__(
        self,
        name: str = "sql-coder",
        lexicon: Optional[Lexicon] = None,
        languages: tuple[str, ...] = ("en", "zh"),
    ) -> None:
        super().__init__(name, frozenset({"text2sql"}))
        #: Learned synonyms merged into every schema's base lexicon.
        self.lexicon = lexicon or Lexicon()
        #: Languages the model understands; English-centric hosted
        #: models are simulated with ``languages=("en",)``.
        self.languages = languages

    def generate_batch(self, requests):
        """Vectorized batch: identical prompts run the parser once."""
        return deduplicated_batch(self, requests)

    def complete(self, request: GenerationRequest) -> str:
        from repro.nlu.multilingual import detect_language

        sections = parse_prompt_sections(request.prompt)
        schema_text = sections.get("schema")
        question = sections.get("question")
        if not schema_text or not question:
            raise LLMError(
                f"{self.name}: prompt lacks a schema or question section"
            )
        language = detect_language(question)
        if language not in self.languages:
            raise LLMError(
                f"{self.name}: language {language!r} is not supported "
                f"(supported: {list(self.languages)})"
            )
        index = self._build_index(schema_text, sections.get("values", ""))
        lexicon = index.base_lexicon()
        lexicon.merge(self.lexicon)
        parser = Text2SqlParser(index, lexicon)
        try:
            result = parser.parse(question)
        except Text2SqlError as exc:
            raise LLMError(f"{self.name}: {exc}") from exc
        return result.sql

    @staticmethod
    def _build_index(schema_text: str, values_text: str) -> SchemaIndex:
        parsed = parse_schema_text(schema_text)
        if not parsed:
            raise LLMError("schema section could not be parsed")
        tables = {
            table: [name for name, _ctype in columns]
            for table, columns in parsed.items()
        }
        column_types = {
            (table, name): ctype
            for table, columns in parsed.items()
            for name, ctype in columns
        }
        label_columns = {
            table: guess_label_column(
                tables[table], column_types, table
            )
            for table in tables
        }
        value_index, value_originals = parse_values_text(values_text)
        return SchemaIndex(
            tables=tables,
            column_types=column_types,
            value_index=value_index,
            label_columns=label_columns,
            value_originals=value_originals,
        )
