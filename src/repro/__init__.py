"""DB-GPT reproduction: LLM-empowered data interaction, from scratch.

The four-layer system of the VLDB 2024 demo paper on deterministic
laptop-scale substrates. Start with :class:`repro.core.DBGPT`::

    from repro import DBGPT
    dbgpt = DBGPT.boot()

See README.md for the tour, DESIGN.md for the architecture and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import DBGPT, DbGptConfig

__version__ = "0.1.0"

__all__ = ["DBGPT", "DbGptConfig", "__version__"]
