"""Seeded synthetic datasets.

The paper demonstrates on proprietary enterprise data we do not have;
these generators produce the closest synthetic equivalents (documented
in DESIGN.md):

- :mod:`repro.datasets.sales` — the Figure 3 demo workload (orders with
  product-category / user / month dimensions).
- :mod:`repro.datasets.spider` — Spider-style (question, SQL) pairs over
  several domain schemas, for Text-to-SQL training and evaluation.
- :mod:`repro.datasets.documents` — a topical document corpus with gold
  relevance labels, for RAG retrieval benchmarks.
"""

from repro.datasets.documents import CorpusSpec, QueryCase, build_corpus
from repro.datasets.sales import build_sales_database, sales_summary
from repro.datasets.spider import (
    Text2SqlExample,
    build_spider_database,
    generate_examples,
    list_domains,
)

__all__ = [
    "CorpusSpec",
    "QueryCase",
    "Text2SqlExample",
    "build_corpus",
    "build_sales_database",
    "build_spider_database",
    "generate_examples",
    "list_domains",
    "sales_summary",
]
