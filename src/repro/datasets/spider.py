"""Spider-style synthetic Text-to-SQL dataset.

Four domain schemas, each with a *gold synonym lexicon*: the phrasing
vocabulary real users employ ("clients" for the ``customers`` table,
"earnings" for the ``cost`` column). Questions are generated from
templates using those synonyms, in English and Chinese.

The zero-shot Text-to-SQL model only knows the schema identifiers, so it
misses synonym-phrased questions; fine-tuning (``repro.hub``) learns the
synonym -> schema mappings from training pairs. This reproduces — with
the same causal mechanism, domain vocabulary acquisition — the paper's
claim that fine-tuned models beat zero-shot LLMs on domain Text-to-SQL.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.sqlengine import Database


@dataclass(frozen=True)
class Text2SqlExample:
    """One NL question paired with its gold SQL."""

    question: str
    sql: str
    domain: str
    language: str = "en"  # 'en' | 'zh'
    template: str = ""


@dataclass
class _Domain:
    name: str
    ddl: list[str]
    rows: dict[str, list[tuple]]
    #: phrase -> (kind, target): kind is 'table' or 'column'.
    synonyms: dict[str, tuple[str, str]]
    #: numeric columns per table (aggregable)
    numeric: dict[str, list[str]]
    #: categorical columns per table (filterable/groupable)
    categorical: dict[str, list[str]]
    #: the human-readable label column per table
    label_column: dict[str, str]
    #: Chinese names for tables/columns (surface forms)
    zh: dict[str, str] = field(default_factory=dict)
    #: join paths for cross-table questions:
    #: (fact table, join key, dimension table, dimension label column)
    joins: list[tuple[str, str, str, str]] = field(default_factory=list)


def _retail() -> _Domain:
    return _Domain(
        name="retail",
        ddl=[
            "CREATE TABLE customers (customer_id INTEGER PRIMARY KEY, "
            "name TEXT, country TEXT, segment TEXT)",
            "CREATE TABLE purchases (purchase_id INTEGER PRIMARY KEY, "
            "customer_id INTEGER, item TEXT, cost REAL, qty INTEGER)",
        ],
        rows={
            "customers": [
                (1, "acme", "france", "enterprise"),
                (2, "blue sky", "japan", "startup"),
                (3, "corex", "france", "startup"),
                (4, "delta", "brazil", "enterprise"),
                (5, "ensoft", "japan", "smb"),
                (6, "flywheel", "brazil", "smb"),
            ],
            "purchases": [
                (1, 1, "widget", 120.0, 3),
                (2, 1, "gadget", 80.0, 1),
                (3, 2, "widget", 60.0, 2),
                (4, 3, "doohickey", 200.0, 5),
                (5, 4, "gadget", 150.0, 2),
                (6, 5, "widget", 90.0, 1),
                (7, 6, "doohickey", 45.0, 4),
            ],
        },
        synonyms={
            "clients": ("table", "customers"),
            "buyers": ("table", "customers"),
            "transactions": ("table", "purchases"),
            "spend": ("column", "cost"),
            "earnings": ("column", "cost"),
            "market": ("column", "country"),
            "tier": ("column", "segment"),
        },
        numeric={"purchases": ["cost", "qty"]},
        categorical={
            "customers": ["country", "segment"],
            "purchases": ["item"],
        },
        label_column={"customers": "name", "purchases": "item"},
        joins=[("purchases", "customer_id", "customers", "name")],
        zh={
            "customers": "客户",
            "purchases": "采购记录",
            "cost": "花费",
            "qty": "数量",
            "country": "国家",
            "segment": "类型",
            "item": "商品",
            "name": "名称",
        },
    )


def _hr() -> _Domain:
    return _Domain(
        name="hr",
        ddl=[
            "CREATE TABLE employees (emp_id INTEGER PRIMARY KEY, "
            "name TEXT, dept TEXT, salary REAL, level INTEGER)",
            "CREATE TABLE departments (dept TEXT PRIMARY KEY, "
            "head TEXT, budget REAL)",
        ],
        rows={
            "employees": [
                (1, "ada", "engineering", 120.0, 5),
                (2, "bob", "sales", 90.0, 3),
                (3, "cara", "engineering", 110.0, 4),
                (4, "dina", "finance", 95.0, 4),
                (5, "egon", "sales", 70.0, 2),
                (6, "fred", "finance", 105.0, 5),
            ],
            "departments": [
                ("engineering", "ada", 900.0),
                ("sales", "bob", 500.0),
                ("finance", "dina", 650.0),
            ],
        },
        synonyms={
            "staff": ("table", "employees"),
            "workers": ("table", "employees"),
            "teams": ("table", "departments"),
            "pay": ("column", "salary"),
            "compensation": ("column", "salary"),
            "grade": ("column", "level"),
            "division": ("column", "dept"),
        },
        numeric={"employees": ["salary", "level"], "departments": ["budget"]},
        categorical={"employees": ["dept"], "departments": ["head"]},
        label_column={"employees": "name", "departments": "dept"},
        zh={
            "employees": "员工",
            "departments": "部门",
            "salary": "工资",
            "level": "级别",
            "dept": "部门名",
            "budget": "预算",
            "head": "负责人",
            "name": "姓名",
        },
    )


def _library() -> _Domain:
    return _Domain(
        name="library",
        ddl=[
            "CREATE TABLE books (book_id INTEGER PRIMARY KEY, title TEXT, "
            "author TEXT, genre TEXT, pages INTEGER)",
            "CREATE TABLE loans (loan_id INTEGER PRIMARY KEY, "
            "book_id INTEGER, member TEXT, weeks INTEGER)",
        ],
        rows={
            "books": [
                (1, "dune", "herbert", "scifi", 412),
                (2, "emma", "austen", "classic", 474),
                (3, "foundation", "asimov", "scifi", 255),
                (4, "gatsby", "fitzgerald", "classic", 180),
                (5, "hyperion", "simmons", "scifi", 482),
            ],
            "loans": [
                (1, 1, "mona", 2),
                (2, 3, "nick", 1),
                (3, 1, "olga", 3),
                (4, 4, "pete", 2),
                (5, 5, "mona", 4),
            ],
        },
        synonyms={
            "titles": ("table", "books"),
            "volumes": ("table", "books"),
            "checkouts": ("table", "loans"),
            "borrowings": ("table", "loans"),
            "length": ("column", "pages"),
            "category": ("column", "genre"),
            "writer": ("column", "author"),
            "reader": ("column", "member"),
        },
        numeric={"books": ["pages"], "loans": ["weeks"]},
        categorical={"books": ["genre", "author"], "loans": ["member"]},
        label_column={"books": "title", "loans": "member"},
        joins=[("loans", "book_id", "books", "title")],
        zh={
            "books": "图书",
            "loans": "借阅记录",
            "pages": "页数",
            "genre": "类别",
            "author": "作者",
            "member": "会员",
            "weeks": "周数",
            "title": "书名",
        },
    )


def _clinic() -> _Domain:
    return _Domain(
        name="clinic",
        ddl=[
            "CREATE TABLE patients (patient_id INTEGER PRIMARY KEY, "
            "name TEXT, age INTEGER, city TEXT)",
            "CREATE TABLE visits (visit_id INTEGER PRIMARY KEY, "
            "patient_id INTEGER, doctor TEXT, fee REAL)",
        ],
        rows={
            "patients": [
                (1, "quin", 34, "lyon"),
                (2, "rosa", 58, "nice"),
                (3, "sam", 45, "lyon"),
                (4, "tina", 29, "paris"),
                (5, "uma", 61, "paris"),
            ],
            "visits": [
                (1, 1, "dr gray", 50.0),
                (2, 2, "dr wu", 75.0),
                (3, 2, "dr gray", 60.0),
                (4, 3, "dr wu", 90.0),
                (5, 5, "dr li", 40.0),
            ],
        },
        synonyms={
            "cases": ("table", "patients"),
            "appointments": ("table", "visits"),
            "consultations": ("table", "visits"),
            "charge": ("column", "fee"),
            "billing": ("column", "fee"),
            "physician": ("column", "doctor"),
            "town": ("column", "city"),
        },
        numeric={"patients": ["age"], "visits": ["fee"]},
        categorical={"patients": ["city"], "visits": ["doctor"]},
        label_column={"patients": "name", "visits": "doctor"},
        joins=[("visits", "patient_id", "patients", "name")],
        zh={
            "patients": "病人",
            "visits": "就诊记录",
            "age": "年龄",
            "city": "城市",
            "fee": "费用",
            "doctor": "医生",
            "name": "姓名",
        },
    )


_DOMAINS = {
    "retail": _retail,
    "hr": _hr,
    "library": _library,
    "clinic": _clinic,
}


def list_domains() -> list[str]:
    return sorted(_DOMAINS)


def get_domain(name: str) -> _Domain:
    factory = _DOMAINS.get(name)
    if factory is None:
        raise KeyError(f"unknown domain {name!r}; known: {list_domains()}")
    return factory()


def build_spider_database(domain: str) -> Database:
    """Create and load the database for one domain."""
    spec = get_domain(domain)
    db = Database(domain)
    for ddl in spec.ddl:
        db.execute(ddl)
    for table, rows in spec.rows.items():
        db.insert_rows(table, rows)
    return db


def domain_synonyms(domain: str) -> dict[str, tuple[str, str]]:
    """The gold synonym lexicon (what fine-tuning should recover)."""
    return dict(get_domain(domain).synonyms)


# ---------------------------------------------------------------------------
# Question generation
# ---------------------------------------------------------------------------


def generate_examples(
    domain: str,
    n: int = 40,
    seed: int = 0,
    language: str = "en",
    synonym_rate: float = 0.7,
) -> list[Text2SqlExample]:
    """Generate ``n`` (question, SQL) pairs for a domain.

    ``synonym_rate`` is the probability a table/column mention uses a
    domain synonym instead of its schema identifier — the knob that
    separates zero-shot from fine-tuned accuracy.
    """
    spec = get_domain(domain)
    rng = random.Random(seed)
    examples = []
    attempts = 0
    # Some templates abstain on domains lacking the needed structure
    # (e.g. join templates without a join path); keep drawing so the
    # caller always gets exactly ``n`` examples.
    while len(examples) < n and attempts < n * 10:
        attempts += 1
        template = rng.choice(_TEMPLATES)
        example = template(spec, rng, language, synonym_rate)
        if example is not None:
            examples.append(example)
    return examples


def _surface(
    spec: _Domain,
    rng: random.Random,
    kind: str,
    target: str,
    language: str,
    synonym_rate: float,
) -> str:
    """Pick the phrase used for a table/column mention."""
    if language == "zh":
        return spec.zh.get(target, target)
    candidates = [
        phrase
        for phrase, (k, t) in spec.synonyms.items()
        if k == kind and t == target
    ]
    if candidates and rng.random() < synonym_rate:
        return rng.choice(candidates)
    return target.replace("_", " ")


def _pick_numeric(spec: _Domain, rng: random.Random):
    table = rng.choice([t for t, cols in spec.numeric.items() if cols])
    return table, rng.choice(spec.numeric[table])


def _pick_categorical(spec: _Domain, rng: random.Random, table: Optional[str] = None):
    if table is None or table not in spec.categorical:
        table = rng.choice([t for t, cols in spec.categorical.items() if cols])
    column = rng.choice(spec.categorical[table])
    column_index = _column_position(spec, table, column)
    value = rng.choice(spec.rows[table])[column_index]
    return table, column, value


def _column_position(spec: _Domain, table: str, column: str) -> int:
    ddl = next(d for d in spec.ddl if f"TABLE {table} " in d)
    inside = ddl[ddl.index("(") + 1 : ddl.rindex(")")]
    names = [part.strip().split()[0] for part in inside.split(",")]
    return names.index(column)


def _count_all(spec, rng, language, synonym_rate):
    table = rng.choice(list(spec.rows))
    mention = _surface(spec, rng, "table", table, language, synonym_rate)
    if language == "zh":
        question = f"{mention}一共有多少个？"
    else:
        question = f"How many {mention} are there?"
    return Text2SqlExample(
        question, f"SELECT COUNT(*) FROM {table}", spec.name, language,
        template="count_all",
    )


def _avg_column(spec, rng, language, synonym_rate):
    table, column = _pick_numeric(spec, rng)
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    if language == "zh":
        question = f"{table_mention}的平均{column_mention}是多少？"
    else:
        question = f"What is the average {column_mention} of the {table_mention}?"
    return Text2SqlExample(
        question, f"SELECT AVG({column}) FROM {table}", spec.name, language,
        template="avg_column",
    )


def _sum_column(spec, rng, language, synonym_rate):
    table, column = _pick_numeric(spec, rng)
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    if language == "zh":
        question = f"{table_mention}的总{column_mention}是多少？"
    else:
        question = f"What is the total {column_mention} of the {table_mention}?"
    return Text2SqlExample(
        question, f"SELECT SUM({column}) FROM {table}", spec.name, language,
        template="sum_column",
    )


def _minmax_column(spec, rng, language, synonym_rate):
    table, column = _pick_numeric(spec, rng)
    fn = rng.choice(["MAX", "MIN"])
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    if language == "zh":
        word = "最大" if fn == "MAX" else "最小"
        question = f"{table_mention}的{word}{column_mention}是多少？"
    else:
        word = "maximum" if fn == "MAX" else "minimum"
        question = f"What is the {word} {column_mention} of the {table_mention}?"
    return Text2SqlExample(
        question, f"SELECT {fn}({column}) FROM {table}", spec.name, language,
        template="minmax_column",
    )


def _list_filtered(spec, rng, language, synonym_rate):
    table, column, value = _pick_categorical(spec, rng)
    label = spec.label_column[table]
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    label_mention = _surface(spec, rng, "column", label, language, synonym_rate)
    if language == "zh":
        question = f"列出{column_mention}为{value}的{table_mention}的{label_mention}。"
    else:
        question = (
            f"List the {label_mention} of the {table_mention} "
            f"whose {column_mention} is {value}."
        )
    sql = f"SELECT {label} FROM {table} WHERE {column} = '{value}'"
    return Text2SqlExample(question, sql, spec.name, language, template="list_filtered")


def _count_filtered(spec, rng, language, synonym_rate):
    table, column, value = _pick_categorical(spec, rng)
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    if language == "zh":
        question = f"{column_mention}为{value}的{table_mention}有多少个？"
    else:
        question = (
            f"How many {table_mention} have {column_mention} {value}?"
        )
    sql = f"SELECT COUNT(*) FROM {table} WHERE {column} = '{value}'"
    return Text2SqlExample(question, sql, spec.name, language, template="count_filtered")


def _group_count(spec, rng, language, synonym_rate):
    table = rng.choice([t for t, cols in spec.categorical.items() if cols])
    column = rng.choice(spec.categorical[table])
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    if language == "zh":
        question = f"每个{column_mention}有多少个{table_mention}？"
    else:
        question = f"How many {table_mention} are there per {column_mention}?"
    sql = f"SELECT {column}, COUNT(*) FROM {table} GROUP BY {column}"
    return Text2SqlExample(question, sql, spec.name, language, template="group_count")


def _top_n(spec, rng, language, synonym_rate):
    table, column = _pick_numeric(spec, rng)
    label = spec.label_column[table]
    n = rng.randint(2, 3)
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    label_mention = _surface(spec, rng, "column", label, language, synonym_rate)
    if language == "zh":
        question = (
            f"{column_mention}最高的{n}个{table_mention}的{label_mention}是什么？"
        )
    else:
        question = (
            f"What are the {label_mention} of the top {n} {table_mention} "
            f"by {column_mention}?"
        )
    sql = (
        f"SELECT {label} FROM {table} ORDER BY {column} DESC LIMIT {n}"
    )
    return Text2SqlExample(question, sql, spec.name, language, template="top_n")


def _distinct_values(spec, rng, language, synonym_rate):
    table = rng.choice([t for t, cols in spec.categorical.items() if cols])
    column = rng.choice(spec.categorical[table])
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    if language == "zh":
        question = f"列出{table_mention}所有不同的{column_mention}。"
    else:
        question = (
            f"List all the distinct {column_mention} of the {table_mention}."
        )
    sql = f"SELECT DISTINCT {column} FROM {table}"
    return Text2SqlExample(question, sql, spec.name, language, template="distinct_values")


def _count_distinct(spec, rng, language, synonym_rate):
    table = rng.choice([t for t, cols in spec.categorical.items() if cols])
    column = rng.choice(spec.categorical[table])
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    column_mention = _surface(spec, rng, "column", column, language, synonym_rate)
    if language == "zh":
        question = f"{table_mention}一共有多少个不同的{column_mention}？"
    else:
        question = (
            f"How many different {column_mention} do the "
            f"{table_mention} have?"
        )
    sql = f"SELECT COUNT(DISTINCT {column}) FROM {table}"
    return Text2SqlExample(
        question, sql, spec.name, language, template="count_distinct"
    )


def _avg_group(spec, rng, language, synonym_rate):
    table, measure = _pick_numeric(spec, rng)
    if table not in spec.categorical or not spec.categorical[table]:
        return None
    group = rng.choice(spec.categorical[table])
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    measure_mention = _surface(spec, rng, "column", measure, language, synonym_rate)
    group_mention = _surface(spec, rng, "column", group, language, synonym_rate)
    if language == "zh":
        question = f"每个{group_mention}的平均{measure_mention}是多少？"
    else:
        question = (
            f"What is the average {measure_mention} per {group_mention}?"
        )
    sql = f"SELECT {group}, AVG({measure}) FROM {table} GROUP BY {group}"
    return Text2SqlExample(
        question, sql, spec.name, language, template="avg_group"
    )


def _list_between(spec, rng, language, synonym_rate):
    table, measure = _pick_numeric(spec, rng)
    label = spec.label_column[table]
    position = _column_position(spec, table, measure)
    values = sorted(row[position] for row in spec.rows[table])
    low, high = values[0], values[-1]
    table_mention = _surface(spec, rng, "table", table, language, synonym_rate)
    measure_mention = _surface(spec, rng, "column", measure, language, synonym_rate)
    label_mention = _surface(spec, rng, "column", label, language, synonym_rate)
    if language == "zh":
        # Chinese range phrasing is out of the simulated model's scope;
        # fall back to another template for zh generations.
        return _list_filtered(spec, rng, language, synonym_rate)
    question = (
        f"List the {label_mention} of the {table_mention} with "
        f"{measure_mention} between {low:g} and {high:g}."
    )
    sql = (
        f"SELECT {label} FROM {table} "
        f"WHERE {measure} BETWEEN {low:g} AND {high:g}"
    )
    return Text2SqlExample(
        question, sql, spec.name, language, template="list_between"
    )


def _join_count(spec, rng, language, synonym_rate):
    """Cross-table count: filter the fact table by a dimension value."""
    if not spec.joins:
        return None
    fact, key, dim, dim_label = rng.choice(spec.joins)
    label_position = _column_position(spec, dim, dim_label)
    value = rng.choice(spec.rows[dim])[label_position]
    fact_mention = _surface(spec, rng, "table", fact, language, synonym_rate)
    if language == "zh":
        question = f"{value}有多少个{fact_mention}？"
    else:
        question = f"How many {fact_mention} does {value} have?"
    sql = (
        f"SELECT COUNT(*) FROM {fact} JOIN {dim} "
        f"ON {fact}.{key} = {dim}.{key} "
        f"WHERE {dim}.{dim_label} = '{value}'"
    )
    return Text2SqlExample(
        question, sql, spec.name, language, template="join_count"
    )


def _join_sum(spec, rng, language, synonym_rate):
    """Cross-table aggregate: total a fact measure for one dim value."""
    if not spec.joins:
        return None
    fact, key, dim, dim_label = rng.choice(spec.joins)
    numerics = spec.numeric.get(fact, [])
    if not numerics:
        return None
    measure = rng.choice(numerics)
    label_position = _column_position(spec, dim, dim_label)
    value = rng.choice(spec.rows[dim])[label_position]
    measure_mention = _surface(
        spec, rng, "column", measure, language, synonym_rate
    )
    if language == "zh":
        question = f"{value}的总{measure_mention}是多少？"
    else:
        question = f"What is the total {measure_mention} of {value}?"
    sql = (
        f"SELECT SUM({fact}.{measure}) FROM {fact} JOIN {dim} "
        f"ON {fact}.{key} = {dim}.{key} "
        f"WHERE {dim}.{dim_label} = '{value}'"
    )
    return Text2SqlExample(
        question, sql, spec.name, language, template="join_sum"
    )


_TEMPLATES = [
    _count_all,
    _avg_column,
    _sum_column,
    _minmax_column,
    _list_filtered,
    _count_filtered,
    _group_count,
    _top_n,
    _distinct_values,
    _count_distinct,
    _avg_group,
    _list_between,
    _join_count,
    _join_sum,
]
