"""Seeded sales workload for the Figure 3 demonstration.

The demo task is "Build sales reports and analyze user orders from at
least three distinct dimensions": product category, user, and month.
This generator produces a relational schema with exactly those
dimensions, with mild seasonality so the area chart has a visible trend.
"""

from __future__ import annotations

import datetime
import random
from typing import Any

from repro.sqlengine import Database

CATEGORIES = [
    "Electronics", "Clothing", "Food", "Home", "Sports",
]

REGIONS = ["North", "South", "East", "West"]

SEGMENTS = ["consumer", "corporate", "small business"]

_FIRST_NAMES = [
    "ada", "bob", "carol", "dan", "eve", "frank", "grace", "hugo",
    "iris", "jack", "kate", "liam", "mona", "nick", "olga", "pete",
    "quin", "rosa", "sam", "tina",
]

_PRODUCT_NOUNS = {
    "Electronics": ["phone", "laptop", "camera", "tablet", "monitor"],
    "Clothing": ["jacket", "shirt", "sneaker", "scarf", "jeans"],
    "Food": ["coffee", "tea", "chocolate", "pasta", "honey"],
    "Home": ["lamp", "chair", "desk", "rug", "shelf"],
    "Sports": ["racket", "ball", "helmet", "glove", "bike"],
}

#: Monthly demand multipliers (Nov/Dec holiday bump, summer dip).
_SEASONALITY = [0.9, 0.85, 1.0, 1.0, 1.05, 0.95, 0.9, 0.95, 1.05, 1.1, 1.3, 1.5]


def build_sales_database(
    seed: int = 7,
    n_users: int = 40,
    n_products: int = 25,
    n_orders: int = 600,
    year: int = 2023,
) -> Database:
    """Create and load the demo sales database.

    Tables: ``products(product_id, product_name, category, price)``,
    ``users(user_id, user_name, segment, region, age)``,
    ``orders(order_id, user_id, product_id, quantity, amount, order_date)``.
    """
    rng = random.Random(seed)
    db = Database("sales")

    db.execute(
        "CREATE TABLE products (product_id INTEGER PRIMARY KEY, "
        "product_name TEXT NOT NULL, category TEXT NOT NULL, price REAL)"
    )
    products: list[tuple[Any, ...]] = []
    for product_id in range(1, n_products + 1):
        category = CATEGORIES[(product_id - 1) % len(CATEGORIES)]
        noun = rng.choice(_PRODUCT_NOUNS[category])
        name = f"{noun}-{product_id}"
        price = round(rng.uniform(5.0, 500.0), 2)
        products.append((product_id, name, category, price))
    db.insert_rows("products", products)

    db.execute(
        "CREATE TABLE users (user_id INTEGER PRIMARY KEY, "
        "user_name TEXT NOT NULL, segment TEXT, region TEXT, age INTEGER)"
    )
    users: list[tuple[Any, ...]] = []
    for user_id in range(1, n_users + 1):
        base = _FIRST_NAMES[(user_id - 1) % len(_FIRST_NAMES)]
        name = base if user_id <= len(_FIRST_NAMES) else f"{base}{user_id}"
        users.append(
            (
                user_id,
                name,
                rng.choice(SEGMENTS),
                rng.choice(REGIONS),
                rng.randint(18, 70),
            )
        )
    db.insert_rows("users", users)

    db.execute(
        "CREATE TABLE orders (order_id INTEGER PRIMARY KEY, "
        "user_id INTEGER NOT NULL, product_id INTEGER NOT NULL, "
        "quantity INTEGER NOT NULL, amount REAL NOT NULL, order_date DATE)"
    )
    orders: list[tuple[Any, ...]] = []
    price_by_id = {p[0]: p[3] for p in products}
    for order_id in range(1, n_orders + 1):
        month = _pick_month(rng)
        day = rng.randint(1, 28)
        user_id = rng.randint(1, n_users)
        product_id = rng.randint(1, n_products)
        quantity = rng.randint(1, 5)
        amount = round(price_by_id[product_id] * quantity, 2)
        orders.append(
            (
                order_id,
                user_id,
                product_id,
                quantity,
                amount,
                datetime.date(year, month, day).isoformat(),
            )
        )
    db.insert_rows("orders", orders)
    return db


def _pick_month(rng: random.Random) -> int:
    total = sum(_SEASONALITY)
    roll = rng.uniform(0, total)
    cumulative = 0.0
    for month_index, weight in enumerate(_SEASONALITY, start=1):
        cumulative += weight
        if roll <= cumulative:
            return month_index
    return 12


def sales_summary(db: Database) -> dict[str, Any]:
    """Headline stats used by examples and benchmark output."""
    return {
        "orders": db.execute("SELECT COUNT(*) FROM orders").scalar(),
        "users": db.execute("SELECT COUNT(*) FROM users").scalar(),
        "products": db.execute("SELECT COUNT(*) FROM products").scalar(),
        "revenue": round(
            db.execute("SELECT SUM(amount) FROM orders").scalar() or 0.0, 2
        ),
        "categories": db.execute(
            "SELECT COUNT(DISTINCT category) FROM products"
        ).scalar(),
    }
