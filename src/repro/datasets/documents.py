"""Synthetic document corpus with gold relevance labels for RAG benches.

Each corpus mixes several *topics*; every document belongs to one topic
and contains topic vocabulary plus filler. Every query case targets one
topic and lists the gold relevant document ids, so retrieval
precision/recall/MRR can be scored exactly. Documents also mention
*entities* with cross-references so the graph index has real structure
to exploit (entity-hop questions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


_TOPICS: dict[str, dict[str, list[str]]] = {
    "databases": {
        "terms": [
            "index", "transaction", "query optimizer", "b-tree",
            "write-ahead log", "snapshot isolation", "join order",
            "buffer pool", "vacuum", "checkpoint",
        ],
        "entities": ["PostgreSQL", "MySQL", "DuckDB"],
    },
    "machine_learning": {
        "terms": [
            "gradient descent", "overfitting", "regularization",
            "embedding", "attention", "fine-tuning", "loss function",
            "backpropagation", "dropout", "batch normalization",
        ],
        "entities": ["PyTorch", "TensorFlow", "JAX"],
    },
    "networking": {
        "terms": [
            "packet", "congestion control", "routing table", "tcp handshake",
            "latency", "bandwidth", "load balancer", "dns resolution",
            "firewall", "subnet mask",
        ],
        "entities": ["BGP", "QUIC", "Envoy"],
    },
    "security": {
        "terms": [
            "encryption", "key rotation", "threat model", "zero trust",
            "audit log", "sandboxing", "vulnerability", "phishing",
            "access control", "token expiry",
        ],
        "entities": ["TLS", "OAuth", "Kerberos"],
    },
}

_FILLER = (
    "the system processes records every day and the team reviews the "
    "report each week while operations continue across all regions"
).split()


@dataclass
class QueryCase:
    """One benchmark query with its gold relevant documents."""

    query: str
    relevant_ids: set[str]
    topic: str
    kind: str = "topical"  # 'topical' | 'entity' | 'keyword'


@dataclass
class CorpusSpec:
    """A generated corpus plus its query cases."""

    documents: dict[str, str]  # doc_id -> text
    doc_topics: dict[str, str]
    queries: list[QueryCase] = field(default_factory=list)
    doc_entities: dict[str, list[str]] = field(default_factory=dict)


def build_corpus(
    seed: int = 11,
    docs_per_topic: int = 8,
    queries_per_topic: int = 4,
) -> CorpusSpec:
    """Generate a labelled corpus across all topics."""
    rng = random.Random(seed)
    documents: dict[str, str] = {}
    doc_topics: dict[str, str] = {}
    doc_entities: dict[str, list[str]] = {}
    term_docs: dict[tuple[str, str], list[str]] = {}

    for topic, spec in _TOPICS.items():
        for index in range(docs_per_topic):
            doc_id = f"{topic}-{index}"
            terms = rng.sample(spec["terms"], k=4)
            entities = rng.sample(spec["entities"], k=rng.randint(1, 2))
            sentences = []
            for term in terms:
                filler = " ".join(
                    rng.choice(_FILLER) for _ in range(rng.randint(4, 8))
                )
                entity = rng.choice(entities)
                sentences.append(
                    f"The {term} in {entity} matters because {filler}."
                )
                term_docs.setdefault((topic, term), []).append(doc_id)
            documents[doc_id] = " ".join(sentences)
            doc_topics[doc_id] = topic
            doc_entities[doc_id] = entities

    queries: list[QueryCase] = []
    for topic, spec in _TOPICS.items():
        candidate_terms = [
            term
            for (t, term) in term_docs
            if t == topic and len(term_docs[(t, term)]) >= 1
        ]
        rng.shuffle(candidate_terms)
        for term in candidate_terms[:queries_per_topic]:
            relevant = set(term_docs[(topic, term)])
            queries.append(
                QueryCase(
                    query=f"How does the {term} work?",
                    relevant_ids=relevant,
                    topic=topic,
                    kind="topical",
                )
            )
        # Entity-hop query: all docs mentioning a given entity.
        entity = rng.choice(spec["entities"])
        relevant = {
            doc_id
            for doc_id, entities in doc_entities.items()
            if entity in entities and doc_topics[doc_id] == topic
        }
        if relevant:
            queries.append(
                QueryCase(
                    query=f"What do we know about {entity}?",
                    relevant_ids=relevant,
                    topic=topic,
                    kind="entity",
                )
            )
    return CorpusSpec(documents, doc_topics, queries, doc_entities)


def topic_names() -> list[str]:
    return sorted(_TOPICS)
