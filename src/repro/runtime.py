"""Process-wide injectable time and randomness sources.

Every layer that needs "what time is it" or "give me randomness" goes
through this module instead of calling :mod:`time` / :mod:`random`
directly, for two reasons:

- **Determinism** — tests and benchmarks freeze or script the clocks
  (:func:`set_clocks`) and seed the rng, so timing-dependent behavior
  (TTL expiry, latency histograms, retry jitter) is reproducible
  without sleeping. The serving scheduler, cache store and resilience
  policies already take injectable clocks per instance; this module is
  the same discipline for the cross-cutting instrumentation that has
  no instance to hang a parameter on.
- **Enforceability** — ``repro check`` (the ``repro.staticcheck``
  DET rules) flags any direct ``time.time()`` / ``time.perf_counter()``
  / ``datetime.now()`` / unseeded ``random.Random()`` call in ``src/``;
  this module is the single allowlisted home for the real OS clocks.

Referencing ``time.monotonic`` *as a default parameter value* (the
per-instance injectable-clock pattern) remains fine everywhere — only
inline calls are funneled through here.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

Clock = Callable[[], float]

#: The process clocks. Swapped atomically (one tuple) by
#: :func:`set_clocks`; module state instead of instance state because
#: the callers are cross-cutting wrappers (spans, latency histograms)
#: with no construction site to inject through.
_clocks: tuple[Clock, Clock, Clock] = (
    time.perf_counter,
    time.monotonic,
    time.time,
)


def perf_clock() -> float:
    """High-resolution timestamp for latency measurement."""
    return _clocks[0]()


def mono_clock() -> float:
    """Monotonic timestamp for span start/end and TTL arithmetic."""
    return _clocks[1]()


def wall_clock() -> float:
    """Wall-clock epoch seconds — export timestamps only, never logic."""
    return _clocks[2]()


def set_clocks(
    perf: Optional[Clock] = None,
    mono: Optional[Clock] = None,
    wall: Optional[Clock] = None,
) -> tuple[Clock, Clock, Clock]:
    """Swap any of the process clocks (tests); returns the previous
    triple so callers can restore it in a ``finally``."""
    global _clocks
    previous = _clocks
    _clocks = (
        perf or previous[0],
        mono or previous[1],
        wall or previous[2],
    )
    return previous


def default_rng(seed: int = 0) -> random.Random:
    """A seeded generator for call sites that were not handed one.

    Unseeded ``random.Random()`` draws entropy from the OS, which makes
    retry jitter (and anything else downstream) irreproducible; a
    fixed default seed keeps standalone construction deterministic
    while every production wiring path still injects its own rng.
    """
    return random.Random(seed)
