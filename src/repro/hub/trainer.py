"""Lexicon-induction fine-tuning for the Text-to-SQL model.

Algorithm (per DESIGN.md): for every training pair, parse the gold SQL
to its schema elements, find the question phrases the base lexicon
cannot link, and count phrase/element co-occurrences. Alignments with
enough support and purity become learned synonyms. The loop is run for
several epochs with the acceptance threshold annealed, and training
accuracy is reported per epoch — the analogue of a loss curve.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.datasets.spider import Text2SqlExample
from repro.hub.adapters import LexiconAdapter
from repro.hub.evaluator import execution_match
from repro.nlu.lexicon import Lexicon, LexiconEntry
from repro.nlu.multilingual import detect_language, translate_zh_phrases
from repro.nlu.schema_linking import SchemaIndex, SchemaLinker
from repro.nlu.text2sql import Text2SqlError, Text2SqlParser
from repro.rag.embedder import tokenize_words
from repro.sqlengine import Database, nodes, parse_sql

#: Words never learned as synonyms (intent and function words).
_BLOCKED = frozenset(
    "how many what is the of a an are there per top all list whose have "
    "has was by for each and or in on at to from with total average "
    "maximum minimum highest lowest distinct".split()
)


@dataclass
class EpochStats:
    epoch: int
    new_synonyms: int
    train_accuracy: float


@dataclass
class TrainingReport:
    domain: str
    epochs: list[EpochStats] = field(default_factory=list)
    learned: list[LexiconEntry] = field(default_factory=list)

    @property
    def final_train_accuracy(self) -> float:
        return self.epochs[-1].train_accuracy if self.epochs else 0.0


class FineTuner:
    """Fit a :class:`LexiconAdapter` on (question, SQL) pairs."""

    def __init__(
        self,
        index: SchemaIndex,
        database: Database,
        min_support: int = 2,
        min_purity: float = 0.6,
        epochs: int = 3,
    ) -> None:
        if not 0.0 < min_purity <= 1.0:
            raise ValueError("min_purity must be in (0, 1]")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.index = index
        self.database = database
        self.min_support = min_support
        self.min_purity = min_purity
        self.epochs = epochs

    def fit(
        self,
        examples: list[Text2SqlExample],
        domain: str = "custom",
    ) -> tuple[LexiconAdapter, TrainingReport]:
        """Learn synonyms; returns the adapter and a training report."""
        report = TrainingReport(domain=domain)
        learned = Lexicon()
        for epoch in range(1, self.epochs + 1):
            # Lower the support requirement as epochs proceed — late
            # epochs mop up rarer phrases (annealed acceptance).
            support = max(1, self.min_support - (epoch - 1))
            additions = self._induce(examples, learned, support)
            for entry in additions:
                learned.add(entry)
                report.learned.append(entry)
            accuracy = self._train_accuracy(examples, learned)
            report.epochs.append(
                EpochStats(epoch, len(additions), accuracy)
            )
            if not additions and epoch > 1:
                break
        adapter = LexiconAdapter(name=f"{domain}-adapter", lexicon=learned)
        return adapter, report

    # -- alignment ----------------------------------------------------------

    def _induce(
        self,
        examples: list[Text2SqlExample],
        learned: Lexicon,
        support: int,
    ) -> list[LexiconEntry]:
        base = self.index.base_lexicon()
        base.merge(learned)
        linker = SchemaLinker(self.index, base)
        counts: dict[str, Counter] = defaultdict(Counter)
        phrase_occurrences: Counter = Counter()
        target_occurrences: Counter = Counter()
        for example in examples:
            text = example.question.lower()
            if detect_language(text) == "zh":
                text = translate_zh_phrases(text)
            targets = self._sql_targets(example.sql)
            if not targets:
                continue
            for target in targets:
                target_occurrences[target] += 1
            unlinked = self._unlinked_phrases(text, linker, example.sql)
            for phrase in set(unlinked):
                phrase_occurrences[phrase] += 1
                for target in targets:
                    counts[phrase][target] += 1
        additions: list[LexiconEntry] = []
        for phrase, target_counts in counts.items():
            # Dice-style association: count^2 / (occ(phrase) * occ(target))
            # favours the target that co-occurs most *exclusively* with
            # the phrase, not just the globally frequent one.
            scored = sorted(
                target_counts.items(),
                key=lambda pair: -(
                    pair[1] ** 2
                    / (
                        phrase_occurrences[phrase]
                        * target_occurrences[pair[0]]
                    )
                ),
            )
            (kind, target, table), count = scored[0]
            purity = count / phrase_occurrences[phrase]
            if count >= support and purity >= self.min_purity:
                if phrase in learned or phrase in base:
                    continue
                additions.append(
                    LexiconEntry(
                        phrase=phrase,
                        kind=kind,
                        target=target,
                        table=table,
                        weight=purity,
                    )
                )
        return additions

    def _sql_targets(
        self, sql: str
    ) -> list[tuple[str, str, Optional[str]]]:
        """(kind, target, table) triples used by the gold SQL."""
        try:
            statement = parse_sql(sql)
        except Exception:
            return []
        if not isinstance(statement, nodes.Select):
            return []
        targets: list[tuple[str, str, Optional[str]]] = []
        tables: list[str] = []
        if statement.source is not None:
            for table in _named_tables(statement.source):
                tables.append(table)
                targets.append(("table", table, None))
        for item in statement.items:
            for expr in nodes.walk_expressions(item.expression):
                if isinstance(expr, nodes.ColumnRef):
                    owner = self._column_owner(expr.name, tables)
                    targets.append(("column", expr.name, owner))
        for clause in (statement.where, *statement.group_by):
            if clause is None:
                continue
            for expr in nodes.walk_expressions(clause):
                if isinstance(expr, nodes.ColumnRef):
                    owner = self._column_owner(expr.name, tables)
                    targets.append(("column", expr.name, owner))
        for order in statement.order_by:
            for expr in nodes.walk_expressions(order.expression):
                if isinstance(expr, nodes.ColumnRef):
                    owner = self._column_owner(expr.name, tables)
                    targets.append(("column", expr.name, owner))
        deduped = []
        for target in targets:
            if target not in deduped:
                deduped.append(target)
        return deduped

    def _column_owner(
        self, column: str, tables: list[str]
    ) -> Optional[str]:
        for table in tables:
            if column in self.index.tables.get(table, []):
                return table
        return None

    def _unlinked_phrases(
        self, text: str, linker: SchemaLinker, sql: str
    ) -> list[str]:
        """Question unigrams/bigrams the current lexicon cannot link."""
        link = linker.link(text)
        covered: set[str] = set()
        for mention in link.mentions:
            covered.update(tokenize_words(mention.phrase))
        for value in link.values:
            covered.update(tokenize_words(value.value))
        sql_literals = set(tokenize_words(sql))
        words = [
            word
            for word in tokenize_words(text)
            if word not in _BLOCKED
            and word not in covered
            and not word.isdigit()
        ]
        phrases = list(words)
        for left, right in zip(words, words[1:]):
            phrases.append(f"{left} {right}")
        # Drop phrases that literally appear in the SQL (values, noise).
        return [
            phrase
            for phrase in phrases
            if not set(tokenize_words(phrase)) <= sql_literals
        ]

    # -- evaluation ---------------------------------------------------------

    def _train_accuracy(
        self, examples: list[Text2SqlExample], learned: Lexicon
    ) -> float:
        lexicon = self.index.base_lexicon()
        lexicon.merge(learned)
        parser = Text2SqlParser(self.index, lexicon)
        correct = 0
        for example in examples:
            try:
                predicted = parser.parse(example.question).sql
            except Text2SqlError:
                continue
            if execution_match(self.database, predicted, example.sql):
                correct += 1
        return correct / len(examples) if examples else 0.0


def _named_tables(source: nodes.TableRef) -> list[str]:
    if isinstance(source, nodes.NamedTable):
        return [source.name]
    if isinstance(source, nodes.Join):
        return _named_tables(source.left) + _named_tables(source.right)
    if isinstance(source, nodes.SubqueryTable):
        inner = source.subquery.source
        return _named_tables(inner) if inner is not None else []
    return []
