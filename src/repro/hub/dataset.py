"""Training/evaluation datasets of (question, SQL) pairs."""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.datasets.spider import Text2SqlExample, generate_examples


@dataclass
class Text2SqlDataset:
    """A train/test split over one domain's examples."""

    domain: str
    train: list[Text2SqlExample]
    test: list[Text2SqlExample]

    @classmethod
    def from_domain(
        cls,
        domain: str,
        n_train: int = 60,
        n_test: int = 40,
        seed: int = 0,
        language: str = "en",
        synonym_rate: float = 0.7,
    ) -> "Text2SqlDataset":
        """Generate a split with disjoint random streams."""
        train = generate_examples(
            domain, n=n_train, seed=seed, language=language,
            synonym_rate=synonym_rate,
        )
        test = generate_examples(
            domain, n=n_test, seed=seed + 10_000, language=language,
            synonym_rate=synonym_rate,
        )
        return cls(domain=domain, train=train, test=test)

    @classmethod
    def from_pairs(
        cls,
        domain: str,
        pairs: list[tuple[str, str]],
        test_fraction: float = 0.3,
        seed: int = 0,
    ) -> "Text2SqlDataset":
        """Build a dataset from user-supplied (question, sql) pairs."""
        if not pairs:
            raise ValueError("need at least one (question, sql) pair")
        examples = [
            Text2SqlExample(question=q, sql=s, domain=domain)
            for q, s in pairs
        ]
        rng = random.Random(seed)
        shuffled = list(examples)
        rng.shuffle(shuffled)
        cut = max(1, int(len(shuffled) * (1 - test_fraction)))
        return cls(domain=domain, train=shuffled[:cut], test=shuffled[cut:])

    def save(self, path: pathlib.Path | str) -> None:
        payload = {
            "domain": self.domain,
            "train": [vars(e) for e in self.train],
            "test": [vars(e) for e in self.test],
        }
        pathlib.Path(path).write_text(
            json.dumps(payload, ensure_ascii=False)
        )

    @classmethod
    def load(cls, path: pathlib.Path | str) -> "Text2SqlDataset":
        payload = json.loads(pathlib.Path(path).read_text())
        return cls(
            domain=payload["domain"],
            train=[Text2SqlExample(**e) for e in payload["train"]],
            test=[Text2SqlExample(**e) for e in payload["test"]],
        )
