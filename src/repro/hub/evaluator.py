"""Text-to-SQL evaluation: exact match and execution accuracy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.spider import Text2SqlExample
from repro.llm.prompts import build_text2sql_prompt
from repro.llm.base import GenerationRequest, LLMError
from repro.llm.sql_coder import SqlCoderModel
from repro.datasources.base import DataSource
from repro.sqlengine import Database, SqlEngineError, parse_sql


def canonical_sql(sql: str) -> str:
    """Canonical form via parse -> to_sql (whitespace/paren neutral)."""
    return parse_sql(sql).to_sql().upper()


def exact_match(predicted: str, gold: str) -> bool:
    try:
        return canonical_sql(predicted) == canonical_sql(gold)
    except SqlEngineError:
        return False


def execution_match(db: Database, predicted: str, gold: str) -> bool:
    """Same multiset of result rows (order-insensitive)."""
    try:
        got = db.execute(predicted)
        expected = db.execute(gold)
    except SqlEngineError:
        return False
    return sorted(map(repr, got.rows)) == sorted(map(repr, expected.rows))


@dataclass
class EvalReport:
    model: str
    total: int
    exact: int = 0
    executed: int = 0
    errors: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def exact_accuracy(self) -> float:
        return self.exact / self.total if self.total else 0.0

    @property
    def execution_accuracy(self) -> float:
        return self.executed / self.total if self.total else 0.0

    def describe(self) -> str:
        return (
            f"{self.model}: EM={self.exact_accuracy:.2%} "
            f"EX={self.execution_accuracy:.2%} "
            f"({self.errors} generation errors, n={self.total})"
        )


def evaluate_model(
    model: SqlCoderModel,
    source: DataSource,
    database: Database,
    examples: list[Text2SqlExample],
    keep_failures: int = 5,
) -> EvalReport:
    """Score a model on (question, SQL) examples.

    Reports both exact-match (canonical SQL string) and execution
    accuracy (result-set equivalence), the two standard Spider metrics.
    """
    report = EvalReport(model=model.name, total=len(examples))
    for example in examples:
        prompt = build_text2sql_prompt(source, example.question)
        try:
            predicted = model.generate(GenerationRequest(prompt)).text
        except LLMError as exc:
            report.errors += 1
            if len(report.failures) < keep_failures:
                report.failures.append(
                    (example.question, example.sql, f"ERROR: {exc}")
                )
            continue
        if exact_match(predicted, example.sql):
            report.exact += 1
        if execution_match(database, predicted, example.sql):
            report.executed += 1
        elif len(report.failures) < keep_failures:
            report.failures.append(
                (example.question, example.sql, predicted)
            )
    return report
