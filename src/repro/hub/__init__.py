"""DB-GPT-Hub: Text-to-SQL fine-tuning.

The paper's hub fine-tunes Huggingface LLMs on (question, SQL) pairs.
Our simulated Text-to-SQL model's learnable parameter is its *lexicon*
(DESIGN.md), so fine-tuning here is lexicon induction: align question
phrases with the schema elements of the gold SQL, keep alignments with
enough support and purity, and attach them to the model as an adapter —
the same improvement mechanism (domain vocabulary acquisition), fully
measurable with exact-match and execution accuracy.
"""

from repro.hub.adapters import AdapterRegistry, LexiconAdapter
from repro.hub.dataset import Text2SqlDataset
from repro.hub.evaluator import EvalReport, evaluate_model
from repro.hub.trainer import FineTuner, TrainingReport

__all__ = [
    "AdapterRegistry",
    "EvalReport",
    "FineTuner",
    "LexiconAdapter",
    "Text2SqlDataset",
    "TrainingReport",
    "evaluate_model",
]
