"""Adapters: attachable lexicon deltas (the LoRA analogue).

A :class:`LexiconAdapter` is a named set of learned synonyms that can
be attached to a base :class:`SqlCoderModel` without copying it —
multiple domain adapters can be managed and swapped, mirroring how
DB-GPT-Hub users keep per-domain fine-tunes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.sql_coder import SqlCoderModel
from repro.nlu.lexicon import Lexicon, LexiconEntry


@dataclass
class LexiconAdapter:
    """A named learned-synonym delta."""

    name: str
    lexicon: Lexicon = field(default_factory=Lexicon)

    def __len__(self) -> int:
        return len(self.lexicon)

    # -- serialization (share/reload fine-tunes like weight files) -----

    def save(self, path) -> None:
        import json
        import pathlib

        entries = []
        for phrase in self.lexicon.phrases():
            for entry in self.lexicon.lookup(phrase):
                entries.append(
                    {
                        "phrase": entry.phrase,
                        "kind": entry.kind,
                        "target": entry.target,
                        "table": entry.table,
                        "weight": entry.weight,
                    }
                )
        pathlib.Path(path).write_text(
            json.dumps({"name": self.name, "entries": entries},
                       ensure_ascii=False)
        )

    @classmethod
    def load(cls, path) -> "LexiconAdapter":
        import json
        import pathlib

        payload = json.loads(pathlib.Path(path).read_text())
        lexicon = Lexicon.from_entries(
            LexiconEntry(
                phrase=item["phrase"],
                kind=item["kind"],
                target=item["target"],
                table=item.get("table"),
                weight=item.get("weight", 1.0),
            )
            for item in payload["entries"]
        )
        return cls(name=payload["name"], lexicon=lexicon)

    def apply_to(
        self, base: SqlCoderModel, model_name: str | None = None
    ) -> SqlCoderModel:
        """Build a tuned model = base lexicon + this adapter."""
        merged = base.lexicon.copy()
        merged.merge(self.lexicon)
        return SqlCoderModel(
            name=model_name or f"{base.name}+{self.name}",
            lexicon=merged,
        )


class AdapterRegistry:
    """Named adapter store (per-domain fine-tunes)."""

    def __init__(self) -> None:
        self._adapters: dict[str, LexiconAdapter] = {}

    def register(self, adapter: LexiconAdapter) -> None:
        key = adapter.name.lower()
        if key in self._adapters:
            raise ValueError(f"adapter {adapter.name!r} already registered")
        self._adapters[key] = adapter

    def get(self, name: str) -> LexiconAdapter:
        adapter = self._adapters.get(name.lower())
        if adapter is None:
            raise KeyError(
                f"no adapter named {name!r}; known: {self.names()}"
            )
        return adapter

    def names(self) -> list[str]:
        return sorted(a.name for a in self._adapters.values())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._adapters
