"""Documentation link checker behind ``make docs-check``.

Scans Markdown files for relative links — ``[text](target)`` and
reference-style ``[label]: target`` definitions — and verifies each
target resolves to a real file or directory relative to the file the
link appears in. External (``http(s)://``, ``mailto:``) and
in-page (``#anchor``) links are skipped; a ``path#anchor`` target is
checked for the path part only.

Run::

    python -m repro.doccheck README.md docs

Exit status is the number of broken links (0 == everything resolves).
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Optional

#: Inline links. The target group stops at the first ')' or whitespace,
#: which is enough for the plain relative links this repo uses.
_INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Reference-style definitions at line start: ``[label]: target``.
_REF_LINK = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Fenced code blocks are stripped first — link-shaped text inside
#: examples is not a navigable link.
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(markdown: str) -> list[str]:
    """Every link target in ``markdown``, code fences excluded."""
    stripped = _CODE_FENCE.sub("", markdown)
    targets = _INLINE_LINK.findall(stripped)
    targets += _REF_LINK.findall(stripped)
    return targets


def check_file(path: pathlib.Path) -> list[str]:
    """Broken relative link targets in one Markdown file."""
    broken: list[str] = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if not (path.parent / resolved).exists():
            broken.append(target)
    return broken


def collect_markdown(paths: list[str]) -> list[pathlib.Path]:
    """Expand files/directories into the Markdown files to check."""
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        print("usage: python -m repro.doccheck <file-or-dir> [...]")
        return 2
    files = collect_markdown(argv)
    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"doccheck: no such file: {path}")
        return len(missing)
    failures = 0
    checked_links = 0
    for path in files:
        targets = [
            t
            for t in iter_links(path.read_text(encoding="utf-8"))
            if not t.startswith(_SKIP_PREFIXES) and not t.startswith("#")
        ]
        checked_links += len(targets)
        for target in check_file(path):
            print(f"{path}: broken link -> {target}")
            failures += 1
    print(
        f"doccheck: {len(files)} files, {checked_links} relative links, "
        f"{failures} broken"
    )
    return failures


if __name__ == "__main__":
    sys.exit(main())
