"""Tenant registry + consistent-hash shard router.

The registry is the control plane's source of truth: which tenants
exist, what resources each one owns (datasource, knowledge base,
fine-tuned model preference, quota override), and which shard of the
data plane serves it.

Placement uses a classic consistent-hash ring: every physical shard
contributes ``virtual_nodes`` points, a tenant routes to the first
point clockwise of its own hash, and adding or removing one shard
moves only the key ranges adjacent to that shard's points (~1/n of
the keyspace) instead of reshuffling every tenant. Hashes come from
:mod:`hashlib` (BLAKE2b), never Python's ``hash()`` — the builtin is
salted per process, which would re-place every tenant on restart.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.tenancy.config import QuotaConfig


class TenancyError(Exception):
    """Base class for tenancy control-plane failures."""


class UnknownTenant(TenancyError):
    """The tenant id is not registered."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant {tenant_id!r}")
        self.tenant_id = tenant_id


@dataclass
class Tenant:
    """One registered tenant and its resource bindings.

    ``source``/``knowledge`` are optional overrides: a tenant without
    its own falls back to the instance-shared resources.
    ``model_preference`` records which (typically fine-tuned) model the
    tenant's SQL generation should prefer; the fabric surfaces it to
    per-tenant app construction. ``quota`` overrides the fleet default
    admission limits for this tenant only.
    """

    tenant_id: str
    name: str = ""
    source: Any = None
    knowledge: Any = None
    model_preference: Optional[str] = None
    quota: Optional[QuotaConfig] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tenant_id or "/" in self.tenant_id:
            raise ValueError(
                f"tenant id must be a non-empty string without '/', "
                f"got {self.tenant_id!r}"
            )
        if not self.name:
            self.name = self.tenant_id


def _point(label: str) -> int:
    """A stable 64-bit ring position for ``label``."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent-hash ring mapping keys onto named shards.

    Thread-safe; topology changes (:meth:`add_shard` /
    :meth:`remove_shard`) rebuild the sorted point list atomically
    under the ring lock, so concurrent :meth:`route` calls always see
    a complete ring.
    """

    def __init__(self, shards: int = 4, virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self._virtual_nodes = virtual_nodes
        self._lock = threading.Lock()
        self._shards: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for index in range(shards):
            self.add_shard(f"shard-{index}")

    def add_shard(self, name: str) -> None:
        with self._lock:
            if name in self._shards:
                raise ValueError(f"shard {name!r} already on the ring")
            self._shards.add(name)
            for replica in range(self._virtual_nodes):
                self._points.append((_point(f"{name}#{replica}"), name))
            self._points.sort()

    def remove_shard(self, name: str) -> None:
        with self._lock:
            if name not in self._shards:
                raise ValueError(f"shard {name!r} not on the ring")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard")
            self._shards.discard(name)
            self._points = [
                point for point in self._points if point[1] != name
            ]

    def route(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise)."""
        with self._lock:
            if not self._points:
                raise TenancyError("hash ring has no shards")
            position = _point(key)
            index = bisect_right(self._points, (position, "￿"))
            if index == len(self._points):
                index = 0
            return self._points[index][1]

    def shards(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)


class TenantRegistry:
    """Thread-safe tenant directory with consistent-hash placement."""

    def __init__(self, ring: Optional[HashRing] = None) -> None:
        self.ring = ring or HashRing()
        self._lock = threading.Lock()
        self._tenants: dict[str, Tenant] = {}

    def register(self, tenant: Tenant) -> Tenant:
        with self._lock:
            if tenant.tenant_id in self._tenants:
                raise ValueError(
                    f"tenant {tenant.tenant_id!r} already registered"
                )
            self._tenants[tenant.tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenant(tenant_id)
        return tenant

    def maybe_get(self, tenant_id: str) -> Optional[Tenant]:
        with self._lock:
            return self._tenants.get(tenant_id)

    def remove(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            raise UnknownTenant(tenant_id)
        return tenant

    def tenant_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def shard_for(self, tenant_id: str) -> str:
        """Which data-plane shard serves ``tenant_id``. Placement is
        pure routing — unregistered ids still map deterministically."""
        return self.ring.route(tenant_id)

    def quota_for(self, tenant_id: str) -> Optional[QuotaConfig]:
        """The tenant's quota override, or None for the fleet default
        (unknown tenants also get the default — admission rejects them
        before quota state matters)."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        return tenant.quota if tenant is not None else None

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)
