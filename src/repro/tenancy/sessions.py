"""The server-side session store.

Sessions are created and resumed by ``session_id`` through the API;
their conversation history lives here, in
:class:`~repro.core.session.SessionRecord` objects, not in client
memory. The store bounds each tenant to ``max_sessions_per_tenant``
records (least-recently-active eviction beyond that) and expires idle
sessions after ``session_ttl_seconds`` against the injectable clock.

Two invariants the tests pin:

- a session with an **in-flight turn is never evicted or expired** —
  the turn pins the record (the per-tenant bound may be transiently
  exceeded while every candidate is pinned);
- concurrent turns into the same session **serialize** on the record's
  lock, so history order matches execution order.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional

from repro.core.session import SessionRecord, new_session_id
from repro.obs.metrics import get_registry
from repro.tenancy.config import TenancyConfig
from repro.tenancy.registry import TenancyError


class UnknownSession(TenancyError):
    """The session id is not in the store (never created, evicted,
    or expired)."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"unknown session {session_id!r}")
        self.session_id = session_id


class SessionStore:
    """Bounded, TTL-expiring home for every tenant's sessions."""

    def __init__(
        self,
        config: Optional[TenancyConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or TenancyConfig(enabled=True)
        self._clock = clock
        self._rng = rng
        self._lock = threading.Lock()
        self._records: dict[str, SessionRecord] = {}
        #: Per-tenant recency order: oldest-active first.
        self._order: dict[str, OrderedDict[str, None]] = {}
        self._evictions: dict[str, int] = {}
        self._expirations: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------

    def create(
        self,
        tenant_id: str,
        app_name: str,
        session_id: Optional[str] = None,
    ) -> SessionRecord:
        """Create (or return the existing) session for ``session_id``.

        Passing an id that already exists for the same tenant resumes
        that session; a fresh id is drawn from the injectable rng when
        none is given. Creating beyond the per-tenant bound evicts the
        least-recently-active unpinned session.
        """
        now = self._clock()
        with self._lock:
            self._expire_tenant_locked(tenant_id, now)
            if session_id is not None:
                existing = self._records.get(session_id)
                if existing is not None:
                    if existing.tenant_id != tenant_id:
                        raise ValueError(
                            f"session {session_id!r} belongs to tenant "
                            f"{existing.tenant_id!r}"
                        )
                    self._touch_locked(existing, now)
                    return existing
            record = SessionRecord(
                session_id or new_session_id(self._rng),
                app_name=app_name,
                tenant_id=tenant_id,
                created_at=now,
            )
            self._records[record.session_id] = record
            order = self._order.setdefault(tenant_id, OrderedDict())
            order[record.session_id] = None
            self._evict_tenant_locked(tenant_id)
            size = len(order)
        registry = get_registry()
        registry.gauge(
            "tenant_sessions", "stored sessions per tenant"
        ).set(size, tenant=tenant_id)
        return record

    def get(self, session_id: str) -> SessionRecord:
        """The session, freshness-checked; raises
        :class:`UnknownSession` when missing or expired."""
        now = self._clock()
        with self._lock:
            record = self._records.get(session_id)
            if record is not None and self._expired_locked(record, now):
                self._drop_locked(record, "ttl")
                record = None
            if record is None:
                raise UnknownSession(session_id)
            self._touch_locked(record, now)
            return record

    def drop(self, session_id: str) -> SessionRecord:
        """Explicitly remove a session; refuses while a turn is in
        flight (the caller should retry after the turn completes)."""
        with self._lock:
            record = self._records.get(session_id)
            if record is None:
                raise UnknownSession(session_id)
            if record.inflight > 0:
                raise TenancyError(
                    f"session {session_id!r} has an in-flight turn"
                )
            self._drop_locked(record, "explicit")
            return record

    @contextlib.contextmanager
    def turn(self, record: SessionRecord) -> Iterator[None]:
        """Pin ``record`` for the duration of one turn.

        While pinned the record can neither be LRU-evicted nor
        TTL-expired, so a session is never dropped out from under its
        own in-flight request.
        """
        with self._lock:
            record.inflight += 1
        try:
            yield
        finally:
            now = self._clock()
            with self._lock:
                record.inflight -= 1
                self._touch_locked(record, now)

    # -- internals (store lock held) ----------------------------------------

    def _touch_locked(self, record: SessionRecord, now: float) -> None:
        record.last_active = now
        order = self._order.get(record.tenant_id)
        if order is not None and record.session_id in order:
            order.move_to_end(record.session_id)

    def _expired_locked(self, record: SessionRecord, now: float) -> bool:
        ttl = self.config.session_ttl_seconds
        return (
            ttl is not None
            and record.inflight == 0
            and now - record.last_active >= ttl
        )

    def _expire_tenant_locked(self, tenant_id: str, now: float) -> None:
        order = self._order.get(tenant_id)
        if not order or self.config.session_ttl_seconds is None:
            return
        for session_id in list(order):
            record = self._records[session_id]
            if self._expired_locked(record, now):
                self._drop_locked(record, "ttl")

    def _evict_tenant_locked(self, tenant_id: str) -> None:
        order = self._order.get(tenant_id)
        if order is None:
            return
        limit = self.config.max_sessions_per_tenant
        if len(order) <= limit:
            return
        # Oldest-active first; skip pinned records, and never the
        # newest entry (the session whose creation triggered this). If
        # every candidate is pinned the bound is transiently exceeded
        # rather than dropping a session mid-turn.
        for session_id in list(order)[:-1]:
            if len(order) <= limit:
                break
            record = self._records[session_id]
            if record.inflight == 0:
                self._drop_locked(record, "lru")

    def _drop_locked(self, record: SessionRecord, reason: str) -> None:
        self._records.pop(record.session_id, None)
        order = self._order.get(record.tenant_id)
        if order is not None:
            order.pop(record.session_id, None)
        if reason == "ttl":
            self._expirations[record.tenant_id] = (
                self._expirations.get(record.tenant_id, 0) + 1
            )
        if reason != "explicit":
            get_registry().counter(
                "tenant_session_evictions_total",
                "sessions dropped by LRU bound or TTL expiry",
            ).inc(tenant=record.tenant_id, reason=reason)
        if reason == "lru":
            self._evictions[record.tenant_id] = (
                self._evictions.get(record.tenant_id, 0) + 1
            )

    # -- introspection ------------------------------------------------------

    def sessions_for(self, tenant_id: str) -> list[SessionRecord]:
        """The tenant's live sessions, least-recently-active first."""
        with self._lock:
            order = self._order.get(tenant_id, OrderedDict())
            return [self._records[sid] for sid in order]

    def stats(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            tenants = (
                set(self._order) | set(self._evictions)
                | set(self._expirations)
            )
            return {
                tenant_id: {
                    "sessions": len(self._order.get(tenant_id, ())),
                    "evictions": self._evictions.get(tenant_id, 0),
                    "expirations": self._expirations.get(tenant_id, 0),
                }
                for tenant_id in sorted(tenants)
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._records
