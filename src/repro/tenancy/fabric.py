"""The tenant fabric: the data plane behind a multi-tenant DB-GPT.

:class:`TenantFabric` is what turns the singleton facade into a
tenant-aware system. It owns the four pillars:

- the **tenant registry + consistent-hash router** mapping each
  ``tenant_id`` to its shard and resource bindings (datasource,
  knowledge base, fine-tuned model preference, quota override);
- the **server-side session store** — sessions are created/resumed by
  id, history is persisted server-side, bounded per tenant;
- **admission quotas** — per-tenant token buckets and in-flight caps
  enforced in front of the serving scheduler (plus a non-charging
  admission hook installed *on* the scheduler, so tenant-tagged work
  from direct SMMF clients is subject to the same limits);
- **partitioned caching and observability** — the fabric switches the
  process cache manager into tenant-partition mode and runs every
  turn inside a :func:`~repro.tenancy.context.tenant_scope`, which is
  what stamps the ``tenant`` attribute on root spans and routes cache
  traffic to the tenant's private partition.

The fabric exists only when ``TenancyConfig.enabled`` is True;
without it the facade behaves exactly as before the subsystem.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Optional

from repro.cache.manager import get_cache_manager
from repro.core.session import ChatTurn, SessionRecord
from repro.obs.metrics import get_registry
from repro.runtime import perf_clock
from repro.tenancy.config import QuotaConfig, TenancyConfig
from repro.tenancy.context import tenant_scope
from repro.tenancy.quotas import QuotaManager
from repro.tenancy.registry import (
    HashRing,
    TenancyError,
    Tenant,
    TenantRegistry,
)
from repro.tenancy.sessions import SessionStore


class TenantForbidden(TenancyError):
    """The caller's tenant does not own the addressed resource."""

    def __init__(self, tenant_id: str, session_id: str) -> None:
        super().__init__(
            f"session {session_id!r} does not belong to tenant "
            f"{tenant_id!r}"
        )
        self.tenant_id = tenant_id
        self.session_id = session_id


class TenantFabric:
    """Registry, router, session store and quotas over one facade.

    ``dbgpt`` is the booted facade the fabric extends; tenants without
    their own datasource share its applications, tenants registered
    with one get a private application set built against it.
    """

    def __init__(
        self,
        dbgpt: Any,
        config: Optional[TenancyConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._dbgpt = dbgpt
        self.config = config or TenancyConfig(enabled=True)
        self.registry = TenantRegistry(
            HashRing(self.config.shards, self.config.virtual_nodes)
        )
        self.store = SessionStore(self.config, clock=clock, rng=rng)
        self.quotas = QuotaManager(
            self.config.quota,
            quota_lookup=self.registry.quota_for,
            clock=clock,
        )
        self._tenant_apps: dict[str, dict[str, Any]] = {}
        if self.config.cache_partition_capacity > 0:
            get_cache_manager().enable_tenant_partitions(
                self.config.cache_partition_capacity
            )
        scheduler = getattr(dbgpt.controller, "scheduler", None)
        if scheduler is not None:
            scheduler.set_admission_hook(self._scheduler_admission_hook)

    # -- control plane -------------------------------------------------------

    def register_tenant(
        self,
        tenant_id: str,
        name: str = "",
        source: Any = None,
        documents: Any = None,
        model_preference: Optional[str] = None,
        quota: Optional[QuotaConfig] = None,
        **metadata: Any,
    ) -> Tenant:
        """Register a tenant and build its private resources.

        With a ``source``, the tenant gets its own application set over
        that datasource (honoring ``model_preference`` for SQL
        generation — the name must be a deployed model); with
        ``documents``, a private knowledge base and knowledge-QA app.
        Without either, the tenant shares the facade's applications —
        isolation then comes from sessions, quotas and cache
        partitions.
        """
        knowledge = None
        if documents is not None:
            from repro.rag.knowledge_base import KnowledgeBase

            knowledge = KnowledgeBase(name=f"kb-{tenant_id}")
            knowledge.add_documents(list(documents))
        tenant = self.registry.register(
            Tenant(
                tenant_id=tenant_id,
                name=name,
                source=source,
                knowledge=knowledge,
                model_preference=model_preference,
                quota=quota,
                metadata=dict(metadata),
            )
        )
        apps = self._build_tenant_apps(tenant)
        if apps:
            self._tenant_apps[tenant_id] = apps
        return tenant

    def _build_tenant_apps(self, tenant: Tenant) -> dict[str, Any]:
        """Private applications for a tenant with its own resources."""
        apps: dict[str, Any] = {}
        client = self._dbgpt.client
        if tenant.source is not None:
            from repro.core.dbgpt import build_source_apps

            apps.update(
                build_source_apps(
                    client,
                    tenant.source,
                    sql_model=tenant.model_preference or "sql-coder",
                )
            )
        if tenant.knowledge is not None:
            from repro.apps.knowledge_qa import KnowledgeQAApp

            apps["knowledge_qa"] = KnowledgeQAApp(
                client, tenant.knowledge
            )
        return apps

    def app_for(self, tenant_id: str, app_name: str) -> Any:
        """The tenant's private app when it has one, else the shared
        application of the same name."""
        key = app_name.lower()
        private = self._tenant_apps.get(tenant_id, {})
        if key in private:
            return private[key]
        return self._dbgpt.app(key)

    def app_names(self, tenant_id: str) -> list[str]:
        names = set(self._dbgpt.app_names())
        names.update(self._tenant_apps.get(tenant_id, {}))
        return sorted(names)

    # -- sessions ------------------------------------------------------------

    def open_session(
        self,
        tenant_id: str,
        app_name: str,
        session_id: Optional[str] = None,
    ) -> SessionRecord:
        """Create or resume a session after validating tenant + app."""
        self.registry.get(tenant_id)
        self.app_for(tenant_id, app_name)  # raises KeyError if unknown
        return self.store.create(
            tenant_id, app_name.lower(), session_id=session_id
        )

    def session(self, tenant_id: str, session_id: str) -> SessionRecord:
        """Look up a session, enforcing tenant ownership."""
        record = self.store.get(session_id)
        if record.tenant_id != tenant_id:
            raise TenantForbidden(tenant_id, session_id)
        return record

    # -- data plane ----------------------------------------------------------

    def chat(
        self,
        tenant_id: str,
        text: str,
        session_id: Optional[str] = None,
        app_name: Optional[str] = None,
    ):
        """One tenant turn: admit, pin, run, persist.

        Raises :class:`~repro.tenancy.registry.UnknownTenant`,
        :class:`~repro.tenancy.sessions.UnknownSession`,
        :class:`TenantForbidden` or
        :class:`~repro.tenancy.quotas.TenantThrottled`; returns
        ``(record, response)`` so callers see both the session (its id
        may be fresh) and the answer.
        """
        self.registry.get(tenant_id)
        if session_id is not None:
            record = self.session(tenant_id, session_id)
        else:
            record = self.open_session(
                tenant_id, app_name or self._default_app(tenant_id)
            )
        app = self.app_for(tenant_id, app_name or record.app_name)
        started = perf_clock()
        with self.quotas.turn(tenant_id):
            with self.store.turn(record):
                with tenant_scope(tenant_id):
                    # The record lock is held across the whole turn so
                    # concurrent sends into one session serialize and
                    # history order matches execution order.
                    with record.lock:
                        response = app.chat(text)
                        record.append_turn(
                            ChatTurn(
                                user=text,
                                assistant=response.text,
                                ok=response.ok,
                                metadata=dict(response.metadata),
                            )
                        )
        elapsed_ms = (perf_clock() - started) * 1000.0
        registry = get_registry()
        registry.counter(
            "tenant_turns_total", "completed tenant turns"
        ).inc(tenant=tenant_id, ok=str(response.ok).lower())
        registry.histogram(
            "tenant_turn_latency_ms", "end-to-end tenant turn latency"
        ).observe(elapsed_ms, tenant=tenant_id)
        return record, response

    def _default_app(self, tenant_id: str) -> str:
        names = self.app_names(tenant_id)
        if "chat2db" in names:
            return "chat2db"
        if not names:
            raise TenancyError(
                "no applications registered; load a data source first"
            )
        return names[0]

    def _scheduler_admission_hook(self, model: str, request: Any) -> None:
        """Installed on the serving scheduler: tenant-tagged work is
        checked (not charged) against the tenant's quota state."""
        from repro.tenancy.context import current_tenant

        tenant_id = current_tenant()
        if tenant_id is not None:
            self.quotas.check(tenant_id)

    # -- introspection -------------------------------------------------------

    def describe(self) -> list[dict[str, Any]]:
        """One control-plane row per tenant (CLI/API surface)."""
        quotas = self.quotas.snapshot()
        sessions = self.store.stats()
        manager = get_cache_manager()
        rows = []
        for tenant_id in self.registry.tenant_ids():
            tenant = self.registry.get(tenant_id)
            tier_stats = manager.tenant_stats().get(tenant_id, {})
            hits = misses = 0
            for tier_row in tier_stats.values():
                hits += tier_row.get("hits", 0) + tier_row.get(
                    "coalesced", 0
                )
                misses += tier_row.get("misses", 0)
            rows.append(
                {
                    "tenant": tenant_id,
                    "name": tenant.name,
                    "shard": self.registry.shard_for(tenant_id),
                    "model": tenant.model_preference or "-",
                    "private_apps": sorted(
                        self._tenant_apps.get(tenant_id, {})
                    ),
                    "sessions": sessions.get(tenant_id, {}).get(
                        "sessions", 0
                    ),
                    "quota": quotas.get(tenant_id, {}),
                    "cache_hit_rate": round(
                        hits / (hits + misses), 4
                    )
                    if hits + misses
                    else 0.0,
                }
            )
        return rows

    def render_table(self) -> str:
        """Plain-text tenant table for the CLI and REPL."""
        rows = self.describe()
        if not rows:
            return "no tenants registered"
        header = (
            f"{'tenant':<12} {'shard':<10} {'model':<12} {'sessions':>8} "
            f"{'inflight':>8} {'tokens':>8} {'throttled':>9} {'hit-rate':>8}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            quota = row["quota"]
            lines.append(
                f"{row['tenant']:<12} {row['shard']:<10} "
                f"{row['model']:<12} {row['sessions']:>8} "
                f"{quota.get('inflight', 0):>8} "
                f"{quota.get('tokens', '-'):>8} "
                f"{quota.get('throttled', 0):>9} "
                f"{row['cache_hit_rate']:>8.1%}"
            )
        return "\n".join(lines)
