"""Admission-time quotas: per-tenant token buckets + in-flight caps.

Quotas run *in front of* the serving scheduler: a turn that would
exceed its tenant's budget is rejected at admission with
:class:`TenantThrottled` — a subclass of the scheduler's
:class:`~repro.serving.scheduler.SchedulerOverloaded`, so every
existing backpressure surface (the API server's 429 + ``retry_after``
mapping, the client's retry-with-hint policy) applies unchanged. One
noisy tenant exhausts its own bucket and gets structured 429s; it can
never occupy the batch window ahead of compliant tenants' work.

The clock is injectable, so bucket refill (and therefore every
throttling decision) is deterministic in tests without sleeping.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Callable, Iterator, Optional

from repro.obs.metrics import get_registry
from repro.serving.scheduler import SchedulerOverloaded
from repro.tenancy.config import QuotaConfig


class TenantThrottled(SchedulerOverloaded):
    """The tenant is over quota; retry after ``retry_after`` seconds.

    Subclassing :class:`SchedulerOverloaded` reuses the serving
    layer's structured-backpressure plumbing end to end (429 status,
    ``retry_after`` hint, client retry classification).
    """

    code = "tenant_throttled"

    def __init__(
        self, tenant_id: str, message: str, retry_after: float
    ) -> None:
        super().__init__(message, retry_after)
        self.tenant_id = tenant_id


class _Bucket:
    """Continuous-refill token bucket state (guarded by the manager)."""

    __slots__ = ("tokens", "updated_at")

    def __init__(self, burst: float, now: float) -> None:
        self.tokens = burst
        self.updated_at = now

    def refill(self, quota: QuotaConfig, now: float) -> None:
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(
            quota.burst, self.tokens + elapsed * quota.refill_per_second
        )
        self.updated_at = now


class QuotaManager:
    """Per-tenant token buckets and in-flight caps.

    ``quota_lookup`` resolves a tenant's override (the registry's
    :meth:`~repro.tenancy.registry.TenantRegistry.quota_for`); tenants
    without one share ``default`` limits, each with their own bucket.
    """

    def __init__(
        self,
        default: Optional[QuotaConfig] = None,
        quota_lookup: Optional[
            Callable[[str], Optional[QuotaConfig]]
        ] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default = default or QuotaConfig()
        self._quota_lookup = quota_lookup
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self._inflight: dict[str, int] = {}
        self._throttled: dict[str, int] = {}
        self._admitted: dict[str, int] = {}

    def quota_for(self, tenant_id: str) -> QuotaConfig:
        if self._quota_lookup is not None:
            override = self._quota_lookup(tenant_id)
            if override is not None:
                return override
        return self.default

    # -- admission ----------------------------------------------------------

    @contextlib.contextmanager
    def turn(self, tenant_id: str) -> Iterator[None]:
        """Admit one chat turn for ``tenant_id`` and hold its
        in-flight slot for the duration of the block.

        Charges ``tokens_per_turn`` from the tenant's bucket and
        acquires an in-flight slot atomically; raises
        :class:`TenantThrottled` (with a refill-derived ``retry_after``
        hint) when either limit is exhausted. Nothing is charged on a
        rejection.
        """
        self._admit(tenant_id)
        try:
            yield
        finally:
            registry = get_registry()
            with self._lock:
                self._inflight[tenant_id] = max(
                    0, self._inflight.get(tenant_id, 0) - 1
                )
                inflight = self._inflight[tenant_id]
            registry.gauge(
                "tenant_inflight", "turns currently running per tenant"
            ).set(inflight, tenant=tenant_id)

    def _admit(self, tenant_id: str) -> None:
        quota = self.quota_for(tenant_id)
        now = self._clock()
        registry = get_registry()
        with self._lock:
            bucket = self._buckets.get(tenant_id)
            if bucket is None:
                bucket = self._buckets[tenant_id] = _Bucket(
                    quota.burst, now
                )
            bucket.refill(quota, now)
            inflight = self._inflight.get(tenant_id, 0)
            if inflight >= quota.max_inflight:
                self._throttled[tenant_id] = (
                    self._throttled.get(tenant_id, 0) + 1
                )
                reason, retry_after = "inflight", self._retry_hint(quota)
            elif bucket.tokens < quota.tokens_per_turn:
                self._throttled[tenant_id] = (
                    self._throttled.get(tenant_id, 0) + 1
                )
                reason = "rate"
                retry_after = round(
                    (quota.tokens_per_turn - bucket.tokens)
                    / quota.refill_per_second,
                    4,
                )
            else:
                bucket.tokens -= quota.tokens_per_turn
                self._inflight[tenant_id] = inflight + 1
                self._admitted[tenant_id] = (
                    self._admitted.get(tenant_id, 0) + 1
                )
                reason, retry_after = "", 0.0
        if reason:
            registry.counter(
                "tenant_throttled_total",
                "turns rejected at admission by per-tenant quota",
            ).inc(tenant=tenant_id, reason=reason)
            registry.counter(
                "tenant_requests_total", "tenant turns by outcome"
            ).inc(tenant=tenant_id, outcome="throttled")
            raise TenantThrottled(
                tenant_id,
                f"tenant {tenant_id!r} over quota ({reason}); "
                f"retry in {retry_after:.2f}s",
                retry_after=max(retry_after, 0.001),
            )
        registry.counter(
            "tenant_requests_total", "tenant turns by outcome"
        ).inc(tenant=tenant_id, outcome="admitted")
        registry.gauge(
            "tenant_inflight", "turns currently running per tenant"
        ).set(inflight + 1, tenant=tenant_id)

    def _retry_hint(self, quota: QuotaConfig) -> float:
        # An in-flight rejection frees no tokens on a schedule; hint
        # one turn's refill time as the natural backoff unit.
        return round(
            max(quota.tokens_per_turn, 1.0) / quota.refill_per_second, 4
        )

    def check(self, tenant_id: str) -> None:
        """Non-charging admission probe (the serving scheduler hook).

        Turns admitted through :meth:`turn` hold an in-flight slot, so
        their downstream LLM calls always pass. What this rejects is
        tenant-tagged work that *bypassed* turn admission while the
        tenant's bucket is empty — admitting it would only spend batch
        windows on a tenant the quota layer is already rejecting.
        """
        quota = self.quota_for(tenant_id)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant_id)
            if bucket is not None:
                bucket.refill(quota, now)
                exhausted = bucket.tokens < quota.tokens_per_turn
            else:
                exhausted = False
            covered = self._inflight.get(tenant_id, 0) > 0
        if exhausted and not covered:
            retry_after = self._retry_hint(quota)
            get_registry().counter(
                "tenant_throttled_total",
                "turns rejected at admission by per-tenant quota",
            ).inc(tenant=tenant_id, reason="scheduler")
            raise TenantThrottled(
                tenant_id,
                f"tenant {tenant_id!r} over quota at the scheduler; "
                f"retry in {retry_after:.2f}s",
                retry_after=retry_after,
            )

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-tenant quota state (tokens, in-flight, counts)."""
        now = self._clock()
        with self._lock:
            tenant_ids = (
                set(self._buckets)
                | set(self._inflight)
                | set(self._throttled)
            )
            rows: dict[str, dict[str, Any]] = {}
            for tenant_id in sorted(tenant_ids):
                quota = self.quota_for(tenant_id)
                bucket = self._buckets.get(tenant_id)
                if bucket is not None:
                    bucket.refill(quota, now)
                    tokens = round(bucket.tokens, 3)
                else:
                    tokens = quota.burst
                rows[tenant_id] = {
                    "tokens": tokens,
                    "burst": quota.burst,
                    "inflight": self._inflight.get(tenant_id, 0),
                    "max_inflight": quota.max_inflight,
                    "admitted": self._admitted.get(tenant_id, 0),
                    "throttled": self._throttled.get(tenant_id, 0),
                }
        return rows
