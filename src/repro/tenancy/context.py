"""The ambient tenant context.

One context variable carries "which tenant is this work for" through
a request: the fabric (or the server's ``/v1/chat`` handler) enters a
:func:`tenant_scope` around the turn, and everything downstream — the
cache manager picking a partition, the serving scheduler's admission
hook, the root span's ``tenant`` attribute — reads
:func:`current_tenant` without any parameter threading.

``contextvars`` propagates correctly across threads spawned with
``contextvars.copy_context()`` (the pattern the client and RAG
federation already use) and across asyncio tasks, so spans and cache
partitions stay attributed to the right tenant even on pool threads.

This module is import-light on purpose: layers as low as
:mod:`repro.cache.manager` import it, so it must not pull in the rest
of the tenancy package (or anything above it).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Optional

_current_tenant: ContextVar[Optional[str]] = ContextVar(
    "repro_tenant", default=None
)


def current_tenant() -> Optional[str]:
    """The tenant the current request is running for (None outside
    any tenant scope — i.e. always, when tenancy is disabled)."""
    return _current_tenant.get()


@contextlib.contextmanager
def tenant_scope(tenant_id: str) -> Iterator[None]:
    """Run the enclosed block attributed to ``tenant_id``."""
    token = _current_tenant.set(tenant_id)
    try:
        yield
    finally:
        _current_tenant.reset(token)
