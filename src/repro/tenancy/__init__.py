"""repro.tenancy — the multi-tenant session fabric.

Four pillars over the singleton facade: a tenant registry with
consistent-hash shard routing, a bounded server-side session store, a
quota layer in front of the serving scheduler, and tenant-partitioned
caching + observability. Everything is off until
``TenancyConfig(enabled=True)``; the disabled path is behaviorally
identical to the pre-tenancy system (see ``docs/tenancy.md``).

This module deliberately imports only the config and the ambient
tenant context at load time — :mod:`repro.cache.manager` imports the
context, so pulling the fabric (which imports the cache manager) in
here would be a cycle. The heavier pieces load lazily on first
attribute access.
"""

from __future__ import annotations

from repro.tenancy.config import QuotaConfig, TenancyConfig
from repro.tenancy.context import current_tenant, tenant_scope

_LAZY = {
    "Tenant": "repro.tenancy.registry",
    "TenantRegistry": "repro.tenancy.registry",
    "HashRing": "repro.tenancy.registry",
    "TenancyError": "repro.tenancy.registry",
    "UnknownTenant": "repro.tenancy.registry",
    "SessionStore": "repro.tenancy.sessions",
    "UnknownSession": "repro.tenancy.sessions",
    "QuotaManager": "repro.tenancy.quotas",
    "TenantThrottled": "repro.tenancy.quotas",
    "TenantFabric": "repro.tenancy.fabric",
    "TenantForbidden": "repro.tenancy.fabric",
}

__all__ = [
    "QuotaConfig",
    "TenancyConfig",
    "current_tenant",
    "tenant_scope",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)
