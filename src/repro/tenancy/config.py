"""Configuration for the multi-tenant session fabric.

Everything here is plain data so :class:`repro.core.config.DbGptConfig`
can embed a :class:`TenancyConfig` without importing anything heavy.
Like the serving, resilience and cache subsystems, tenancy defaults
**off**: a disabled configuration leaves the singleton behavior of the
facade byte-identical to a build without the subsystem (no fabric, no
session routes, no cache partitions, no quota checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class QuotaConfig:
    """Admission limits for one tenant (or the fleet default).

    The token bucket refills continuously at ``refill_per_second`` up
    to ``burst``; every chat turn costs ``tokens_per_turn``. A tenant
    whose bucket is empty — or who already has ``max_inflight`` turns
    running — is rejected with structured backpressure (a 429 carrying
    ``retry_after``) instead of queueing without bound.
    """

    refill_per_second: float = 10.0
    burst: float = 20.0
    tokens_per_turn: float = 1.0
    max_inflight: int = 8

    def __post_init__(self) -> None:
        if self.refill_per_second <= 0:
            raise ValueError("refill_per_second must be positive")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.tokens_per_turn < 0:
            raise ValueError("tokens_per_turn must be >= 0")
        if self.max_inflight <= 0:
            raise ValueError("max_inflight must be positive")


@dataclass
class TenancyConfig:
    """Configuration for :class:`repro.tenancy.fabric.TenantFabric`.

    ``enabled`` is the master switch. ``shards``/``virtual_nodes``
    parameterize the consistent-hash ring that places tenants on
    shards (adding a shard moves a bounded key range). The session
    store keeps at most ``max_sessions_per_tenant`` conversations per
    tenant (LRU eviction beyond that, never evicting a session with an
    in-flight turn) and expires idle sessions after
    ``session_ttl_seconds``. ``cache_partition_capacity`` is each
    tenant's private entry budget per cache tier — one tenant can
    never evict or poison another tenant's cached entries.
    """

    enabled: bool = False
    #: Physical shards in the initial ring.
    shards: int = 4
    #: Virtual nodes per shard on the hash ring; more nodes smooth the
    #: key distribution and shrink the range moved per topology change.
    virtual_nodes: int = 64
    #: Per-tenant bound on stored sessions (LRU beyond this).
    max_sessions_per_tenant: int = 64
    #: Seconds an idle session survives; ``None`` disables expiry.
    session_ttl_seconds: Optional[float] = None
    #: Default admission quota; individual tenants may override.
    quota: QuotaConfig = field(default_factory=QuotaConfig)
    #: Per-tenant, per-tier cache entry budget (0 disables cache
    #: partitioning — tenants then share the instance-wide stores).
    cache_partition_capacity: int = 256

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        if self.max_sessions_per_tenant <= 0:
            raise ValueError("max_sessions_per_tenant must be positive")
        if (
            self.session_ttl_seconds is not None
            and self.session_ttl_seconds <= 0
        ):
            raise ValueError("session_ttl_seconds must be positive (or None)")
        if self.cache_partition_capacity < 0:
            raise ValueError("cache_partition_capacity must be >= 0")

    @classmethod
    def disabled(cls) -> "TenancyConfig":
        """The default: no fabric, identical to a pre-tenancy build."""
        return cls(enabled=False)
