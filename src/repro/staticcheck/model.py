"""The analysis model: parsed modules, name resolution, waivers.

Everything downstream (the lock model and the rule families) works on
:class:`Project` — the parsed ASTs of every file under the checked
paths, with two conveniences the rules all need:

- **Import-normalized dotted names.** ``_dt.datetime.now`` under
  ``import datetime as _dt`` and ``now`` under ``from datetime.datetime
  import now`` both resolve to ``datetime.datetime.now``, so rules
  match canonical names instead of spellings.
- **Inline waivers.** ``# staticcheck: allow LCK003 - reason`` on the
  flagged line (or on a comment line directly above it) suppresses a
  finding. Waivers are only honored below ERROR severity — an ERROR
  must be fixed or deliberately baselined, never waved through.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic, Severity

_WAIVER = re.compile(r"#\s*staticcheck:\s*allow\s+([A-Z]+\d+)")
_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One rule hit, located in a file.

    ``key`` identifies the finding across runs for the baseline file:
    it deliberately excludes the line number so unrelated edits above
    a grandfathered finding do not churn the baseline.
    """

    diagnostic: Diagnostic
    path: str
    line: int

    @property
    def key(self) -> str:
        subject = self.diagnostic.subject or "-"
        return f"{self.diagnostic.code}\t{self.path}\t{subject}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.diagnostic.render()}"


class SourceModule:
    """One parsed Python file plus its resolution tables."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[str] = None
        #: local alias -> module path (``import datetime as _dt``).
        self.alias_map: dict[str, str] = {}
        #: local name -> dotted origin (``from time import sleep``).
        self.from_map: dict[str, str] = {}
        #: line -> waiver codes appearing on that line.
        self.waivers: dict[int, set[str]] = {}
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_error = f"line {exc.lineno}: {exc.msg}"
        if self.tree is not None:
            self._index_imports(self.tree)
        self._index_waivers()

    # -- construction ------------------------------------------------------

    def _index_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.alias_map[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.alias_map[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    self.from_map[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _index_waivers(self) -> None:
        for index, line in enumerate(self.lines, start=1):
            codes = set(_WAIVER.findall(line))
            if codes:
                self.waivers[index] = codes

    # -- queries -----------------------------------------------------------

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted name of an expression, if it has one.

        Resolves import aliases and ``from`` imports; returns ``None``
        for anything that is not a plain ``Name``/``Attribute`` chain
        (calls, subscripts, literals).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        resolved = self.alias_map.get(root) or self.from_map.get(root) or root
        parts.append(resolved)
        return ".".join(reversed(parts))

    def waived(self, line: int, code: str) -> bool:
        """True when ``code`` is waived at ``line``.

        A waiver counts when it appears on the line itself or in the
        contiguous comment block directly above it.
        """
        if code in self.waivers.get(line, ()):
            return True
        cursor = line - 1
        while cursor >= 1 and _COMMENT_ONLY.match(
            self.lines[cursor - 1] if cursor <= len(self.lines) else ""
        ):
            if code in self.waivers.get(cursor, ()):
                return True
            cursor -= 1
        return False


class Project:
    """Every module under the checked paths, ready for the rules."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self._lock_models: Optional[list] = None

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(m for m in self.modules if m.tree is not None)

    def lock_models(self) -> list:
        """Per-class lock models, built once (see ``lockmodel``)."""
        if self._lock_models is None:
            from repro.staticcheck.lockmodel import build_lock_models

            self._lock_models = build_lock_models(self)
        return self._lock_models


def gather_files(paths: list[str]) -> list[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            if path.suffix == ".py":
                files.append(path)
        else:
            raise SystemExit(f"no such file or directory: {raw}")
    return files


def load_project(paths: list[str]) -> Project:
    modules = []
    for file_path in gather_files(paths):
        rel = file_path.as_posix()
        modules.append(
            SourceModule(file_path, rel, file_path.read_text(encoding="utf-8"))
        )
    return Project(modules)


def apply_waivers(
    project: Project, findings: list[Finding]
) -> tuple[list[Finding], int]:
    """Drop waived sub-ERROR findings; returns (kept, waived count).

    ERROR findings ignore waivers by design: the only sanctioned ways
    past an ERROR are a fix or a deliberate baseline entry.
    """
    by_rel = {module.rel: module for module in project.modules}
    kept: list[Finding] = []
    waived = 0
    for finding in findings:
        module = by_rel.get(finding.path)
        if (
            module is not None
            and finding.diagnostic.severity < Severity.ERROR
            and module.waived(finding.line, finding.diagnostic.code)
        ):
            waived += 1
            continue
        kept.append(finding)
    return kept, waived
