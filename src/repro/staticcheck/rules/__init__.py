"""The rule registry.

Each rule family lives in its own module and exposes
``check(project) -> Iterable[Finding]``. Families register themselves
here so the checker, the CLI ``--only`` filter, and the docs catalog
all enumerate the same set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.staticcheck.model import Finding, Project


@dataclass(frozen=True)
class RuleFamily:
    """One registered family: an id, its codes, and its entry point."""

    family: str
    title: str
    codes: tuple[str, ...]
    check: Callable[[Project], Iterable[Finding]]


_REGISTRY: dict[str, RuleFamily] = {}


def register(
    family: str, title: str, codes: tuple[str, ...]
) -> Callable:
    """Decorator registering ``check`` under ``family``."""

    def decorate(check: Callable[[Project], Iterable[Finding]]) -> Callable:
        if family in _REGISTRY:
            raise ValueError(f"rule family {family!r} already registered")
        _REGISTRY[family] = RuleFamily(family, title, codes, check)
        return check

    return decorate


def all_families() -> list[RuleFamily]:
    """Every registered family, importing the built-ins on first use."""
    from repro.staticcheck.rules import (  # noqa: F401
        asy,
        cfg,
        det,
        lck,
        obs,
    )

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
