"""ASY — no blocking calls on the event loop.

The AWEL runner executes operators on asyncio; one synchronous sleep,
lock acquisition or blocking I/O call inside an ``async def`` stalls
every concurrently scheduled task.

- **ASY001** blocking-call-in-async: ``time.sleep``, ``.acquire()``
  (without ``blocking=False``), ``.join()`` on threads/processes,
  ``open``/``input``, ``subprocess.run`` and friends, and synchronous
  HTTP clients, directly in an ``async def`` body. Off-loop work
  belongs in ``loop.run_in_executor`` (the SMMF client pattern).
- **ASY002** unbounded-queue-get-in-async: ``<queue>.get()`` /
  ``<queue>.get_nowait``-less waits with no ``timeout=`` inside
  ``async def`` — an empty queue parks the loop forever.
- **ASY003** blocking-sync-primitive-in-async: a non-awaited
  ``.wait()`` (``threading.Condition``/``Event``), an argument-less
  ``.join()`` (threads/processes; ``str.join`` takes an argument and
  is exempt), or a blocking ``<queue>.put()`` inside ``async def``.
  ``await``-ed calls are fine — that is how asyncio's own primitives
  are used — including anywhere under an ``await`` expression
  (``await asyncio.wait_for(event.wait(), ...)``).

Nested non-async ``def`` bodies are skipped: they run wherever the
caller runs them (usually an executor thread), not on the loop.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.diagnostics import diagnostic
from repro.staticcheck.model import Finding, Project, SourceModule
from repro.staticcheck.rules import register

_BLOCKING_NAMES = {
    "time.sleep",
    "open",
    "input",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
}

#: Attribute calls that block regardless of receiver type.
_BLOCKING_ATTRS = {"acquire"}


def _async_statements(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Every AST node in an ``async def`` body, skipping nested sync
    defs and lambdas (they run off-loop)."""

    def walk(node: ast.AST, owner: str) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.AsyncFunctionDef):
                yield from walk(child, child.name)
                continue
            yield child, owner
            yield from walk(child, owner)

    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            for statement in node.body:
                if isinstance(statement, (ast.FunctionDef, ast.Lambda)):
                    continue
                if isinstance(statement, ast.AsyncFunctionDef):
                    continue  # the outer ast.walk visits it itself
                yield statement, node.name
                yield from walk(statement, node.name)


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _keyword_is_false(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def _receiver_text(node: ast.expr, module: SourceModule) -> str:
    return (module.dotted_name(node) or "").lower()


def _awaited_nodes(tree: ast.Module) -> set[int]:
    """ids of every AST node that sits under an ``await`` expression."""
    ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Await):
            for sub in ast.walk(node.value):
                ids.add(id(sub))
    return ids


def _module_findings(module: SourceModule) -> Iterable[Finding]:
    seen: set[int] = set()
    awaited = _awaited_nodes(module.tree)
    for node, owner in _async_statements(module.tree):
        if not isinstance(node, ast.Call) or node.lineno in seen:
            continue
        name = module.dotted_name(node.func)
        if name in _BLOCKING_NAMES:
            seen.add(node.lineno)
            yield Finding(
                diagnostic(
                    "ASY001",
                    f"blocking call {name}() inside async def {owner}",
                    source="static",
                    subject=name,
                    hint="await an async equivalent or off-load via "
                    "loop.run_in_executor",
                ),
                module.rel,
                node.lineno,
            )
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr in _BLOCKING_ATTRS and not _keyword_is_false(
            node, "blocking"
        ):
            seen.add(node.lineno)
            yield Finding(
                diagnostic(
                    "ASY001",
                    f".{attr}() blocks the event loop inside "
                    f"async def {owner}",
                    source="static",
                    subject=f".{attr}",
                    hint="pass blocking=False and poll, or off-load "
                    "via loop.run_in_executor",
                ),
                module.rel,
                node.lineno,
            )
            continue
        if (
            attr in ("wait", "join")
            and id(node) not in awaited
            and not (attr == "join" and node.args)
        ):
            seen.add(node.lineno)
            primitive = (
                "Condition/Event .wait()"
                if attr == "wait"
                else "thread/process .join()"
            )
            yield Finding(
                diagnostic(
                    "ASY003",
                    f"non-awaited {primitive} blocks the event loop "
                    f"inside async def {owner}",
                    source="static",
                    subject=f".{attr}",
                    hint="await an asyncio primitive, or off-load via "
                    "loop.run_in_executor",
                ),
                module.rel,
                node.lineno,
            )
            continue
        if (
            attr == "put"
            and "queue" in _receiver_text(node.func.value, module)
            and not _has_keyword(node, "timeout")
            and not _keyword_is_false(node, "block")
        ):
            seen.add(node.lineno)
            yield Finding(
                diagnostic(
                    "ASY003",
                    f"blocking queue .put() inside async def {owner} "
                    f"parks the event loop when the queue is full",
                    source="static",
                    subject=module.dotted_name(node.func) or ".put",
                    hint="pass block=False or timeout= and handle "
                    "queue.Full, or use an asyncio.Queue",
                ),
                module.rel,
                node.lineno,
            )
            continue
        if (
            attr == "get"
            and "queue" in _receiver_text(node.func.value, module)
            and not _has_keyword(node, "timeout")
        ):
            seen.add(node.lineno)
            yield Finding(
                diagnostic(
                    "ASY002",
                    f"queue .get() without timeout inside async def "
                    f"{owner} parks the event loop",
                    source="static",
                    subject=module.dotted_name(node.func) or ".get",
                    hint="pass timeout= and handle queue.Empty, or "
                    "use an asyncio.Queue",
                ),
                module.rel,
                node.lineno,
            )


@register("ASY", "async hygiene", ("ASY001", "ASY002", "ASY003"))
def check(project: Project) -> Iterable[Finding]:
    for module in project:
        yield from _module_findings(module)
