"""LCK — lock discipline over shared attributes.

Built on the inter-procedural model in ``repro.staticcheck.lockmodel``:

- **LCK001** lock-order-cycle: the class's lock-acquisition graph
  (including acquisitions reached through intra-class calls) contains
  a cycle — two threads taking the locks in opposite orders deadlock.
- **LCK002** mixed-guard-write: an attribute is written both under a
  lock and with no lock held (outside ``__init__``); one of the two
  sites is wrong, and the unlocked one can drop updates.
- **LCK003** unguarded-read: an attribute only ever written under a
  lock is read with no lock held. Usually a torn/stale-read hazard;
  WARNING because single-word reads are sometimes deliberately
  lock-free on CPython (waive with a justification comment).
- **LCK004** locked-helper-without-lock: a method whose name ends in
  ``_locked`` — the repo's "caller must hold the lock" contract — is
  called from a site where no lock is held.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.diagnostics import diagnostic
from repro.staticcheck.lockmodel import (
    _INIT_METHODS,
    ClassLockModel,
    find_cycles,
    ordering_edges,
)
from repro.staticcheck.model import Finding, Project
from repro.staticcheck.rules import register


def _class_findings(model: ClassLockModel) -> Iterable[Finding]:
    rel = model.module.rel

    # LCK001 — cycles in the acquisition-order graph.
    edges = ordering_edges(model)
    for cycle in find_cycles(edges):
        witness_method, witness_line = edges[(cycle[0], cycle[1])]
        yield Finding(
            diagnostic(
                "LCK001",
                f"{model.name} acquires its locks in a cyclic order: "
                + " -> ".join(cycle),
                source="static",
                subject=f"{model.name}.{witness_method}",
                hint="pick one global order for these locks and take "
                "them in that order everywhere",
            ),
            rel,
            witness_line,
        )

    guards = model.guarded_attrs()
    for method in model.methods.values():
        if method.name in _INIT_METHODS:
            continue
        effective = method.ambient

        # LCK002 — writes outside the guarding lock.
        for write in method.writes:
            held = write.held | effective
            if write.attr in guards and not (held & guards[write.attr]):
                lock_names = ", ".join(sorted(guards[write.attr]))
                yield Finding(
                    diagnostic(
                        "LCK002",
                        f"{model.name}.{write.attr} is written under "
                        f"{lock_names} elsewhere but written here with "
                        "no lock held",
                        source="static",
                        subject=f"{model.name}.{method.name}",
                        hint=f"take {lock_names} around this write",
                    ),
                    rel,
                    write.line,
                )

        # LCK003 — reads outside the guarding lock (non-dunder only:
        # __repr__-style debug output tolerates stale values).
        if method.is_dunder:
            continue
        for read in method.reads:
            held = read.held | effective
            if read.attr in guards and not (held & guards[read.attr]):
                lock_names = ", ".join(sorted(guards[read.attr]))
                yield Finding(
                    diagnostic(
                        "LCK003",
                        f"{model.name}.{read.attr} is guarded by "
                        f"{lock_names} but read here with no lock held",
                        source="static",
                        subject=f"{model.name}.{method.name}",
                        hint="read under the lock, or waive with a "
                        "comment justifying the lock-free read",
                    ),
                    rel,
                    read.line,
                )

    # LCK004 — `_locked` helpers called without any lock held.
    for method in model.methods.values():
        for call in method.calls:
            if not call.callee.endswith("_locked"):
                continue
            if call.callee not in model.methods:
                continue
            if not (call.held | method.ambient):
                yield Finding(
                    diagnostic(
                        "LCK004",
                        f"{model.name}.{call.callee} requires the "
                        "caller to hold a lock (the `_locked` naming "
                        "contract) but is called here without one",
                        source="static",
                        subject=f"{model.name}.{method.name}",
                        hint="acquire the lock at this call site or "
                        "rename the helper if it no longer needs it",
                    ),
                    rel,
                    call.line,
                )


@register(
    "LCK",
    "lock discipline",
    ("LCK001", "LCK002", "LCK003", "LCK004"),
)
def check(project: Project) -> Iterable[Finding]:
    for model in project.lock_models():
        yield from _class_findings(model)
