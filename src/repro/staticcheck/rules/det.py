"""DET — determinism: no ambient clocks or entropy in ``src/``.

The scheduler, breaker board, cache stores and chaos harness are all
deterministic because time and randomness are *injected*. These rules
keep it that way:

- **DET001** wall-clock-call: ``time.time()``, ``datetime.now()`` and
  friends read the real wall clock inline.
- **DET002** ambient-random-call: module-level ``random.*`` functions
  draw from the interpreter-global generator.
- **DET003** unseeded-rng: ``random.Random()`` with no seed draws OS
  entropy at construction.
- **DET004** raw-timing-call: inline ``time.perf_counter()`` /
  ``time.monotonic()`` calls; instrumentation must go through
  :mod:`repro.runtime` so tests can freeze or script the clocks.

Referencing a clock *as a default parameter value* (``clock:
Callable[[], float] = time.monotonic``) is the injectable-clock
pattern itself and is never flagged — only calls are. The single
allowlisted home for real OS clock calls is ``repro/runtime.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.diagnostics import diagnostic
from repro.staticcheck.model import Finding, Project, SourceModule
from repro.staticcheck.rules import register

#: The one module allowed to call the real OS clocks.
_RUNTIME_SUFFIX = "repro/runtime.py"

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_RAW_TIMING = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
}

#: ``random.<fn>()`` module-level calls; ``random.Random`` is handled
#: separately (DET003) and ``random.SystemRandom`` is explicit about
#: wanting OS entropy.
_RANDOM_EXEMPT = {"random.Random", "random.SystemRandom"}


def _module_findings(module: SourceModule) -> Iterable[Finding]:
    allow_clocks = module.rel.endswith(_RUNTIME_SUFFIX)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name: Optional[str] = module.dotted_name(node.func)
        if name is None:
            continue
        if name in _WALL_CLOCK:
            yield Finding(
                diagnostic(
                    "DET001",
                    f"inline wall-clock call {name}()",
                    source="static",
                    subject=name,
                    hint="use repro.runtime.wall_clock() or an "
                    "injected clock parameter",
                ),
                module.rel,
                node.lineno,
            )
        elif not allow_clocks and name in _RAW_TIMING:
            yield Finding(
                diagnostic(
                    "DET004",
                    f"inline timing call {name}()",
                    source="static",
                    subject=name,
                    hint="use repro.runtime.perf_clock()/mono_clock() "
                    "or take a clock parameter (default-arg "
                    "references to time.monotonic are fine)",
                ),
                module.rel,
                node.lineno,
            )
        elif name == "random.Random" and not node.args and not node.keywords:
            yield Finding(
                diagnostic(
                    "DET003",
                    "random.Random() without a seed draws OS entropy",
                    source="static",
                    subject=name,
                    hint="seed it, or use repro.runtime.default_rng()",
                ),
                module.rel,
                node.lineno,
            )
        elif (
            name.startswith("random.")
            and name.count(".") == 1
            and name not in _RANDOM_EXEMPT
        ):
            yield Finding(
                diagnostic(
                    "DET002",
                    f"{name}() uses the interpreter-global generator",
                    source="static",
                    subject=name,
                    hint="take an injected random.Random (the "
                    "RetryPolicy/chaos-harness pattern)",
                ),
                module.rel,
                node.lineno,
            )


@register(
    "DET",
    "determinism",
    ("DET001", "DET002", "DET003", "DET004"),
)
def check(project: Project) -> Iterable[Finding]:
    for module in project:
        yield from _module_findings(module)
