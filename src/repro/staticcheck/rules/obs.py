"""OBS — observability conventions (docs/observability.md).

- **OBS001** span-not-context-managed: ``tracer.span(...)`` used
  outside a ``with`` statement. A span not closed by ``__exit__``
  never records, never sets error status, and corrupts the
  context-local parent stack for everything after it.
- **OBS002** counter-name-suffix: counter names must end ``_total``.
- **OBS003** unknown-metric-prefix: metric names are namespaced by
  layer (``cache_``, ``serving_``, ...); an unknown first segment is
  either a typo or a missing docs entry.
- **OBS004** histogram-unit-suffix: histogram names carry their unit
  as the suffix (``_ms``, ``_size``, ...); WARNING because new units
  are legitimate — add them here and to the docs together.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.diagnostics import diagnostic
from repro.staticcheck.model import Finding, Project, SourceModule
from repro.staticcheck.rules import register

#: First name segment -> owning layer, per docs/observability.md.
KNOWN_PREFIXES = {
    "agent", "analysis", "app", "awel", "balancer", "cache", "model",
    "rag", "resilience", "server", "serving", "tenant", "vectorstore",
    "worker",
}

#: Unit suffixes histograms may carry.
HISTOGRAM_SUFFIXES = (
    "_ms", "_s", "_size", "_bytes", "_tokens", "_candidates", "_ratio",
    "_inflight",
)

_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}


def _literal_name(call: ast.Call) -> Optional[tuple[str, int]]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value, call.args[0].lineno
    return None


def _span_receiver(node: ast.expr, module: SourceModule) -> bool:
    """True when ``<node>.span(...)`` is a tracer span call."""
    if isinstance(node, ast.Call):
        name = module.dotted_name(node.func) or ""
        return name.endswith("get_tracer")
    name = module.dotted_name(node) or ""
    return "tracer" in name.lower()


def _with_context_calls(tree: ast.Module) -> set[int]:
    """Line numbers of calls used directly as ``with`` items."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    lines.add(id(item.context_expr))
    return lines


def _module_findings(module: SourceModule) -> Iterable[Finding]:
    managed = _with_context_calls(module.tree)
    defines_tracer = module.rel.endswith("obs/tracer.py")
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue

        # OBS001 — span calls must be with-managed (the tracer module
        # itself constructs and returns spans, so it is exempt).
        if (
            func.attr == "span"
            and not defines_tracer
            and id(node) not in managed
            and _span_receiver(func.value, module)
        ):
            yield Finding(
                diagnostic(
                    "OBS001",
                    "span opened without a context manager never "
                    "finishes and corrupts span parenting",
                    source="static",
                    subject="span",
                    hint="wrap the call in `with tracer.span(...) "
                    "as span:`",
                ),
                module.rel,
                node.lineno,
            )
            continue

        if func.attr not in _INSTRUMENT_METHODS:
            continue
        literal = _literal_name(node)
        if literal is None:
            continue
        name, line = literal

        # OBS002 — counters count events; the unit is "events total".
        if func.attr == "counter" and not name.endswith("_total"):
            yield Finding(
                diagnostic(
                    "OBS002",
                    f"counter name {name!r} must end with '_total'",
                    source="static",
                    subject=name,
                    hint="rename, or use a gauge/histogram if the "
                    "value is not a monotonic count",
                ),
                module.rel,
                line,
            )

        # OBS003 — the first segment namespaces the owning layer.
        prefix = name.split("_", 1)[0]
        if prefix not in KNOWN_PREFIXES:
            yield Finding(
                diagnostic(
                    "OBS003",
                    f"metric name {name!r} does not start with a "
                    "known layer prefix",
                    source="static",
                    subject=name,
                    hint="known prefixes: "
                    + ", ".join(sorted(KNOWN_PREFIXES)),
                ),
                module.rel,
                line,
            )

        # OBS004 — histograms carry their unit as the suffix.
        if func.attr == "histogram" and not name.endswith(
            HISTOGRAM_SUFFIXES
        ):
            yield Finding(
                diagnostic(
                    "OBS004",
                    f"histogram name {name!r} should end with a unit "
                    f"suffix {HISTOGRAM_SUFFIXES}",
                    source="static",
                    subject=name,
                    hint="append the unit, or extend the suffix list "
                    "and docs/observability.md together",
                ),
                module.rel,
                line,
            )


@register(
    "OBS",
    "observability conventions",
    ("OBS001", "OBS002", "OBS003", "OBS004"),
)
def check(project: Project) -> Iterable[Finding]:
    for module in project:
        yield from _module_findings(module)
