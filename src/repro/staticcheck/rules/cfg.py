"""CFG — configuration parity: no dead knobs.

A field defined on a ``*/config.py`` dataclass but never read anywhere
in the tree is a flag that silently does nothing — the configuration
surface promises behavior the code no longer (or never did) implement.

A field counts as *read* when, anywhere outside its defining class:

- an attribute load with the field's name appears (``config.jitter``,
  ``self.config.tier(...).capacity``), or
- the field's name appears as a string constant in its defining module
  (the ``TIER_NAMES`` + ``getattr`` dispatch pattern).

``__post_init__`` validation does not count — a dead flag would still
be validated. The match is name-based, so a same-named attribute on an
unrelated class also counts; that keeps the rule quiet rather than
noisy, which is the right bias for a WARNING.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import diagnostic
from repro.staticcheck.model import Finding, Project, SourceModule
from repro.staticcheck.rules import register


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _config_fields(
    module: SourceModule,
) -> Iterable[tuple[str, str, int]]:
    """(class name, field name, line) for every dataclass field."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
            continue
        for item in node.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
            ):
                annotation = ast.unparse(item.annotation)
                if "ClassVar" in annotation:
                    continue
                yield node.name, item.target.id, item.lineno


class _ReadIndex:
    """Attribute loads and string constants across the project."""

    def __init__(self, project: Project) -> None:
        #: attribute name -> modules reading it, with class context.
        self.attr_reads: dict[str, set[tuple[str, str]]] = {}
        self.strings: dict[str, set[str]] = {}
        for module in project:
            class_stack: list[str] = []

            def walk(node: ast.AST) -> None:
                is_class = isinstance(node, ast.ClassDef)
                if is_class:
                    class_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    walk(child)
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    owner = class_stack[-1] if class_stack else ""
                    self.attr_reads.setdefault(node.attr, set()).add(
                        (module.rel, owner)
                    )
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    self.strings.setdefault(node.value, set()).add(
                        module.rel
                    )
                if is_class:
                    class_stack.pop()

            walk(module.tree)

    def is_read(
        self, module: SourceModule, class_name: str, field_name: str
    ) -> bool:
        for rel, owner in self.attr_reads.get(field_name, ()):
            if rel == module.rel and owner == class_name:
                continue  # the defining class validating itself
            return True
        return module.rel in self.strings.get(field_name, set())


@register("CFG", "configuration parity", ("CFG001",))
def check(project: Project) -> Iterable[Finding]:
    config_modules = [
        module for module in project if module.rel.endswith("config.py")
    ]
    if not config_modules:
        return
    index = _ReadIndex(project)
    for module in config_modules:
        for class_name, field_name, line in _config_fields(module):
            if index.is_read(module, class_name, field_name):
                continue
            yield Finding(
                diagnostic(
                    "CFG001",
                    f"config field {class_name}.{field_name} is "
                    "never read — a knob that does nothing",
                    source="static",
                    subject=f"{class_name}.{field_name}",
                    hint="wire the field up or delete it (and its "
                    "docs entry)",
                ),
                module.rel,
                line,
            )
