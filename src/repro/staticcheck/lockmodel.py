"""Inter-procedural lock model for the LCK rule family.

For every class that creates locks in ``__init__`` (``self._lock =
threading.Lock()`` / ``RLock()`` / ``Condition()``), the model records,
per method:

- which locks the method **acquires** (``with self._lock:`` blocks),
- every ``self.<attr>`` **read and write** with the set of locks held
  at that statement,
- every intra-class **call** (``self.other()``) with the locks held at
  the call site.

Held-lock information then propagates across calls to a fixpoint:

- **ambient locks** — a method only ever called while holding L is
  analyzed as if L were held throughout (the ``_expire_locked``-style
  helper pattern); ambient locks are the intersection over call sites,
  so one unlocked call site removes the guarantee;
- **transitive acquires** — calling a method that takes L is itself an
  acquisition of L at the call site, which feeds the lock-ordering
  graph the LCK001 cycle check walks.

The model is deliberately class-local and name-based (`self.X`), which
matches how every lock in this codebase is actually used; it does not
chase locks passed between objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.staticcheck.model import Project, SourceModule

#: Constructors whose result makes an attribute a lock.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

#: Methods where writes are construction, not shared-state mutation.
_INIT_METHODS = {"__init__", "__new__", "__post_init__"}

#: Attribute method calls that mutate their receiver in place.
_MUTATORS = {
    "append", "add", "clear", "extend", "insert", "remove",
    "discard", "pop", "popitem", "update", "setdefault",
}


@dataclass
class Access:
    """One read/write of ``self.<attr>`` with the locks held there."""

    attr: str
    line: int
    held: frozenset[str]
    method: str


@dataclass
class CallSite:
    """One ``self.<method>()`` call with the locks held there."""

    callee: str
    line: int
    held: frozenset[str]
    caller: str


@dataclass
class MethodModel:
    name: str
    line: int
    is_dunder: bool
    #: Locks taken directly via ``with self.<lock>:``.
    acquires: list[tuple[str, int, frozenset[str]]] = field(
        default_factory=list
    )
    reads: list[Access] = field(default_factory=list)
    writes: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: Locks held at every call site of this method (fixpoint result).
    ambient: frozenset[str] = frozenset()
    #: Locks this method may acquire, directly or transitively.
    all_acquired: frozenset[str] = frozenset()


@dataclass
class ClassLockModel:
    module: SourceModule
    name: str
    line: int
    locks: set[str]
    methods: dict[str, MethodModel]

    def guarded_attrs(self) -> dict[str, set[str]]:
        """attr -> locks it is ever written under (outside init)."""
        guards: dict[str, set[str]] = {}
        for method in self.methods.values():
            if method.name in _INIT_METHODS:
                continue
            for write in method.writes:
                if write.held:
                    guards.setdefault(write.attr, set()).update(write.held)
        return guards


class _MethodScanner(ast.NodeVisitor):
    """Walk one method body tracking the ``with``-held lock set."""

    def __init__(
        self, module: SourceModule, locks: set[str], model: MethodModel
    ) -> None:
        self.module = module
        self.locks = locks
        self.model = model
        self.held: tuple[str, ...] = ()

    # -- lock tracking -----------------------------------------------------

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def visit_With(self, node: ast.With) -> None:
        taken: list[str] = []
        for item in node.items:
            attr = self._self_attr(item.context_expr)
            if attr is not None and attr in self.locks:
                taken.append(attr)
                self.model.acquires.append(
                    (attr, item.context_expr.lineno, frozenset(self.held))
                )
            else:
                self.visit(item.context_expr)
        previous = self.held
        self.held = previous + tuple(
            t for t in taken if t not in previous
        )
        for statement in node.body:
            self.visit(statement)
        self.held = previous

    visit_AsyncWith = visit_With

    # -- nested scopes -----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs run later, on unknown threads, with unknown
        # locks held — analyzing their bodies under the current held
        # set would be wrong in both directions. Skip them.
        return

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- accesses ----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            access = Access(
                attr, node.lineno, frozenset(self.held), self.model.name
            )
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.model.writes.append(access)
            else:
                self.model.reads.append(access)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self.X[k] = v`` / ``del self.X[k]`` mutate X.
        attr = self._self_attr(node.value)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self.model.writes.append(
                Access(
                    attr, node.lineno, frozenset(self.held), self.model.name
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = self._self_attr(func.value)
            if attr is not None and func.attr in _MUTATORS:
                # ``self.X.append(...)`` mutates X in place.
                self.model.writes.append(
                    Access(
                        attr,
                        node.lineno,
                        frozenset(self.held),
                        self.model.name,
                    )
                )
            callee = self._self_attr(func)
            if callee is not None:
                self.model.calls.append(
                    CallSite(
                        callee,
                        node.lineno,
                        frozenset(self.held),
                        self.model.name,
                    )
                )
        self.generic_visit(node)


def _collect_locks(class_node: ast.ClassDef, module: SourceModule) -> set[str]:
    locks: set[str] = set()
    for method in class_node.body:
        if (
            isinstance(method, ast.FunctionDef)
            and method.name == "__init__"
        ):
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                called = module.dotted_name(node.value.func)
                if called not in _LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
    return locks


def _propagate(model: ClassLockModel) -> None:
    """Fixpoint for ambient locks and transitive acquisitions."""
    methods = model.methods
    # Transitive acquires: direct acquires, closed over self-calls.
    for method in methods.values():
        method.all_acquired = frozenset(a for a, _, _ in method.acquires)
    for _ in range(len(methods) + 1):
        changed = False
        for method in methods.values():
            union = set(method.all_acquired)
            for call in method.calls:
                callee = methods.get(call.callee)
                if callee is not None:
                    union |= callee.all_acquired
            frozen = frozenset(union)
            if frozen != method.all_acquired:
                method.all_acquired = frozen
                changed = True
        if not changed:
            break

    # Ambient locks: intersection of effective held sets over every
    # intra-class call site; iterate because callers' effective sets
    # include their own ambient locks.
    for _ in range(len(methods) + 1):
        changed = False
        sites: dict[str, list[frozenset[str]]] = {}
        for method in methods.values():
            for call in method.calls:
                sites.setdefault(call.callee, []).append(
                    call.held | method.ambient
                )
        for method in methods.values():
            held_sets = sites.get(method.name)
            if not held_sets:
                ambient: frozenset[str] = frozenset()
            else:
                ambient = frozenset.intersection(*held_sets)
            if ambient != method.ambient:
                method.ambient = ambient
                changed = True
        if not changed:
            break


def build_lock_models(project: Project) -> list[ClassLockModel]:
    models: list[ClassLockModel] = []
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = _collect_locks(node, module)
            if not locks:
                continue
            methods: dict[str, MethodModel] = {}
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                method = MethodModel(
                    name=item.name,
                    line=item.lineno,
                    is_dunder=item.name.startswith("__")
                    and item.name.endswith("__"),
                )
                scanner = _MethodScanner(module, locks, method)
                for statement in item.body:
                    scanner.visit(statement)
                methods[item.name] = method
            model = ClassLockModel(
                module=module,
                name=node.name,
                line=node.lineno,
                locks=locks,
                methods=methods,
            )
            _propagate(model)
            models.append(model)
    return models


def ordering_edges(
    model: ClassLockModel,
) -> dict[tuple[str, str], tuple[str, int]]:
    """Lock-order edges ``(held, acquired)`` -> one witness site."""
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for method in model.methods.values():
        for lock, line, held in method.acquires:
            for outer in held | method.ambient:
                if outer != lock:
                    edges.setdefault(
                        (outer, lock), (method.name, line)
                    )
        for call in method.calls:
            callee = model.methods.get(call.callee)
            if callee is None:
                continue
            for outer in call.held | method.ambient:
                for inner in callee.all_acquired:
                    if outer != inner:
                        edges.setdefault(
                            (outer, inner), (method.name, call.line)
                        )
    return edges


def find_cycles(
    edges: dict[tuple[str, str], tuple[str, int]]
) -> list[list[str]]:
    """Cycles in the lock-order graph, each reported once."""
    graph: dict[str, set[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    cycles: list[list[str]] = []
    seen: set[frozenset[str]] = set()

    def walk(start: str, node: str, path: list[str]) -> None:
        for neighbor in sorted(graph.get(node, ())):
            if neighbor == start:
                signature = frozenset(path)
                if signature not in seen:
                    seen.add(signature)
                    cycles.append(path + [start])
            elif neighbor not in path and neighbor > start:
                walk(start, neighbor, path + [neighbor])

    for start in sorted(graph):
        walk(start, start, [start])
    return cycles
