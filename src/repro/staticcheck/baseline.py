"""The checked-in baseline of grandfathered findings.

A baseline entry is one tab-separated line — ``CODE<TAB>path<TAB>
subject`` — matching :attr:`repro.staticcheck.model.Finding.key`.
Line numbers are deliberately absent so edits elsewhere in a file do
not churn the baseline.

Workflow:

- the tree is kept clean, so ``staticcheck.baseline`` ships **empty**;
- a finding may be grandfathered deliberately via ``make
  staticcheck-baseline`` (never by hand-editing around a failure);
- ``repro check`` reports baselined findings as suppressed, and flags
  **stale** entries (baseline lines matching nothing) so fixed
  findings get removed from the file instead of lingering.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.staticcheck.model import Finding

_HEADER = """\
# repro.staticcheck baseline — grandfathered findings.
# One finding per line: CODE<TAB>path<TAB>subject.
# Regenerate deliberately with `make staticcheck-baseline`;
# an empty baseline means the tree is clean.
"""


def load_baseline(path: Path) -> set[str]:
    """The baseline keys in ``path`` (missing file = empty baseline)."""
    if not path.exists():
        return set()
    keys: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            keys.add(stripped)
    return keys


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write every finding's key to ``path``; returns the count."""
    keys = sorted({finding.key for finding in findings})
    body = "".join(f"{key}\n" for key in keys)
    path.write_text(_HEADER + body, encoding="utf-8")
    return len(keys)


def split_baselined(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding], set[str]]:
    """Partition into (new, baselined) and report stale entries."""
    new: list[Finding] = []
    suppressed: list[Finding] = []
    matched: set[str] = set()
    for finding in findings:
        if finding.key in baseline:
            suppressed.append(finding)
            matched.add(finding.key)
        else:
            new.append(finding)
    stale = baseline - matched
    return new, suppressed, stale
