"""``repro check``: the concurrency & determinism static-analysis pass.

Usage (also wired as ``python -m repro.cli check`` and ``/check``)::

    python -m repro.staticcheck.check src/
    python -m repro.cli check src/ --strict
    python -m repro.cli check src/ --write-baseline

Runs every registered rule family (LCK, ASY, DET, OBS, CFG — see
``docs/staticcheck.md``) over the given paths and prints findings as
:class:`repro.analysis.diagnostics.Diagnostic` lines. Exit status is
1 when any unbaselined ERROR finding remains; ``--strict`` (what
``make staticcheck`` runs) also fails on WARNINGs, so a new finding of
any failing severity breaks ``make verify``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.diagnostics import Severity, diagnostic
from repro.staticcheck.baseline import (
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.staticcheck.model import (
    Finding,
    Project,
    apply_waivers,
    load_project,
)
from repro.staticcheck.rules import all_families

DEFAULT_BASELINE = "staticcheck.baseline"


def run_check(
    paths: list[str], only: Optional[set[str]] = None
) -> tuple[Project, list[Finding]]:
    """Analyze ``paths``; returns the project and unwaived findings,
    sorted by location. ``only`` restricts to named rule families."""
    project = load_project(paths)
    findings: list[Finding] = []
    for module in project.modules:
        if module.parse_error is not None:
            findings.append(
                Finding(
                    diagnostic(
                        "STC000",
                        f"file could not be parsed: {module.parse_error}",
                        source="static",
                        subject=module.rel,
                    ),
                    module.rel,
                    1,
                )
            )
    for family in all_families():
        if only and family.family not in only:
            continue
        findings.extend(family.check(project))
    findings, _waived = apply_waivers(project, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.diagnostic.code))
    return project, findings


def render_report(
    findings: list[Finding],
    suppressed: int,
    stale: set[str],
    checked: int,
    strict: bool,
) -> tuple[str, int]:
    """(report text, exit status) for a finished run."""
    lines = [finding.render() for finding in findings]
    for key in sorted(stale):
        label = key.replace("\t", " ")
        lines.append(f"stale baseline entry (fixed? remove it): {label}")
    counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    for finding in findings:
        counts[finding.diagnostic.severity] += 1
    lines.append(
        f"staticcheck: {checked} file(s) checked — "
        f"{counts[Severity.ERROR]} error(s), "
        f"{counts[Severity.WARNING]} warning(s), "
        f"{counts[Severity.INFO]} info(s), {suppressed} baselined"
    )
    threshold = Severity.WARNING if strict else Severity.ERROR
    failing = any(
        finding.diagnostic.severity >= threshold for finding in findings
    )
    status = 1 if failing or (strict and stale) else 0
    return "\n".join(lines), status


def check_main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Concurrency & determinism static analysis "
        "(LCK, ASY, DET, OBS, CFG).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src/)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and stale baseline entries too "
        "(what `make staticcheck` uses)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="FAMILY",
        help="restrict to a rule family (LCK, ASY, DET, OBS, CFG); "
        "repeatable",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline "
        "and exit 0",
    )
    args = parser.parse_args(argv)

    only = {family.upper() for family in args.only} or None
    known = {family.family for family in all_families()}
    if only and not only <= known:
        raise SystemExit(
            f"unknown rule family: {sorted(only - known)}; "
            f"known: {sorted(known)}"
        )
    project, findings = run_check(args.paths or ["src"], only)
    baseline_path = Path(args.baseline)

    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"staticcheck: wrote {count} finding(s) to {baseline_path}")
        return 0

    new, suppressed, stale = split_baselined(
        findings, load_baseline(baseline_path)
    )
    checked = sum(1 for _ in project.modules)
    report, status = render_report(
        new, len(suppressed), stale, checked, args.strict
    )
    print(report)
    return status


if __name__ == "__main__":
    sys.exit(check_main())
