"""``repro.staticcheck`` — concurrency & determinism static analysis.

An AST-based pass over ``src/repro`` itself that machine-checks the
invariants the concurrent subsystems rely on: lock discipline (LCK),
event-loop hygiene (ASY), injectable clocks/rngs (DET), observability
conventions (OBS) and configuration parity (CFG). See
``docs/staticcheck.md`` for the rule catalog and baseline workflow.

Entry points: ``repro check`` (CLI), ``/check`` (REPL), and ``make
staticcheck`` inside ``make verify``.
"""

from repro.staticcheck.check import check_main, run_check
from repro.staticcheck.model import (
    Finding,
    Project,
    SourceModule,
    load_project,
)
from repro.staticcheck.rules import all_families

__all__ = [
    "Finding",
    "Project",
    "SourceModule",
    "all_families",
    "check_main",
    "load_project",
    "run_check",
]
