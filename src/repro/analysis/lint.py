"""``repro lint``: analyze SQL files and AWEL flow modules.

Usage (also wired as ``python -m repro.cli lint``)::

    python -m repro.analysis.lint examples/
    python -m repro.cli lint examples/queries.sql --schema none

``.sql`` files are split into statements and run through the semantic
analyzer against the chosen schema (the demo ``sales`` catalog by
default, a Spider domain via ``--schema spider:retail``, or ``none``
for schema-independent checks only). ``.py`` files are imported and
every module-level :class:`~repro.awel.dag.DAG` is linted.

Exit status is 1 when any error-severity finding is reported.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.sql_analyzer import SqlAnalyzer
from repro.sqlengine.catalog import Catalog


def _build_catalog(schema: str) -> Optional[Catalog]:
    if schema == "none":
        return None
    if schema == "sales":
        from repro.datasets import build_sales_database

        return build_sales_database(n_orders=1).catalog
    if schema.startswith("spider:"):
        from repro.datasets.spider import build_spider_database

        return build_spider_database(schema.split(":", 1)[1]).catalog
    raise SystemExit(
        f"unknown --schema {schema!r}; use sales, spider:<domain> or none"
    )


def _split_statements(text: str) -> list[tuple[int, str]]:
    """Split on ``;`` outside strings/comments; yields (line, statement)."""
    statements: list[tuple[int, str]] = []
    start = 0
    in_string = in_comment = False
    padded = text + "\n;"
    for index, char in enumerate(padded):
        if in_comment:
            if char == "\n":
                in_comment = False
        elif char == "'":
            in_string = not in_string
        elif (
            not in_string
            and char == "-"
            and padded[index : index + 2] == "--"
        ):
            in_comment = True
        elif char == ";" and not in_string:
            fragment = text[start:index]
            stripped = "\n".join(
                line
                for line in fragment.splitlines()
                if not line.strip().startswith("--")
            ).strip()
            if stripped:
                # Point at the first line with SQL content, skipping
                # blank and comment lines at the fragment's head.
                content_at = start
                for line in fragment.splitlines(keepends=True):
                    body = line.strip()
                    if body and not body.startswith("--"):
                        content_at += len(line) - len(line.lstrip())
                        break
                    content_at += len(line)
                line_no = text.count("\n", 0, content_at) + 1
                statements.append((line_no, stripped))
            start = index + 1
    return statements


def _lint_sql_file(
    path: Path, catalog: Optional[Catalog]
) -> list[tuple[int, Diagnostic]]:
    analyzer = SqlAnalyzer(catalog)
    found: list[tuple[int, Diagnostic]] = []
    for line_no, statement in _split_statements(path.read_text()):
        for diag in analyzer.analyze_sql(statement):
            found.append((line_no, diag))
    return found


def _lint_python_file(path: Path) -> tuple[list[tuple[str, Diagnostic]], int]:
    """Import the module and lint every module-level DAG.

    Returns (findings tagged with the DAG name, number of DAGs seen).
    Import failures are reported as a note, not a crash — example
    scripts may need services this environment lacks.
    """
    from repro.analysis.awel_linter import lint_dag
    from repro.awel.dag import DAG

    module_name = f"_repro_lint_{path.stem}_{abs(hash(str(path))) % 10_000}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        return [], 0
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:  # pragma: no cover - environment dependent
        print(f"{path}: skipped (import failed: {exc})")
        return [], 0
    finally:
        sys.modules.pop(module_name, None)
    found: list[tuple[str, Diagnostic]] = []
    dags = [
        value for value in vars(module).values() if isinstance(value, DAG)
    ]
    for dag in dags:
        for diag in lint_dag(dag):
            found.append((dag.name, diag))
    return found, len(dags)


def _gather(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.sql")))
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
        else:
            raise SystemExit(f"no such file or directory: {raw}")
    return files


def lint_main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically analyze SQL files and AWEL flow modules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["examples"],
        help="files or directories to lint (default: examples/)",
    )
    parser.add_argument(
        "--schema",
        default="sales",
        help="schema for SQL resolution: sales (default), "
        "spider:<domain>, or none",
    )
    args = parser.parse_args(argv)

    catalog = _build_catalog(args.schema)
    errors = warnings = infos = 0
    checked = 0
    for path in _gather(args.paths or ["examples"]):
        if path.suffix == ".sql":
            findings = _lint_sql_file(path, catalog)
            checked += 1
            for line_no, diag in findings:
                print(f"{path}:{line_no}: {diag.render()}")
        elif path.suffix == ".py":
            tagged, dag_count = _lint_python_file(path)
            checked += 1 if dag_count else 0
            for dag_name, diag in tagged:
                print(f"{path} [dag {dag_name}]: {diag.render()}")
            findings = [(0, diag) for _, diag in tagged]
        else:
            continue
        for _, diag in findings:
            if diag.severity is Severity.ERROR:
                errors += 1
            elif diag.severity is Severity.WARNING:
                warnings += 1
            else:
                infos += 1
    print(
        f"lint: {checked} target(s) checked — {errors} error(s), "
        f"{warnings} warning(s), {infos} info(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(lint_main())
