"""Semantic SQL analyzer: schema-aware static checks over parsed ASTs.

The executor finds these mistakes at run time; the analyzer finds them
*before* execution so the Text-to-SQL gate can repair or reject a model
draft without touching the database. Checks:

- name resolution against the :class:`~repro.sqlengine.catalog.Catalog`
  (unknown tables/columns, ambiguous references, duplicate aliases),
- type checking of comparisons, arithmetic and function arguments via
  :mod:`repro.sqlengine.types`,
- aggregation rules (aggregates in WHERE, nested aggregates, ungrouped
  columns in grouped queries),
- lint-grade smells (``SELECT *``, cartesian joins, non-boolean
  predicates).

The analyzer never raises on a statement :func:`parse_sql` accepts — it
reports :class:`~repro.analysis.diagnostics.Diagnostic` objects instead
(property-tested in ``tests/analysis/test_analyzer_fuzz.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.sqlengine import nodes
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.errors import SqlSyntaxError, TypeCheckError
from repro.sqlengine.functions import is_aggregate_function, is_scalar_function
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.types import DataType, infer_type

_NUMERIC = {DataType.INTEGER, DataType.REAL, DataType.BOOLEAN}

#: scalar function -> (min arity, max arity or None for variadic).
_SCALAR_ARITY: dict[str, tuple[int, Optional[int]]] = {
    "ABS": (1, 1), "ROUND": (1, 2), "FLOOR": (1, 1), "CEIL": (1, 1),
    "CEILING": (1, 1), "SQRT": (1, 1), "POWER": (2, 2), "MOD": (2, 2),
    "SIGN": (1, 1), "LENGTH": (1, 1), "LOWER": (1, 1), "UPPER": (1, 1),
    "TRIM": (1, 1), "LTRIM": (1, 1), "RTRIM": (1, 1), "SUBSTR": (2, 3),
    "SUBSTRING": (2, 3), "REPLACE": (3, 3), "CONCAT": (1, None),
    "INSTR": (2, 2), "YEAR": (1, 1), "MONTH": (1, 1), "DAY": (1, 1),
    "STRFTIME": (2, 2), "DATE": (1, 1), "COALESCE": (1, None),
    "NULLIF": (2, 2), "IFNULL": (2, 2), "MIN2": (2, 2), "MAX2": (2, 2),
}

#: functions whose arguments must be numeric.
_NUMERIC_ARG_FUNCTIONS = frozenset(
    {"ABS", "ROUND", "FLOOR", "CEIL", "CEILING", "SQRT", "POWER", "MOD",
     "SIGN", "SUM", "AVG"}
)

_TEXT_RESULT = frozenset(
    {"LOWER", "UPPER", "TRIM", "LTRIM", "RTRIM", "SUBSTR", "SUBSTRING",
     "REPLACE", "CONCAT", "STRFTIME", "GROUP_CONCAT"}
)
_INTEGER_RESULT = frozenset(
    {"LENGTH", "INSTR", "YEAR", "MONTH", "DAY", "FLOOR", "CEIL", "CEILING",
     "SIGN", "MOD", "COUNT"}
)
_REAL_RESULT = frozenset({"ROUND", "SQRT", "POWER", "AVG"})


def _children(expr: nodes.Expression) -> tuple[nodes.Expression, ...]:
    """Direct sub-expressions, excluding subqueries (handled separately)."""
    if isinstance(expr, nodes.UnaryOp):
        return (expr.operand,)
    if isinstance(expr, nodes.BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, nodes.IsNull):
        return (expr.operand,)
    if isinstance(expr, nodes.Like):
        return (expr.operand, expr.pattern)
    if isinstance(expr, nodes.Between):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, nodes.InList):
        return (expr.operand, *expr.items)
    if isinstance(expr, nodes.InSubquery):
        return (expr.operand,)
    if isinstance(expr, nodes.FunctionCall):
        return expr.args
    if isinstance(expr, nodes.Case):
        flat: list[nodes.Expression] = []
        for condition, result in expr.branches:
            flat.extend((condition, result))
        if expr.default is not None:
            flat.append(expr.default)
        return tuple(flat)
    if isinstance(expr, nodes.Cast):
        return (expr.operand,)
    return ()


def _contains_aggregate(expr: nodes.Expression) -> bool:
    if isinstance(expr, nodes.FunctionCall) and is_aggregate_function(
        expr.name
    ):
        return True
    return any(_contains_aggregate(child) for child in _children(expr))


def _comparable(left: Optional[DataType], right: Optional[DataType]) -> bool:
    """Whether the engine can compare values of these two types."""
    if left is None or right is None or left is right:
        return True
    if left in _NUMERIC and right in _NUMERIC:
        return True
    # DATE columns compare against ISO-8601 TEXT literals.
    pair = {left, right}
    if pair == {DataType.DATE, DataType.TEXT}:
        return True
    return False


@dataclass
class _Binding:
    """One FROM-clause source visible to column references."""

    name: str
    #: lowered column name -> type; ``None`` when the source is unknown
    #: (missing table, ``SELECT *`` subquery) and resolution must not
    #: cascade further errors.
    columns: Optional[dict[str, Optional[DataType]]]


@dataclass
class _Scope:
    """Name-resolution scope; ``parent`` enables correlated subqueries."""

    bindings: dict[str, _Binding] = field(default_factory=dict)
    parent: Optional["_Scope"] = None
    #: output aliases of the SELECT list, visible to GROUP BY / HAVING /
    #: ORDER BY (the executor resolves them the same way).
    aliases: dict[str, Optional[DataType]] = field(default_factory=dict)

    @property
    def has_unknown(self) -> bool:
        return any(b.columns is None for b in self.bindings.values())


@dataclass
class _SelectInfo:
    """What a subquery exposes to its consumer."""

    #: (output name, type) per item; ``None`` when a ``*`` item makes the
    #: output width unknowable without execution.
    columns: Optional[list[tuple[str, Optional[DataType]]]]

    @property
    def width(self) -> Optional[int]:
        return None if self.columns is None else len(self.columns)


class SqlAnalyzer:
    """Analyze parsed statements against a schema catalog.

    ``catalog=None`` runs only schema-independent checks (useful for
    linting SQL files with no database at hand).
    """

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self._catalog = catalog
        #: WITH-clause scope frames (innermost last): lower-cased CTE
        #: name -> output columns, or None when unknowable (SELECT *).
        self._cte_frames: list[
            dict[str, Optional[dict[str, Optional[DataType]]]]
        ] = []

    # -- public API --------------------------------------------------------

    def analyze_sql(self, sql: str) -> list[Diagnostic]:
        """Parse and analyze; syntax errors become ``SQL000`` findings."""
        try:
            statement = parse_sql(sql)
        except SqlSyntaxError as exc:
            return [
                diagnostic(
                    "SQL000",
                    str(exc),
                    subject=sql.strip()[:80],
                    hint="the SQL could not be parsed at all",
                )
            ]
        return self.analyze(statement)

    def analyze(self, statement: nodes.Statement) -> list[Diagnostic]:
        """Analyze one parsed statement, returning all findings."""
        diags: list[Diagnostic] = []
        if isinstance(statement, nodes.Select):
            self._select(statement, None, diags)
        elif isinstance(statement, nodes.Insert):
            self._insert(statement, diags)
        elif isinstance(statement, nodes.Update):
            self._update(statement, diags)
        elif isinstance(statement, nodes.Delete):
            self._delete(statement, diags)
        elif isinstance(statement, nodes.CreateTable):
            self._create_table(statement, diags)
        elif isinstance(statement, nodes.CreateIndex):
            self._create_index(statement, diags)
        elif isinstance(statement, nodes.CreateView):
            self._select(statement.query, None, diags)
        elif isinstance(statement, nodes.Explain):
            self._select(statement.query, None, diags)
        elif isinstance(statement, (nodes.DropTable, nodes.DropView)):
            self._drop(statement, diags)
        # DropIndex / TransactionStatement: nothing to check statically.
        return diags

    # -- table resolution --------------------------------------------------

    def _table_columns(
        self, name: str
    ) -> Optional[dict[str, Optional[DataType]]]:
        if self._catalog is None:
            return None
        if not self._catalog.has_table(name):
            return None
        schema = self._catalog.table(name)
        return {c.name.lower(): c.data_type for c in schema.columns}

    def _known_table(self, name: str) -> bool:
        return self._catalog is not None and self._catalog.has_table(name)

    def _lookup_cte(
        self, name: str
    ) -> tuple[bool, Optional[dict[str, Optional[DataType]]]]:
        """(is a CTE in scope, its columns or None when unknowable)."""
        key = name.lower()
        for frame in reversed(self._cte_frames):
            if key in frame:
                return True, frame[key]
        return False, None

    def _collect_bindings(
        self,
        source: nodes.TableRef,
        scope: _Scope,
        conditions: list[nodes.Expression],
        diags: list[Diagnostic],
    ) -> None:
        if isinstance(source, nodes.NamedTable):
            is_cte, columns = self._lookup_cte(source.name)
            if not is_cte:
                columns = self._table_columns(source.name)
                if columns is None and self._catalog is not None:
                    diags.append(
                        diagnostic(
                            "SQL001",
                            f"unknown table {source.name!r}",
                            subject=source.name,
                            hint="known tables: "
                            + ", ".join(sorted(self._catalog.table_names())),
                        )
                    )
            self._bind(source.binding, columns, scope, diags)
        elif isinstance(source, nodes.SubqueryTable):
            info = self._select(source.subquery, scope.parent, diags)
            columns: Optional[dict[str, Optional[DataType]]]
            if info.columns is None:
                columns = None
            else:
                columns = {name.lower(): dtype for name, dtype in info.columns}
            self._bind(source.alias, columns, scope, diags)
        elif isinstance(source, nodes.Join):
            self._collect_bindings(source.left, scope, conditions, diags)
            self._collect_bindings(source.right, scope, conditions, diags)
            if source.join_type == "CROSS" or (
                source.condition is None and source.join_type != "CROSS"
            ):
                diags.append(
                    diagnostic(
                        "SQL011",
                        "join without a join condition multiplies every "
                        "row pair",
                        subject=source.to_sql()[:80],
                        hint="add an ON clause relating the two sides",
                    )
                )
            elif isinstance(source.condition, nodes.Literal):
                diags.append(
                    diagnostic(
                        "SQL011",
                        "constant join condition is effectively a "
                        "cartesian product",
                        subject=source.condition.to_sql(),
                    )
                )
            if source.condition is not None:
                conditions.append(source.condition)

    def _bind(
        self,
        binding: str,
        columns: Optional[dict[str, Optional[DataType]]],
        scope: _Scope,
        diags: list[Diagnostic],
    ) -> None:
        key = binding.lower()
        if key in scope.bindings:
            diags.append(
                diagnostic(
                    "SQL013",
                    f"duplicate table alias {binding!r} in FROM clause",
                    subject=binding,
                    hint="give each table a distinct alias",
                )
            )
            return
        scope.bindings[key] = _Binding(binding, columns)

    # -- column resolution -------------------------------------------------

    def _resolve_column(
        self,
        ref: nodes.ColumnRef,
        scope: Optional[_Scope],
        diags: list[Diagnostic],
        allow_aliases: bool = False,
    ) -> Optional[DataType]:
        if scope is None:
            return None
        if allow_aliases and ref.table is None:
            if ref.name.lower() in scope.aliases:
                return scope.aliases[ref.name.lower()]
        if ref.table is not None:
            level: Optional[_Scope] = scope
            while level is not None:
                binding = level.bindings.get(ref.table.lower())
                if binding is not None:
                    if binding.columns is None:
                        return None
                    if ref.name.lower() in binding.columns:
                        return binding.columns[ref.name.lower()]
                    diags.append(
                        diagnostic(
                            "SQL002",
                            f"table {binding.name!r} has no column "
                            f"{ref.name!r}",
                            subject=ref.to_sql(),
                            hint="columns: "
                            + ", ".join(sorted(binding.columns)),
                        )
                    )
                    return None
                level = level.parent
            if self._catalog is not None:
                diags.append(
                    diagnostic(
                        "SQL001",
                        f"{ref.table!r} is not a table or alias in scope",
                        subject=ref.to_sql(),
                    )
                )
            return None
        # Unqualified reference: search each scope level outwards.
        level = scope
        while level is not None:
            matches = [
                binding
                for binding in level.bindings.values()
                if binding.columns is not None
                and ref.name.lower() in binding.columns
            ]
            if len(matches) > 1:
                diags.append(
                    diagnostic(
                        "SQL003",
                        f"column {ref.name!r} is ambiguous: it exists in "
                        + " and ".join(
                            sorted(m.name for m in matches)
                        ),
                        subject=ref.name,
                        hint="qualify the column with its table or alias",
                    )
                )
                return None
            if len(matches) == 1:
                return matches[0].columns[ref.name.lower()]
            if level.has_unknown:
                # An unresolvable source could define this column; stay
                # silent rather than cascade a false positive.
                return None
            level = level.parent
        if self._catalog is not None:
            diags.append(
                diagnostic(
                    "SQL002",
                    f"column {ref.name!r} does not exist in any table "
                    "in scope",
                    subject=ref.name,
                )
            )
        return None

    # -- expression analysis -----------------------------------------------

    def _expr(
        self,
        expr: nodes.Expression,
        scope: Optional[_Scope],
        diags: list[Diagnostic],
        clause: str = "select",
        in_aggregate: bool = False,
        allow_aliases: bool = False,
    ) -> Optional[DataType]:
        """Type-check one expression tree, emitting findings as it goes."""
        recurse = lambda e, **kw: self._expr(  # noqa: E731
            e,
            scope,
            diags,
            clause=kw.get("clause", clause),
            in_aggregate=kw.get("in_aggregate", in_aggregate),
            allow_aliases=allow_aliases,
        )
        if isinstance(expr, nodes.Literal):
            return None if expr.value is None else infer_type(expr.value)
        if isinstance(expr, nodes.Parameter):
            return None
        if isinstance(expr, nodes.ColumnRef):
            return self._resolve_column(expr, scope, diags, allow_aliases)
        if isinstance(expr, nodes.Star):
            if (
                expr.table is not None
                and scope is not None
                and self._catalog is not None
            ):
                level: Optional[_Scope] = scope
                found = False
                while level is not None:
                    if expr.table.lower() in level.bindings:
                        found = True
                        break
                    level = level.parent
                if not found:
                    diags.append(
                        diagnostic(
                            "SQL001",
                            f"{expr.table!r} is not a table or alias in "
                            "scope",
                            subject=expr.to_sql(),
                        )
                    )
            return None
        if isinstance(expr, nodes.UnaryOp):
            operand = recurse(expr.operand)
            if expr.op in ("-", "+"):
                if operand in (DataType.TEXT, DataType.DATE):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"unary {expr.op!r} applied to "
                            f"{operand.value} operand",
                            subject=expr.to_sql()[:80],
                        )
                    )
                return operand
            return DataType.BOOLEAN  # NOT
        if isinstance(expr, nodes.BinaryOp):
            return self._binary(expr, scope, diags, clause, in_aggregate,
                                allow_aliases)
        if isinstance(expr, nodes.IsNull):
            recurse(expr.operand)
            return DataType.BOOLEAN
        if isinstance(expr, nodes.Like):
            operand = recurse(expr.operand)
            pattern = recurse(expr.pattern)
            for side, label in ((operand, "operand"), (pattern, "pattern")):
                if side in (DataType.INTEGER, DataType.REAL, DataType.DATE):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"LIKE {label} has type {side.value}, "
                            "expected TEXT",
                            subject=expr.to_sql()[:80],
                        )
                    )
            return DataType.BOOLEAN
        if isinstance(expr, nodes.Between):
            operand = recurse(expr.operand)
            for bound in (expr.low, expr.high):
                bound_type = recurse(bound)
                if not _comparable(operand, bound_type):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"BETWEEN bound of type {bound_type.value} is "
                            f"not comparable to {operand.value} operand",
                            subject=expr.to_sql()[:80],
                        )
                    )
            return DataType.BOOLEAN
        if isinstance(expr, nodes.InList):
            operand = recurse(expr.operand)
            for item in expr.items:
                item_type = recurse(item)
                if not _comparable(operand, item_type):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"IN list item of type {item_type.value} is "
                            f"not comparable to {operand.value} operand",
                            subject=item.to_sql()[:80],
                        )
                    )
            return DataType.BOOLEAN
        if isinstance(expr, nodes.InSubquery):
            recurse(expr.operand)
            info = self._select(expr.subquery, scope, diags)
            if info.width is not None and info.width != 1:
                diags.append(
                    diagnostic(
                        "SQL015",
                        f"IN subquery returns {info.width} columns, "
                        "expected exactly 1",
                        subject=expr.subquery.to_sql()[:80],
                    )
                )
            return DataType.BOOLEAN
        if isinstance(expr, nodes.Exists):
            self._select(expr.subquery, scope, diags)
            return DataType.BOOLEAN
        if isinstance(expr, nodes.ScalarSubquery):
            info = self._select(expr.subquery, scope, diags)
            if info.width is not None and info.width != 1:
                diags.append(
                    diagnostic(
                        "SQL015",
                        f"scalar subquery returns {info.width} columns, "
                        "expected exactly 1",
                        subject=expr.subquery.to_sql()[:80],
                    )
                )
                return None
            if info.columns:
                return info.columns[0][1]
            return None
        if isinstance(expr, nodes.FunctionCall):
            return self._function(expr, scope, diags, clause, in_aggregate,
                                  allow_aliases)
        if isinstance(expr, nodes.Case):
            result_type: Optional[DataType] = None
            for condition, result in expr.branches:
                recurse(condition)
                branch_type = recurse(result)
                if result_type is None:
                    result_type = branch_type
            if expr.default is not None:
                default_type = recurse(expr.default)
                if result_type is None:
                    result_type = default_type
            return result_type
        if isinstance(expr, nodes.Cast):
            recurse(expr.operand)
            try:
                return DataType.from_name(expr.type_name)
            except TypeCheckError:
                diags.append(
                    diagnostic(
                        "SQL004",
                        f"CAST to unknown type {expr.type_name!r}",
                        subject=expr.to_sql()[:80],
                    )
                )
                return None
        return None

    def _binary(
        self,
        expr: nodes.BinaryOp,
        scope: Optional[_Scope],
        diags: list[Diagnostic],
        clause: str,
        in_aggregate: bool,
        allow_aliases: bool,
    ) -> Optional[DataType]:
        left = self._expr(expr.left, scope, diags, clause, in_aggregate,
                          allow_aliases)
        right = self._expr(expr.right, scope, diags, clause, in_aggregate,
                           allow_aliases)
        op = expr.op.upper()
        if op in ("AND", "OR"):
            for side in (left, right):
                if side is not None and side is not DataType.BOOLEAN:
                    diags.append(
                        diagnostic(
                            "SQL014",
                            f"{op} operand has type {side.value}, "
                            "expected a boolean condition",
                            subject=expr.to_sql()[:80],
                        )
                    )
            return DataType.BOOLEAN
        if op in ("=", "<>", "!=", "<", ">", "<=", ">="):
            if not _comparable(left, right):
                diags.append(
                    diagnostic(
                        "SQL004",
                        f"cannot compare {left.value} with {right.value}",
                        subject=expr.to_sql()[:80],
                        hint="cast one side or fix the column reference",
                    )
                )
            return DataType.BOOLEAN
        if op == "||":
            return DataType.TEXT
        if op in ("+", "-", "*", "/", "%"):
            for side in (left, right):
                if side in (DataType.TEXT, DataType.DATE):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"arithmetic {expr.op!r} on {side.value} "
                            "operand",
                            subject=expr.to_sql()[:80],
                        )
                    )
            if DataType.REAL in (left, right) or op == "/":
                return DataType.REAL
            if left is None and right is None:
                return None
            return DataType.INTEGER
        return None

    def _function(
        self,
        expr: nodes.FunctionCall,
        scope: Optional[_Scope],
        diags: list[Diagnostic],
        clause: str,
        in_aggregate: bool,
        allow_aliases: bool,
    ) -> Optional[DataType]:
        name = expr.name.upper()
        is_aggregate = is_aggregate_function(name)
        if is_aggregate:
            if in_aggregate:
                diags.append(
                    diagnostic(
                        "SQL008",
                        f"aggregate {name} nested inside another aggregate",
                        subject=expr.to_sql()[:80],
                        hint="compute the inner aggregate in a subquery",
                    )
                )
            if clause == "where":
                diags.append(
                    diagnostic(
                        "SQL007",
                        f"aggregate {name} is not allowed in WHERE",
                        subject=expr.to_sql()[:80],
                        hint="move the condition to a HAVING clause",
                    )
                )
            star_count = isinstance(expr.args[0], nodes.Star) if expr.args else False
            max_args = 2 if name == "GROUP_CONCAT" else 1
            if not (name == "COUNT" and star_count) and not (
                1 <= len(expr.args) <= max_args
            ):
                diags.append(
                    diagnostic(
                        "SQL006",
                        f"{name} takes 1 argument, got {len(expr.args)}",
                        subject=expr.to_sql()[:80],
                    )
                )
            arg_types = [
                self._expr(arg, scope, diags, clause, True, allow_aliases)
                for arg in expr.args
            ]
            if name in _NUMERIC_ARG_FUNCTIONS:
                for arg, arg_type in zip(expr.args, arg_types):
                    if arg_type in (DataType.TEXT, DataType.DATE):
                        diags.append(
                            diagnostic(
                                "SQL004",
                                f"{name} argument has type "
                                f"{arg_type.value}, expected a number",
                                subject=arg.to_sql()[:80],
                            )
                        )
            if name in _INTEGER_RESULT:
                return DataType.INTEGER
            if name in _REAL_RESULT:
                return DataType.REAL
            if name in _TEXT_RESULT:
                return DataType.TEXT
            return arg_types[0] if arg_types else None  # SUM/MIN/MAX
        if not is_scalar_function(name):
            diags.append(
                diagnostic(
                    "SQL005",
                    f"unknown function {name}",
                    subject=expr.to_sql()[:80],
                )
            )
            for arg in expr.args:
                self._expr(arg, scope, diags, clause, in_aggregate,
                           allow_aliases)
            return None
        low, high = _SCALAR_ARITY.get(name, (0, None))
        if len(expr.args) < low or (high is not None and len(expr.args) > high):
            expected = (
                str(low) if high == low
                else f"{low}..{high if high is not None else 'n'}"
            )
            diags.append(
                diagnostic(
                    "SQL006",
                    f"{name} takes {expected} arguments, "
                    f"got {len(expr.args)}",
                    subject=expr.to_sql()[:80],
                )
            )
        arg_types = [
            self._expr(arg, scope, diags, clause, in_aggregate, allow_aliases)
            for arg in expr.args
        ]
        if name in _NUMERIC_ARG_FUNCTIONS:
            for arg, arg_type in zip(expr.args, arg_types):
                if arg_type in (DataType.TEXT, DataType.DATE):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"{name} argument has type {arg_type.value}, "
                            "expected a number",
                            subject=arg.to_sql()[:80],
                        )
                    )
        if name in _TEXT_RESULT:
            return DataType.TEXT
        if name in _INTEGER_RESULT:
            return DataType.INTEGER
        if name in _REAL_RESULT:
            return DataType.REAL
        if name == "DATE":
            return DataType.DATE
        if name in ("COALESCE", "NULLIF", "IFNULL", "MIN2", "MAX2", "ABS"):
            return arg_types[0] if arg_types else None
        return None

    # -- SELECT ------------------------------------------------------------

    def _select(
        self,
        select: nodes.Select,
        parent: Optional[_Scope],
        diags: list[Diagnostic],
    ) -> _SelectInfo:
        if select.ctes:
            self._cte_frames.append({})
            try:
                self._analyze_ctes(select, parent, diags)
                return self._select_body(select, parent, diags)
            finally:
                self._cte_frames.pop()
        return self._select_body(select, parent, diags)

    def _analyze_ctes(
        self,
        select: nodes.Select,
        parent: Optional[_Scope],
        diags: list[Diagnostic],
    ) -> None:
        frame = self._cte_frames[-1]
        for cte in select.ctes:
            key = cte.name.lower()
            if key in frame:
                diags.append(
                    diagnostic(
                        "SQL016",
                        f"duplicate CTE name {cte.name!r} in WITH clause",
                        subject=cte.name,
                        hint="give each CTE a distinct name",
                    )
                )
            info = self._select(cte.query, parent, diags)
            columns: Optional[dict[str, Optional[DataType]]]
            if info.columns is None:
                columns = None
            else:
                columns = {name.lower(): dtype for name, dtype in info.columns}
            if cte.columns:
                if info.width is not None and len(cte.columns) != info.width:
                    diags.append(
                        diagnostic(
                            "SQL017",
                            f"CTE {cte.name!r} declares "
                            f"{len(cte.columns)} columns but its query "
                            f"returns {info.width}",
                            subject=cte.name,
                        )
                    )
                types = (
                    [dtype for _name, dtype in info.columns]
                    if info.columns is not None
                    and len(info.columns) == len(cte.columns)
                    else [None] * len(cte.columns)
                )
                columns = {
                    name.lower(): dtype
                    for name, dtype in zip(cte.columns, types)
                }
            frame[key] = columns

    def _select_body(
        self,
        select: nodes.Select,
        parent: Optional[_Scope],
        diags: list[Diagnostic],
    ) -> _SelectInfo:
        scope = _Scope(parent=parent)
        conditions: list[nodes.Expression] = []
        if select.source is not None:
            self._collect_bindings(select.source, scope, conditions, diags)
        for condition in conditions:
            cond_type = self._expr(condition, scope, diags, clause="on")
            self._check_predicate(cond_type, condition, "ON", diags)

        # Select list: types, output names, SELECT * smell.
        output: Optional[list[tuple[str, Optional[DataType]]]] = []
        for item in select.items:
            if isinstance(item.expression, nodes.Star):
                diags.append(
                    diagnostic(
                        "SQL010",
                        "SELECT * hides schema changes and widens results",
                        subject=item.expression.to_sql(),
                        hint="name the columns you need",
                    )
                )
                self._expr(item.expression, scope, diags)
                output = None
                continue
            item_type = self._expr(item.expression, scope, diags)
            if output is not None:
                output.append((item.output_name, item_type))
            if item.alias:
                scope.aliases[item.alias.lower()] = item_type

        if select.where is not None:
            where_type = self._expr(select.where, scope, diags,
                                    clause="where")
            self._check_predicate(where_type, select.where, "WHERE", diags)
        for expr in select.group_by:
            resolved = self._output_reference(expr, select.items)
            if resolved is not None:
                self._expr(resolved, scope, diags, clause="group",
                           allow_aliases=True)
        if select.having is not None:
            having_type = self._expr(select.having, scope, diags,
                                     clause="having", allow_aliases=True)
            self._check_predicate(having_type, select.having, "HAVING", diags)
        for order in select.order_by:
            resolved = self._output_reference(order.expression, select.items)
            if resolved is not None:
                self._expr(resolved, scope, diags, clause="order",
                           allow_aliases=True)
        for bound in (select.limit, select.offset):
            if bound is not None:
                self._expr(bound, scope, diags, clause="limit")

        self._check_grouping(select, diags)

        info = _SelectInfo(columns=output)
        for op, query in select.compound:
            other = self._select(query, parent, diags)
            if (
                info.width is not None
                and other.width is not None
                and info.width != other.width
            ):
                diags.append(
                    diagnostic(
                        "SQL015",
                        f"{op} operands have different widths: "
                        f"{info.width} vs {other.width} columns",
                        subject=query.to_sql()[:80],
                    )
                )
        return info

    def _check_predicate(
        self,
        predicate_type: Optional[DataType],
        expr: nodes.Expression,
        clause: str,
        diags: list[Diagnostic],
    ) -> None:
        if predicate_type is not None and predicate_type is not DataType.BOOLEAN:
            diags.append(
                diagnostic(
                    "SQL014",
                    f"{clause} condition has type {predicate_type.value}, "
                    "expected a boolean",
                    subject=expr.to_sql()[:80],
                )
            )

    @staticmethod
    def _output_reference(
        expr: nodes.Expression, items: tuple[nodes.SelectItem, ...]
    ) -> Optional[nodes.Expression]:
        """Mirror the executor: aliases/ordinals refer to select items.

        Returns ``None`` when the reference maps to a select item (that
        item is analyzed in its own right), else the expression itself.
        """
        if isinstance(expr, nodes.Literal) and isinstance(expr.value, int):
            if 1 <= expr.value <= len(items):
                return None
        if isinstance(expr, nodes.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    return None
        return expr

    # -- aggregation rules -------------------------------------------------

    def _check_grouping(
        self, select: nodes.Select, diags: list[Diagnostic]
    ) -> None:
        has_aggregates = any(
            _contains_aggregate(item.expression)
            for item in select.items
            if not isinstance(item.expression, nodes.Star)
        ) or (select.having is not None and _contains_aggregate(select.having))
        if not select.group_by and not has_aggregates:
            return
        keys: set[str] = set()
        for expr in select.group_by:
            resolved = expr
            # Alias/ordinal group keys cover the matching select item.
            if isinstance(expr, nodes.Literal) and isinstance(expr.value, int):
                if 1 <= expr.value <= len(select.items):
                    item = select.items[expr.value - 1]
                    resolved = item.expression
                    if item.alias:
                        keys.add(item.alias.lower())
            if isinstance(expr, nodes.ColumnRef) and expr.table is None:
                for item in select.items:
                    if item.alias and item.alias.lower() == expr.name.lower():
                        resolved = item.expression
                        keys.add(item.alias.lower())
            keys.add(resolved.to_sql().lower())
            if isinstance(resolved, nodes.ColumnRef):
                keys.add(resolved.name.lower())
        for item in select.items:
            subject = item.to_sql()
            if item.alias and item.alias.lower() in keys:
                continue
            self._check_grouped(item.expression, keys, subject, diags)
        if select.having is not None:
            self._check_grouped(
                select.having, keys, select.having.to_sql()[:80], diags
            )

    def _check_grouped(
        self,
        expr: nodes.Expression,
        keys: set[str],
        subject: str,
        diags: list[Diagnostic],
    ) -> None:
        if expr.to_sql().lower() in keys:
            return
        if isinstance(expr, nodes.ColumnRef):
            if expr.name.lower() in keys:
                return
            diags.append(
                diagnostic(
                    "SQL009",
                    f"column {expr.to_sql()!r} is neither grouped nor "
                    "aggregated",
                    subject=subject[:80],
                    hint="add it to GROUP BY or wrap it in an aggregate",
                )
            )
            return
        if isinstance(expr, nodes.Star):
            diags.append(
                diagnostic(
                    "SQL009",
                    "* selects ungrouped columns in a grouped query",
                    subject=subject[:80],
                )
            )
            return
        if isinstance(expr, nodes.FunctionCall) and is_aggregate_function(
            expr.name
        ):
            return  # everything inside an aggregate is fine
        for child in _children(expr):
            self._check_grouped(child, keys, subject, diags)

    # -- DML / DDL ---------------------------------------------------------

    def _require_table(
        self, name: str, diags: list[Diagnostic]
    ) -> Optional[dict[str, Optional[DataType]]]:
        columns = self._table_columns(name)
        if columns is None and self._catalog is not None:
            diags.append(
                diagnostic(
                    "SQL001",
                    f"unknown table {name!r}",
                    subject=name,
                    hint="known tables: "
                    + ", ".join(sorted(self._catalog.table_names())),
                )
            )
        return columns

    def _table_scope(
        self, name: str, columns: Optional[dict[str, Optional[DataType]]]
    ) -> _Scope:
        scope = _Scope()
        scope.bindings[name.lower()] = _Binding(name, columns)
        return scope

    def _insert(self, stmt: nodes.Insert, diags: list[Diagnostic]) -> None:
        columns = self._require_table(stmt.table, diags)
        width: Optional[int] = None
        column_types: list[Optional[DataType]] = []
        if stmt.columns:
            width = len(stmt.columns)
            for column in stmt.columns:
                if columns is not None and column.lower() not in columns:
                    diags.append(
                        diagnostic(
                            "SQL002",
                            f"table {stmt.table!r} has no column "
                            f"{column!r}",
                            subject=column,
                        )
                    )
                    column_types.append(None)
                else:
                    column_types.append(
                        columns.get(column.lower()) if columns else None
                    )
            if len({c.lower() for c in stmt.columns}) != len(stmt.columns):
                diags.append(
                    diagnostic(
                        "SQL013",
                        "duplicate column in INSERT column list",
                        subject=", ".join(stmt.columns),
                    )
                )
        elif columns is not None:
            width = len(columns)
            column_types = list(columns.values())
        scope = _Scope()
        for row in stmt.rows:
            if width is not None and len(row) != width:
                diags.append(
                    diagnostic(
                        "SQL012",
                        f"INSERT row has {len(row)} values, expected "
                        f"{width}",
                        subject="(" + ", ".join(v.to_sql() for v in row)[:70]
                        + ")",
                    )
                )
                continue
            for value, expected in zip(row, column_types):
                value_type = self._expr(value, scope, diags)
                if not _comparable(value_type, expected):
                    diags.append(
                        diagnostic(
                            "SQL004",
                            f"INSERT value of type {value_type.value} "
                            f"into {expected.value} column",
                            subject=value.to_sql()[:80],
                        )
                    )
        if stmt.query is not None:
            info = self._select(stmt.query, None, diags)
            if (
                width is not None
                and info.width is not None
                and info.width != width
            ):
                diags.append(
                    diagnostic(
                        "SQL012",
                        f"INSERT ... SELECT provides {info.width} columns, "
                        f"expected {width}",
                        subject=stmt.query.to_sql()[:80],
                    )
                )

    def _update(self, stmt: nodes.Update, diags: list[Diagnostic]) -> None:
        columns = self._require_table(stmt.table, diags)
        scope = self._table_scope(stmt.table, columns)
        for column, value in stmt.assignments:
            expected: Optional[DataType] = None
            if columns is not None:
                if column.lower() not in columns:
                    diags.append(
                        diagnostic(
                            "SQL002",
                            f"table {stmt.table!r} has no column "
                            f"{column!r}",
                            subject=column,
                        )
                    )
                else:
                    expected = columns[column.lower()]
            value_type = self._expr(value, scope, diags)
            if not _comparable(value_type, expected):
                diags.append(
                    diagnostic(
                        "SQL004",
                        f"assignment of {value_type.value} value to "
                        f"{expected.value} column {column!r}",
                        subject=value.to_sql()[:80],
                    )
                )
        if stmt.where is not None:
            where_type = self._expr(stmt.where, scope, diags, clause="where")
            self._check_predicate(where_type, stmt.where, "WHERE", diags)

    def _delete(self, stmt: nodes.Delete, diags: list[Diagnostic]) -> None:
        columns = self._require_table(stmt.table, diags)
        if stmt.where is not None:
            scope = self._table_scope(stmt.table, columns)
            where_type = self._expr(stmt.where, scope, diags, clause="where")
            self._check_predicate(where_type, stmt.where, "WHERE", diags)

    def _create_table(
        self, stmt: nodes.CreateTable, diags: list[Diagnostic]
    ) -> None:
        seen: set[str] = set()
        for column in stmt.columns:
            if column.name.lower() in seen:
                diags.append(
                    diagnostic(
                        "SQL013",
                        f"duplicate column {column.name!r} in CREATE TABLE",
                        subject=column.name,
                    )
                )
            seen.add(column.name.lower())
            try:
                DataType.from_name(column.type_name)
            except TypeCheckError:
                diags.append(
                    diagnostic(
                        "SQL004",
                        f"unknown column type {column.type_name!r}",
                        subject=f"{column.name} {column.type_name}",
                    )
                )

    def _create_index(
        self, stmt: nodes.CreateIndex, diags: list[Diagnostic]
    ) -> None:
        columns = self._require_table(stmt.table, diags)
        if columns is None:
            return
        for column in stmt.columns:
            if column.lower() not in columns:
                diags.append(
                    diagnostic(
                        "SQL002",
                        f"table {stmt.table!r} has no column {column!r}",
                        subject=column,
                    )
                )

    def _drop(self, stmt, diags: list[Diagnostic]) -> None:
        if getattr(stmt, "if_exists", False):
            return
        if self._catalog is not None and not self._catalog.has_table(
            stmt.name
        ):
            diags.append(
                diagnostic(
                    "SQL001",
                    f"unknown table or view {stmt.name!r}",
                    subject=stmt.name,
                    hint="add IF EXISTS to make the drop idempotent",
                )
            )


def analyze_sql(sql: str, catalog: Optional[Catalog] = None) -> list[Diagnostic]:
    """Convenience wrapper: parse + analyze one statement."""
    return SqlAnalyzer(catalog).analyze_sql(sql)


def analyze_statement(
    statement: nodes.Statement, catalog: Optional[Catalog] = None
) -> list[Diagnostic]:
    """Convenience wrapper: analyze an already-parsed statement."""
    return SqlAnalyzer(catalog).analyze(statement)
