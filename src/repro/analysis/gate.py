"""Pre-execution validation gate for model-generated SQL.

Applications call :func:`gate_sql` between generation and execution:
the draft is analyzed against the data source's schema, and on
error-severity findings the diagnostics are fed back to the model for
one bounded repair attempt (the adaptive feedback loop from the paper).
SQL that still fails is rejected with structured diagnostics — it is
never executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.diagnostics import Diagnostic, has_errors
from repro.analysis.sql_analyzer import SqlAnalyzer
from repro.obs.metrics import get_registry
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.errors import TypeCheckError
from repro.sqlengine.types import DataType


def catalog_for_source(source: Any) -> Catalog:
    """A :class:`Catalog` describing ``source``'s schema.

    Engine-backed sources expose their real catalog; every other
    connector is reconstructed from its :class:`TableInfo` metadata.
    """
    database = getattr(source, "database", None)
    catalog = getattr(database, "catalog", None)
    if isinstance(catalog, Catalog):
        return catalog
    rebuilt = Catalog()
    for info in source.tables():
        columns = []
        for name, type_name in zip(info.columns, info.column_types):
            try:
                data_type = DataType.from_name(type_name)
            except TypeCheckError:
                data_type = DataType.TEXT
            columns.append(ColumnSchema(name, data_type))
        rebuilt.create_table(TableSchema(info.name, columns))
    return rebuilt


def _count_diagnostics(diagnostics: list[Diagnostic]) -> None:
    """Publish one ``analysis_diagnostics_total`` sample per finding."""
    counter = get_registry().counter(
        "analysis_diagnostics_total", "analyzer findings by code"
    )
    for item in diagnostics:
        counter.inc(code=item.code, severity=item.severity.value)


@dataclass
class GateResult:
    """Outcome of one pass through the validation gate."""

    sql: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    ok: bool = True
    repaired: bool = False
    attempts: int = 0

    def diagnostics_payload(self) -> list[dict[str, Any]]:
        """JSON-friendly diagnostics for ``AppResponse.metadata``."""
        return [d.to_dict() for d in self.diagnostics]

    def error_summary(self) -> str:
        return "; ".join(
            d.render() for d in self.diagnostics if d.severity.value == "error"
        )


def review_sql(
    sql: str,
    source: Any = None,
    catalog: Optional[Catalog] = None,
) -> list[Diagnostic]:
    """Analyze one statement against a source's (or explicit) catalog."""
    if catalog is None and source is not None:
        catalog = catalog_for_source(source)
    diagnostics = SqlAnalyzer(catalog).analyze_sql(sql)
    _count_diagnostics(diagnostics)
    return diagnostics


def gate_sql(
    client: Any,
    model: str,
    source: Any,
    question: str,
    sql: str,
    max_repairs: int = 1,
) -> GateResult:
    """Validate ``sql``; on errors, retry through the model at most
    ``max_repairs`` times with the diagnostics as feedback.

    For engine-backed sources the verdict is served from the SQL cache
    tier: gating is a deterministic function of the statement, the
    schema and the (cached) model, so a repeated question skips
    re-analysis. The key embeds the database's data version — any DDL
    retires cached verdicts. Callers must treat the result as
    read-only (they already do: diagnostics are exported via
    :meth:`GateResult.diagnostics_payload`, which copies).
    """
    from repro.cache.manager import get_cache_manager

    database = getattr(source, "database", None)
    manager = get_cache_manager()
    if database is None or not manager.enabled("sql"):
        return _gate_uncached(
            client, model, source, question, sql, max_repairs
        )
    key = (
        "gate",
        database._cache_token,
        database.data_version,
        model,
        int(max_repairs),
        question,
        sql,
    )
    return manager.cached(
        "sql",
        key,
        lambda: _gate_uncached(
            client, model, source, question, sql, max_repairs
        ),
        database=database.name,
    )


def _gate_uncached(
    client: Any,
    model: str,
    source: Any,
    question: str,
    sql: str,
    max_repairs: int,
) -> GateResult:
    """One real pass through analysis and bounded repair."""
    from repro.llm.prompts import build_sql_repair_prompt
    from repro.smmf.client import ClientError

    outcomes = get_registry().counter(
        "analysis_gate_total", "pre-execution gate outcomes"
    )
    catalog = catalog_for_source(source)
    analyzer = SqlAnalyzer(catalog)
    diagnostics = analyzer.analyze_sql(sql)
    _count_diagnostics(diagnostics)
    if not has_errors(diagnostics):
        outcomes.inc(outcome="clean")
        return GateResult(sql, diagnostics)
    attempts = 0
    for _ in range(max_repairs):
        attempts += 1
        prompt = build_sql_repair_prompt(
            source,
            question,
            sql,
            [d.render() for d in diagnostics],
        )
        try:
            candidate = client.generate(model, prompt, task="text2sql")
        except ClientError:
            break
        candidate_diags = analyzer.analyze_sql(candidate)
        _count_diagnostics(candidate_diags)
        if not has_errors(candidate_diags):
            outcomes.inc(outcome="repaired")
            return GateResult(
                candidate,
                candidate_diags,
                ok=True,
                repaired=True,
                attempts=attempts,
            )
        sql, diagnostics = candidate, candidate_diags
    outcomes.inc(outcome="rejected")
    return GateResult(
        sql, diagnostics, ok=False, repaired=False, attempts=attempts
    )
