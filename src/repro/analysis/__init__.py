"""Static analysis: semantic SQL checks, AWEL linting, execution gates.

The missing correctness layer between model output and execution:

- :mod:`repro.analysis.sql_analyzer` resolves every table/column in a
  parsed statement against the schema catalog, type-checks expressions
  and enforces aggregation rules.
- :mod:`repro.analysis.awel_linter` extends ``DAG.validate()`` with
  reachability, arity and stream/batch mode checks.
- :mod:`repro.analysis.gate` wires the analyzer in front of execution
  with one bounded, diagnostics-guided repair retry through the model.
- ``python -m repro.cli lint`` runs both analyzers over SQL files and
  AWEL flow modules.

All findings are :class:`Diagnostic` objects with stable codes
(``SQL001 unknown-table``, ``AWEL006 mode-mismatch``, ...) documented
in README.md.
"""

from repro.analysis.awel_linter import lint_dag
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    Severity,
    diagnostic,
    has_errors,
    max_severity,
)
from repro.analysis.gate import (
    GateResult,
    catalog_for_source,
    gate_sql,
    review_sql,
)
from repro.analysis.sql_analyzer import (
    SqlAnalyzer,
    analyze_sql,
    analyze_statement,
)

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "GateResult",
    "Severity",
    "SqlAnalyzer",
    "analyze_sql",
    "analyze_statement",
    "catalog_for_source",
    "diagnostic",
    "gate_sql",
    "has_errors",
    "lint_dag",
    "max_severity",
    "review_sql",
]
