"""Structured diagnostics shared by the SQL analyzer and AWEL linter.

Every finding is a :class:`Diagnostic` with a stable code (``SQL002``,
``AWEL006``), a severity, and the offending fragment, so applications,
benchmarks and the ``repro lint`` CLI can all consume the same objects.
Codes are registered centrally in :data:`DIAGNOSTIC_CODES`; emitting an
unregistered code is a programming error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` blocks the pre-execution gate."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


#: code -> (default severity, short name). The short name is the
#: kebab-case label used in docs and CLI output.
DIAGNOSTIC_CODES: dict[str, tuple[Severity, str]] = {
    # --- SQL: syntax and semantic resolution -----------------------------
    "SQL000": (Severity.ERROR, "syntax-error"),
    "SQL001": (Severity.ERROR, "unknown-table"),
    "SQL002": (Severity.ERROR, "unknown-column"),
    "SQL003": (Severity.ERROR, "ambiguous-column"),
    "SQL004": (Severity.ERROR, "type-mismatch"),
    "SQL005": (Severity.ERROR, "unknown-function"),
    "SQL006": (Severity.ERROR, "function-arity"),
    # --- SQL: aggregation rules ------------------------------------------
    "SQL007": (Severity.ERROR, "aggregate-in-where"),
    "SQL008": (Severity.ERROR, "nested-aggregate"),
    "SQL009": (Severity.ERROR, "ungrouped-column"),
    # --- SQL: lint-grade smells ------------------------------------------
    "SQL010": (Severity.WARNING, "select-star"),
    "SQL011": (Severity.WARNING, "cartesian-join"),
    "SQL012": (Severity.ERROR, "insert-arity"),
    "SQL013": (Severity.ERROR, "duplicate-alias"),
    "SQL014": (Severity.WARNING, "non-boolean-predicate"),
    "SQL015": (Severity.ERROR, "set-op-arity"),
    "SQL016": (Severity.ERROR, "duplicate-cte"),
    "SQL017": (Severity.ERROR, "cte-column-arity"),
    # --- AWEL workflow graphs --------------------------------------------
    "AWEL001": (Severity.ERROR, "cycle"),
    "AWEL002": (Severity.ERROR, "orphan-node"),
    "AWEL003": (Severity.ERROR, "unreachable-operator"),
    "AWEL004": (Severity.WARNING, "dangling-output"),
    "AWEL005": (Severity.WARNING, "multi-root"),
    "AWEL006": (Severity.ERROR, "mode-mismatch"),
    "AWEL007": (Severity.ERROR, "input-arity"),
    # --- staticcheck: framework ------------------------------------------
    "STC000": (Severity.WARNING, "unparsable-file"),
    # --- staticcheck: lock discipline ------------------------------------
    "LCK001": (Severity.ERROR, "lock-order-cycle"),
    "LCK002": (Severity.ERROR, "mixed-guard-write"),
    "LCK003": (Severity.WARNING, "unguarded-read"),
    "LCK004": (Severity.ERROR, "locked-helper-without-lock"),
    # --- staticcheck: async hygiene --------------------------------------
    "ASY001": (Severity.ERROR, "blocking-call-in-async"),
    "ASY002": (Severity.ERROR, "unbounded-queue-get-in-async"),
    "ASY003": (Severity.ERROR, "blocking-sync-primitive-in-async"),
    # --- staticcheck: determinism ----------------------------------------
    "DET001": (Severity.ERROR, "wall-clock-call"),
    "DET002": (Severity.ERROR, "ambient-random-call"),
    "DET003": (Severity.ERROR, "unseeded-rng"),
    "DET004": (Severity.ERROR, "raw-timing-call"),
    # --- staticcheck: observability conventions --------------------------
    "OBS001": (Severity.ERROR, "span-not-context-managed"),
    "OBS002": (Severity.ERROR, "counter-name-suffix"),
    "OBS003": (Severity.ERROR, "unknown-metric-prefix"),
    "OBS004": (Severity.WARNING, "histogram-unit-suffix"),
    # --- staticcheck: configuration parity -------------------------------
    "CFG001": (Severity.WARNING, "dead-config-field"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer or linter finding."""

    code: str
    message: str
    severity: Severity
    #: "sql" or "awel" — which analyzer produced the finding.
    source: str = "sql"
    #: The offending fragment: a rendered expression, node id, ...
    subject: str = ""
    #: Optional remediation advice shown to users and repair prompts.
    hint: str = ""

    @property
    def name(self) -> str:
        """The registered kebab-case label for this code."""
        registered = DIAGNOSTIC_CODES.get(self.code)
        return registered[1] if registered else "unregistered"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering attached to ``AppResponse.metadata``."""
        payload: dict[str, Any] = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.subject:
            payload["subject"] = self.subject
        if self.hint:
            payload["hint"] = self.hint
        return payload

    def render(self) -> str:
        """One-line human rendering used by the CLI and repair prompts."""
        subject = f" [{self.subject}]" if self.subject else ""
        return (
            f"{self.code} {self.severity.value} ({self.name}): "
            f"{self.message}{subject}"
        )


def diagnostic(
    code: str,
    message: str,
    *,
    source: str = "sql",
    subject: str = "",
    hint: str = "",
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic with the code's registered default severity."""
    if code not in DIAGNOSTIC_CODES:
        raise ValueError(f"unregistered diagnostic code: {code!r}")
    default_severity, _name = DIAGNOSTIC_CODES[code]
    return Diagnostic(
        code=code,
        message=message,
        severity=severity or default_severity,
        source=source,
        subject=subject,
        hint=hint,
    )


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The worst severity present, or ``None`` for a clean report."""
    worst: Optional[Severity] = None
    for item in diagnostics:
        if worst is None or item.severity > worst:
            worst = item.severity
    return worst


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)
