"""Static checks over AWEL workflow graphs.

``DAG.validate()`` rejects cycles and orphan nodes; this linter goes
further and reports *why* a graph will misbehave before a single
operator runs: unreachable operators stuck behind a cycle, stream
outputs nobody materializes, operators whose input arity can never be
satisfied, and stream operators wired to batch upstreams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.awel.operators import (
    BranchOperator,
    InputOperator,
    MapOperator,
    ReduceOperator,
    StreamFilterOperator,
    StreamMapOperator,
    StreamifyOperator,
    UnstreamifyOperator,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.awel.dag import DAG

#: Operators whose output is a lazy stream.
_STREAM_PRODUCERS = (StreamifyOperator, StreamMapOperator, StreamFilterOperator)
#: Operators that require a stream input and fail on batch values.
_STREAM_CONSUMERS = (StreamMapOperator, StreamFilterOperator, ReduceOperator)
#: Operators that require exactly one upstream value at run time.
_SINGLE_INPUT = (
    MapOperator,
    BranchOperator,
    StreamifyOperator,
    StreamMapOperator,
    StreamFilterOperator,
    ReduceOperator,
    UnstreamifyOperator,
)


def _awel(code: str, message: str, **kwargs) -> Diagnostic:
    return diagnostic(code, message, source="awel", **kwargs)


def lint_dag(dag: "DAG") -> list[Diagnostic]:
    """Analyze one DAG, returning every finding (never raises)."""
    diags: list[Diagnostic] = []
    upstream = getattr(dag, "_upstream", {})
    downstream = getattr(dag, "_downstream", {})

    # AWEL002 — nodes the runner cannot even schedule.
    orphans = sorted(
        node_id
        for node_id in dag.nodes
        if node_id not in upstream or node_id not in downstream
    )
    for node_id in orphans:
        diags.append(
            _awel(
                "AWEL002",
                f"operator {node_id!r} is registered but missing from the "
                "adjacency maps; the runner would misreport it as a cycle",
                subject=node_id,
                hint="add nodes through DAG.add_node, not by mutating "
                "dag.nodes",
            )
        )
    if len(dag.nodes) > 1:
        for node_id in dag.nodes:
            if node_id in orphans:
                continue
            if not upstream.get(node_id) and not downstream.get(node_id):
                diags.append(
                    _awel(
                        "AWEL002",
                        f"operator {node_id!r} has no edges at all in a "
                        f"{len(dag.nodes)}-node graph",
                        subject=node_id,
                        hint="wire it with >> or remove it",
                    )
                )

    wired = [n for n in dag.nodes if n in upstream and n in downstream]

    # AWEL001 / AWEL003 — cycles and the nodes trapped behind them.
    order: list[str] = []
    in_degree = {n: len(upstream[n]) for n in wired}
    ready = sorted(n for n, degree in in_degree.items() if degree == 0)
    while ready:
        node_id = ready.pop(0)
        order.append(node_id)
        for next_id in downstream.get(node_id, []):
            if next_id in in_degree:
                in_degree[next_id] -= 1
                if in_degree[next_id] == 0:
                    ready.append(next_id)
    remaining = set(wired) - set(order)
    if remaining:
        # Trim nodes with no remaining successors repeatedly: what
        # survives sits on a cycle; the trimmed ones are merely
        # unreachable because a cycle blocks every path to them.
        cycle = set(remaining)
        changed = True
        while changed:
            changed = False
            for node_id in sorted(cycle):
                if not any(d in cycle for d in downstream.get(node_id, [])):
                    cycle.discard(node_id)
                    changed = True
        if not cycle:  # degenerate, should not happen
            cycle = set(remaining)
        diags.append(
            _awel(
                "AWEL001",
                "cycle detected among operators: "
                + ", ".join(sorted(cycle)),
                subject=", ".join(sorted(cycle))[:80],
                hint="break the cycle; AWEL graphs must be acyclic",
            )
        )
        for node_id in sorted(remaining - cycle):
            diags.append(
                _awel(
                    "AWEL003",
                    f"operator {node_id!r} is unreachable: every path to "
                    "it passes through a cycle",
                    subject=node_id,
                )
            )

    roots = [n for n in wired if not upstream[n]]
    leaves = [n for n in wired if not downstream[n]]

    # AWEL005 — multiple roots are legal but often accidental.
    if len(roots) > 1:
        diags.append(
            _awel(
                "AWEL005",
                f"workflow has {len(roots)} root operators: "
                + ", ".join(sorted(roots)),
                subject=", ".join(sorted(roots))[:80],
                hint="multiple roots all receive the run payload; join "
                "them explicitly if that is intended",
            )
        )

    for node_id in wired:
        node = dag.nodes[node_id]
        ups = upstream[node_id]
        downs = downstream[node_id]

        # AWEL007 — arity the runner will reject at execution time.
        if isinstance(node, InputOperator) and ups:
            diags.append(
                _awel(
                    "AWEL007",
                    f"input operator {node_id!r} is a source but has "
                    f"{len(ups)} upstream edge(s)",
                    subject=node_id,
                )
            )
        elif isinstance(node, _SINGLE_INPUT) and len(ups) != 1:
            diags.append(
                _awel(
                    "AWEL007",
                    f"operator {node_id!r} expects exactly one input but "
                    f"is wired to {len(ups)}",
                    subject=node_id,
                    hint="use a JoinOperator to merge multiple upstreams",
                )
            )

        # AWEL006 — stream consumers fed by batch producers.
        if isinstance(node, _STREAM_CONSUMERS):
            for up_id in ups:
                if not isinstance(dag.nodes[up_id], _STREAM_PRODUCERS):
                    diags.append(
                        _awel(
                            "AWEL006",
                            f"stream operator {node_id!r} consumes from "
                            f"batch operator {up_id!r}",
                            subject=f"{up_id} -> {node_id}",
                            hint="insert a StreamifyOperator between them",
                        )
                    )

        # AWEL004 — outputs produced but never consumed meaningfully.
        if node_id in leaves and isinstance(node, _STREAM_PRODUCERS):
            diags.append(
                _awel(
                    "AWEL004",
                    f"leaf operator {node_id!r} produces a lazy stream "
                    "that is never materialized",
                    subject=node_id,
                    hint="finish with an UnstreamifyOperator or a "
                    "ReduceOperator",
                )
            )
        if isinstance(node, BranchOperator) and len(downs) < 2:
            diags.append(
                _awel(
                    "AWEL004",
                    f"branch operator {node_id!r} has {len(downs)} "
                    "downstream route(s); branching needs at least two",
                    subject=node_id,
                )
            )
    return diags
