PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint staticcheck staticcheck-baseline bench bench-cache bench-serving bench-resilience bench-sqlengine bench-multitenant bench-agents verify docs-check trace-demo

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.cli lint examples/

# Concurrency & determinism static analysis over the source tree
# (LCK/ASY/DET/OBS/CFG — see docs/staticcheck.md). --strict fails on
# warnings and stale baseline entries too, so any new finding breaks
# `make verify`.
staticcheck:
	$(PYTHON) -m repro.cli check src/ --strict

# Deliberately grandfather every current finding into the baseline.
# The tree is kept clean, so this should normally be a no-op.
staticcheck-baseline:
	$(PYTHON) -m repro.cli check src/ --write-baseline

bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Warm-vs-cold cache speedup on text2sql; writes BENCH_cache.json.
bench-cache:
	$(PYTHON) -m pytest benchmarks/bench_cache.py -q

# Micro-batching scheduler vs sequential dispatch; writes BENCH_serving.json.
bench-serving:
	$(PYTHON) -m pytest benchmarks/bench_serving_throughput.py -q

# Survival rate and breaker recovery under a deterministic fault
# timeline; writes BENCH_resilience.json.
bench-resilience:
	$(PYTHON) -m pytest benchmarks/bench_resilience.py -q

# Indexed point lookups, sorted range scans and hash joins vs their
# naive counterparts; writes BENCH_sqlengine.json.
bench-sqlengine:
	$(PYTHON) -m pytest benchmarks/bench_sqlengine.py -q

# Noisy-neighbor isolation: 8 compliant tenants x 16 concurrent
# sessions vs one tenant 10x over quota; writes BENCH_multitenant.json.
bench-multitenant:
	$(PYTHON) -m pytest benchmarks/bench_multitenant.py -q

# Multi-hop agent plan completion under 20% sql-coder flapping,
# resilience on vs off; writes BENCH_agents.json.
bench-agents:
	$(PYTHON) -m pytest benchmarks/bench_agents.py -q

# Validate that every relative link in the documentation resolves.
docs-check:
	$(PYTHON) -m repro.doccheck README.md docs

# Run one traced request end-to-end and print its span tree.
trace-demo:
	$(PYTHON) -m repro.cli trace

# The repo self-check: static analysis over the examples and the
# source tree itself, doc link integrity, one traced end-to-end
# request, tier-1, then the cache, serving, resilience, sql engine,
# multi-tenant isolation and agent-plan chaos smokes.
verify: lint staticcheck docs-check trace-demo test bench-cache bench-serving bench-resilience bench-sqlengine bench-multitenant bench-agents
