PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench verify

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.cli lint examples/

bench:
	$(PYTHON) -m pytest benchmarks/ -q

# The repo self-check: static analysis over the examples plus tier-1.
verify: lint test
